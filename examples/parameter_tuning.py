"""Tuning TPA's S and T parameters (Section III-C of the paper).

``S`` trades online time against accuracy — the Theorem 2 bound is
``2 (1-c)^S``.  The total error is U-shaped in ``T``: too small and the
seed-agnostic PageRank tail swallows nearby nodes; too large and the
neighbor approximation extrapolates across community boundaries.  This
example sweeps both (the workloads behind Figures 8 and 9) and then lets
:func:`repro.select_parameters` pick a configuration automatically.

Run with::

    python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import community_graph, select_parameters, sweep_s, sweep_t


def main() -> None:
    print("Generating a 3,000-node community graph ...")
    graph = community_graph(3_000, avg_degree=10, num_communities=24, seed=9)

    print("\nEffect of S (T fixed to 10) — Figure 8's tradeoff:")
    print(f"  {'S':>3}  {'online ms':>10}  {'L1 error':>9}")
    for point in sweep_s(graph, [2, 3, 4, 5, 6], t_iteration=10, num_seeds=8):
        print(f"  {point.value:>3}  {1e3 * point.online_seconds:>10.2f}  "
              f"{point.l1_error:>9.4f}")

    print("\nEffect of T (S fixed to 5) — Figure 9's U-shape:")
    print(f"  {'T':>3}  {'TPA error':>10}  {'NA error':>9}  {'SA error':>9}")
    for point in sweep_t(graph, [5, 6, 8, 10, 15, 20], s_iteration=5, num_seeds=8):
        print(f"  {point.value:>3}  {point.l1_error:>10.4f}  "
              f"{point.neighbor_error:>9.4f}  {point.stranger_error:>9.4f}")

    s_best, t_best = select_parameters(graph, target_error=0.4, num_seeds=5)
    print(f"\nselect_parameters(target_error=0.4) picked S={s_best}, T={t_best}")
    print(f"  (Theorem 2 bound at S={s_best}: {2 * 0.85 ** s_best:.3f})")


if __name__ == "__main__":
    main()
