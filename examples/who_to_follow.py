"""'Who to Follow' — top-k recommendation with approximate RWR.

The paper motivates top-k accuracy with Twitter's WTF service, which
recommends the top-500 RWR-ranked users for a given account (Gupta et al.,
WWW 2013).  This example runs that workload on the Twitter analog dataset:
for a handful of users it produces top-k recommendation lists with TPA and
verifies them against exact RWR, then compares the per-user latency.

Run with::

    python examples/who_to_follow.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import TPA, BePI, load_dataset, recall_at_k
from repro.graph.datasets import DATASETS


def recommend(scores: np.ndarray, user: int, graph, k: int) -> np.ndarray:
    """Top-k nodes by score, excluding the user and existing followees."""
    candidates = np.argsort(-scores)
    already = set(graph.out_neighbors(user).tolist()) | {user}
    picks = [node for node in candidates.tolist() if node not in already]
    return np.asarray(picks[:k])


def main() -> None:
    spec = DATASETS["twitter"]
    print("Loading the Twitter analog dataset ...")
    graph = load_dataset("twitter", scale=0.5)
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    method = TPA(s_iteration=spec.s_iteration, t_iteration=spec.t_iteration)
    method.preprocess(graph)

    ground_truth = BePI()
    ground_truth.preprocess(graph)

    rng = np.random.default_rng(3)
    users = rng.choice(graph.num_nodes, size=5, replace=False)
    k = 500

    print(f"\nRecommending top-{k} accounts for {len(users)} users:")
    tpa_total = 0.0
    exact_total = 0.0
    for user in users:
        begin = time.perf_counter()
        approx_scores = method.query(int(user))
        tpa_total += time.perf_counter() - begin

        begin = time.perf_counter()
        exact_scores = ground_truth.query(int(user))
        exact_total += time.perf_counter() - begin

        recs = recommend(approx_scores, int(user), graph, 5)
        recall = recall_at_k(exact_scores, approx_scores, k)
        print(f"  user {user:6d}: top-5 picks {recs.tolist()}, "
              f"recall@{k} = {recall:.3f}")

    print(f"\nMean latency per user: TPA {1e3 * tpa_total / len(users):.2f} ms, "
          f"exact {1e3 * exact_total / len(users):.2f} ms "
          f"({exact_total / tpa_total:.0f}x speedup)")


if __name__ == "__main__":
    main()
