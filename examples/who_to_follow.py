"""'Who to Follow' — top-k recommendation with approximate RWR.

The paper motivates top-k accuracy with Twitter's WTF service, which
recommends the top-500 RWR-ranked users for a given account (Gupta et al.,
WWW 2013).  This example runs that workload on the Twitter analog dataset
through the batched engine: all users' queries propagate through the graph
together (one sparse matmul per iteration for the whole batch), known
followees are excluded from the rankings, and the results are verified
against exact RWR.

Run with::

    python examples/who_to_follow.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BePI,
    Engine,
    QueryRequest,
    create_method,
    load_dataset,
    recall_at_k,
    select_top_k,
)
from repro.graph.datasets import DATASETS
from repro.method import banned_mask


def main() -> None:
    spec = DATASETS["twitter"]
    print("Loading the Twitter analog dataset ...")
    graph = load_dataset("twitter", scale=0.5)
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    engine = Engine(
        create_method("tpa", s_iteration=spec.s_iteration,
                      t_iteration=spec.t_iteration),
        graph,
    )
    exact_engine = Engine(BePI(), graph)

    rng = np.random.default_rng(3)
    users = rng.choice(graph.num_nodes, size=5, replace=False)
    k = 500

    # One batched pass each: approximate scores for the recommendations
    # and exact scores for the recall check.  The top-5 shortlists come
    # from the same score vectors (no second propagation) with the user's
    # existing followees excluded — the recommendation setting.
    requests = [QueryRequest(seed=int(user)) for user in users]
    approx_results = engine.batch(requests)
    exact_results = exact_engine.batch(requests)

    print(f"\nRecommending top-{k} accounts for {len(users)} users:")
    for user, approx, exact in zip(users, approx_results, exact_results):
        banned = banned_mask(graph, int(user), exclude_seed=True,
                             exclude_neighbors=True)
        shortlist = select_top_k(approx.scores, 5, banned)
        recall = recall_at_k(exact.scores, approx.scores, k)
        print(f"  user {user:6d}: top-5 picks {shortlist.tolist()}, "
              f"recall@{k} = {recall:.3f}")

    tpa_total = sum(result.seconds for result in approx_results)
    exact_total = sum(result.seconds for result in exact_results)
    print(f"\nMean latency per user (batched): "
          f"TPA {1e3 * tpa_total / len(users):.2f} ms, "
          f"exact {1e3 * exact_total / len(users):.2f} ms "
          f"({exact_total / max(tpa_total, 1e-12):.0f}x speedup)")


if __name__ == "__main__":
    main()
