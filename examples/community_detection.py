"""Local community detection with TPA + conductance sweep.

Community detection is one of the applications the paper's introduction
motivates (Whang et al. 2013; Andersen et al. 2006).  The recipe: compute
RWR scores from a seed inside the community, rank nodes by
degree-normalized score, and take the prefix with the lowest conductance
(the "sweep cut").  This example plants communities, detects the seed's
one with approximate TPA scores, and checks the result against both the
planted ground truth and a sweep over exact scores.

Run with::

    python examples/community_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import TPA, community_graph, rwr_exact
from repro.analysis.sweep import sweep_cut
from repro.graph.partition import partition_graph


def main() -> None:
    print("Planting 8 communities in a 2,000-node graph ...")
    graph = community_graph(
        2_000, avg_degree=12, num_communities=8, p_in=0.93, seed=31
    )
    labels = partition_graph(graph, 8, seed=0)

    method = TPA(s_iteration=5, t_iteration=10)
    method.preprocess(graph)

    rng = np.random.default_rng(4)
    seeds = rng.choice(graph.num_nodes, size=4, replace=False)

    print(f"\n{'seed':>6} {'size':>5} {'phi':>7} {'purity':>7} {'exact-phi':>9}")
    for seed in seeds:
        approx_cut = sweep_cut(graph, method.query(int(seed)), max_size=600)
        exact_cut = sweep_cut(graph, rwr_exact(graph, int(seed)), max_size=600)

        members = approx_cut.nodes
        purity = float((labels[members] == labels[seed]).mean())
        print(f"{seed:>6} {members.size:>5} {approx_cut.conductance:>7.3f} "
              f"{purity:>7.2f} {exact_cut.conductance:>9.3f}")

    print("\npurity = fraction of detected members sharing the seed's planted "
          "community;")
    print("TPA's sweep conductance should track the exact-score sweep closely.")


if __name__ == "__main__":
    main()
