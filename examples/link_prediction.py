"""Link prediction with approximate RWR — a classic RWR application
(Backstrom & Leskovec, WSDM 2011, cited in the paper's introduction).

Protocol: hide a sample of edges from a community graph, then rank hidden
targets against random non-edges using TPA's RWR scores from each source.
RWR's locality means hidden (true) targets should outrank random pairs by
a wide margin; the example reports the AUC-style win rate and hits@10.

All 200 source queries run as one engine batch — the whole seed matrix
propagates through the training graph together — and the top-10 shortlists
(known neighbors excluded) are selected straight from those score vectors.

Run with::

    python examples/link_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Engine,
    Graph,
    QueryRequest,
    community_graph,
    create_method,
    select_top_k,
)
from repro.method import banned_mask


def split_edges(graph: Graph, holdout: int, rng: np.random.Generator):
    """Remove ``holdout`` edges (keeping the graph dangling-free)."""
    src, dst = graph.edges()
    order = rng.permutation(src.size)
    out_degree = graph.out_degree.copy()

    hidden: list[tuple[int, int]] = []
    keep = np.ones(src.size, dtype=bool)
    for index in order:
        if len(hidden) == holdout:
            break
        u = src[index]
        if out_degree[u] <= 1:
            continue  # never orphan a node
        keep[index] = False
        out_degree[u] -= 1
        hidden.append((int(u), int(dst[index])))

    train = Graph(graph.num_nodes, src[keep], dst[keep])
    return train, hidden


def main() -> None:
    rng = np.random.default_rng(17)
    print("Generating a 4,000-node community graph ...")
    graph = community_graph(4_000, avg_degree=12, num_communities=32, seed=5)

    train, hidden = split_edges(graph, holdout=200, rng=rng)
    print(f"  hidden {len(hidden)} edges; training graph has "
          f"{train.num_edges:,} of {graph.num_edges:,} edges")

    engine = Engine(
        create_method("tpa", s_iteration=5, t_iteration=10), train
    )

    sources = np.asarray([source for source, _ in hidden], dtype=np.int64)
    # One batched pass scores every hidden-edge source; the top-10
    # shortlists (known links excluded) come from the same score vectors.
    score_results = engine.batch(
        [QueryRequest(seed=int(source)) for source in sources]
    )

    wins = 0
    trials = 0
    hits = 0
    for (source, target), result in zip(hidden, score_results):
        scores = result.scores
        banned = banned_mask(train, source, exclude_seed=True,
                             exclude_neighbors=True)
        shortlist = select_top_k(scores, 10, banned)
        # Compare the hidden target against a random non-neighbor.
        neighbors = set(train.out_neighbors(source).tolist())
        negative = int(rng.integers(train.num_nodes))
        while negative == source or negative in neighbors:
            negative = int(rng.integers(train.num_nodes))
        trials += 1
        if scores[target] > scores[negative]:
            wins += 1

        if target in shortlist.tolist():
            hits += 1

    print(f"\nRWR ranks the true hidden target above a random non-edge in "
          f"{100 * wins / trials:.1f}% of pairs (chance: 50%)")
    print(f"hits@10: {100 * hits / len(hidden):.1f}% of hidden edges appear "
          f"in the source's top-10 recommendations")


if __name__ == "__main__":
    main()
