"""Link prediction with approximate RWR — a classic RWR application
(Backstrom & Leskovec, WSDM 2011, cited in the paper's introduction).

Protocol: hide a sample of edges from a community graph, then rank hidden
targets against random non-edges using TPA's RWR scores from each source.
RWR's locality means hidden (true) targets should outrank random pairs by
a wide margin; the example reports the AUC-style win rate and hits@10.

Run with::

    python examples/link_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro import TPA, Graph, community_graph


def split_edges(graph: Graph, holdout: int, rng: np.random.Generator):
    """Remove ``holdout`` edges (keeping the graph dangling-free)."""
    src, dst = graph.edges()
    order = rng.permutation(src.size)
    out_degree = graph.out_degree.copy()

    hidden: list[tuple[int, int]] = []
    keep = np.ones(src.size, dtype=bool)
    for index in order:
        if len(hidden) == holdout:
            break
        u = src[index]
        if out_degree[u] <= 1:
            continue  # never orphan a node
        keep[index] = False
        out_degree[u] -= 1
        hidden.append((int(u), int(dst[index])))

    train = Graph(graph.num_nodes, src[keep], dst[keep])
    return train, hidden


def main() -> None:
    rng = np.random.default_rng(17)
    print("Generating a 4,000-node community graph ...")
    graph = community_graph(4_000, avg_degree=12, num_communities=32, seed=5)

    train, hidden = split_edges(graph, holdout=200, rng=rng)
    print(f"  hidden {len(hidden)} edges; training graph has "
          f"{train.num_edges:,} of {graph.num_edges:,} edges")

    method = TPA(s_iteration=5, t_iteration=10)
    method.preprocess(train)

    wins = 0
    trials = 0
    hits = 0
    for source, target in hidden:
        scores = method.query(source)
        # Compare the hidden target against a random non-neighbor.
        negative = int(rng.integers(train.num_nodes))
        while negative == source or negative in set(
            train.out_neighbors(source).tolist()
        ):
            negative = int(rng.integers(train.num_nodes))
        trials += 1
        if scores[target] > scores[negative]:
            wins += 1

        # hits@10 among non-neighbors.
        candidates = np.argsort(-scores)
        known = set(train.out_neighbors(source).tolist()) | {source}
        shortlist = [node for node in candidates.tolist() if node not in known][:10]
        if target in shortlist:
            hits += 1

    print(f"\nRWR ranks the true hidden target above a random non-edge in "
          f"{100 * wins / trials:.1f}% of pairs (chance: 50%)")
    print(f"hits@10: {100 * hits / len(hidden):.1f}% of hidden edges appear "
          f"in the source's top-10 recommendations")


if __name__ == "__main__":
    main()
