"""One pane of glass over the serving stack: metrics + request tracing.

``repro.obs`` gives every deployment the same two instruments.  The
*metrics registry* fills itself as a side effect of serving — request
latency histograms, per-phase breakdowns, cache traffic, scheduler
depth — and renders either Prometheus text or a JSON snapshot.
*Request tracing* (off by default, ``REPRO_TRACE=1`` or
``set_tracing(True)``) follows each request from scheduler admission
through dispatch into the shard worker processes and back, producing a
connected span tree per request even across a worker respawn.

Both render live over HTTP: ``obs_port=`` (or ``REPRO_OBS_PORT``)
attaches a stdlib-only exporter serving ``/metrics``, ``/health``,
``/snapshot``, ``/traces`` and ``/profile``.

This example serves a small batch through the sharded Router with
tracing on, self-scrapes the live endpoint, then prints one request's
span tree, the phase breakdown, and a slice of the Prometheus
exposition.

Run with::

    python examples/observability.py
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np

from repro import TPA, QueryRequest, Router, community_graph, obs


def main() -> None:
    graph = community_graph(2_000, avg_degree=12, seed=31)
    obs.set_tracing(True)  # or REPRO_TRACE=1 in the environment

    print("Serving 24 requests through a 2-shard Router, traced ...")
    with Router(
        TPA(s_iteration=5, t_iteration=10), graph,
        num_shards=2, max_batch=8, max_wait_ms=1.0, cache_size=64,
        obs_port=0,  # or REPRO_OBS_PORT in the environment
    ) as router:
        requests = [QueryRequest(seed=int(s), k=10) for s in range(24)]
        results = router.batch(requests)
        # A repeat of seed 0 exercises the shared score cache.
        router.query(0, k=10)

        # The same state, scraped live over HTTP while we serve.
        print(f"\nLive exporter on port {router.exporter.port}:")
        with urllib.request.urlopen(router.exporter.url("/health")) as rsp:
            health = json.loads(rsp.read())
            print(f"  GET /health   -> {rsp.status} "
                  f"ready={health['ready']} checks={sorted(health['checks'])}")
        with urllib.request.urlopen(router.exporter.url("/metrics")) as rsp:
            families = obs.parse_prometheus_text(rsp.read().decode())
            print(f"  GET /metrics  -> {rsp.status}, "
                  f"{len(families)} metric families")
        with urllib.request.urlopen(router.exporter.url("/snapshot")) as rsp:
            snap = json.loads(rsp.read())
            print(f"  GET /snapshot -> {rsp.status}, "
                  f"schema {snap['schema']}")

        stats = router.stats()
    assert all(r.top_nodes.size == 10 for r in results)
    assert router.exporter is None  # close() released thread and port

    first_trace = obs.trace_ids()[0]
    print("\nOne request, end to end (worker spans shipped over the pipe"
          " and rebased onto this process's clock):\n")
    print(obs.format_trace(first_trace))

    print("\nPer-phase breakdown (LatencyStats, ms per batch):")
    for name, info in sorted(stats["phases"].items()):
        print(f"  {name:<10} mean {info['mean_ms']:7.3f}  "
              f"total {info['total_ms']:8.3f}  x{info['count']}")

    registry = obs.get_registry()
    families = registry.families()
    print(f"\nRegistry: {len(families)} families, e.g.")
    for name in ("repro_requests_total", "repro_cache_hits_total",
                 "repro_queries_served_total"):
        print(f"  {name} = {families[name].value:g}")
    sweep = families["repro_sweep_seconds"]
    for key, child in sorted(sweep.children().items()):
        labels = dict(zip(sweep.labelnames, key))
        mean_us = 1e6 * child.sum / child.count
        print(f"  repro_sweep_seconds{labels} "
              f"count={child.count} mean={mean_us:.0f}us")

    text = registry.expose()
    obs.parse_prometheus_text(text)  # strict round-trip check
    lines = text.splitlines()
    print(f"\nPrometheus exposition: {len(lines)} lines, first five:")
    for line in lines[:5]:
        print(f"  {line}")

    queue = stats["phases"].get("queue", {"total_ms": 0.0})
    sweeps = stats["phases"].get("sweep", {"total_ms": 0.0})
    print(f"\nWhere the time went: queue {queue['total_ms']:.1f} ms vs "
          f"sweep {sweeps['total_ms']:.1f} ms across the run — the same "
          "split `repro serve-bench --trace trace.json` dumps for "
          "offline inspection with `repro obs trace trace.json`.")
    print(f"Spans retained: {len(obs.spans())} "
          f"across {len(obs.trace_ids())} traces (bounded ring buffer).")


if __name__ == "__main__":
    main()
