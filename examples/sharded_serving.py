"""Sharded multi-process serving — exact results across shard workers.

Python threads share one GIL; the :class:`repro.sharding.Router` does
not.  It cuts the propagation operator's rows on the graph's own
structure (SlashBurn hub band pinned to shard 0, spoke shards closed on
community-block starts), publishes each shard's CSR stripe into shared
memory, and runs every iterate sweep of TPA's online phase
stripe-parallel across one worker process per shard.  The merged
results are *bitwise identical* to a single-process ``Engine.batch`` —
this example proves it, then drives the router with the closed-loop
load generator.

Run with::

    python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import Engine, QueryRequest, community_graph, create_method
from repro.serving import run_closed_loop
from repro.sharding import Router


def main() -> None:
    print("Generating a 20,000-node community graph ...")
    graph = community_graph(20_000, avg_degree=12, num_communities=60,
                            seed=21)
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    requests = [QueryRequest(seed=int(seed), k=10)
                for seed in range(0, 4000, 40)]

    print("\nServing serially (one process) for the reference ...")
    serial = Engine(create_method("tpa"), graph, reorder="slashburn")
    reference = serial.batch(requests)

    print("Starting a Router: 4 shard worker processes, SlashBurn cuts ...")
    with Router(create_method("tpa"), graph, num_shards=4,
                reorder="slashburn", max_batch=32,
                cache_size=1024) as router:
        rows = router.stats()["shards"]["shard_rows"]
        print(f"  shard row stripes: {rows}")
        print(f"  hub band rows:     {router.plan.num_hubs} (shard 0)")

        results = router.batch(requests)
        exact = all(
            np.array_equal(ref.top_nodes, got.top_nodes)
            and np.array_equal(ref.top_scores, got.top_scores)
            for ref, got in zip(reference, results)
        )
        print(f"  bitwise identical to serial Engine.batch: {exact}")

        print("\nClosed-loop load: 4 clients x 50 requests ...")
        report = run_closed_loop(
            router, np.arange(256), k=10, clients=4,
            requests_per_client=50,
        )
        print(f"  throughput  {report.queries_per_second:8.1f} q/s")
        print(f"  latency p50 {report.latency_p50_ms:8.2f} ms")
        print(f"  latency p99 {report.latency_p99_ms:8.2f} ms")
    print("Router closed: workers stopped, shared memory unlinked.")


if __name__ == "__main__":
    main()
