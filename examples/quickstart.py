"""Quickstart: preprocess once, batch-query with the engine, check the
answers against the exact solution.

The paper's two-phase split is a serving architecture: preprocessing runs
once per graph, then every query pays only the cheap online phase.  The
:class:`repro.Engine` packages that lifecycle — this example preprocesses
a community graph, answers one seed and then a 64-seed batch, and verifies
TPA's error bound.  (The original single-seed API — ``method.preprocess``
/ ``method.query`` — remains supported; the engine is a facade over it.)

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    Engine,
    community_graph,
    create_method,
    l1_error,
    recall_at_k,
    rwr_exact,
)


def main() -> None:
    # A synthetic social network with planted community structure — the
    # graph family whose block-wise structure TPA exploits.
    print("Generating a 5,000-node community graph ...")
    graph = community_graph(5_000, avg_degree=12, num_communities=40, seed=7)
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    # Preprocessing phase (Algorithm 2) runs inside the Engine constructor:
    # one PageRank-tail vector, reused by every future query.
    engine = Engine(create_method("tpa", s_iteration=5, t_iteration=10), graph)
    print(f"Preprocessing took {engine.preprocess_seconds:.3f}s "
          f"({engine.method.preprocessed_bytes():,} bytes stored)")

    # Online phase (Algorithm 3): one structured result per query.
    seed = 42
    result = engine.query(seed)

    begin = time.perf_counter()
    exact = rwr_exact(graph, seed)
    exact_time = time.perf_counter() - begin

    print(f"\nSeed node {seed}:")
    print(f"  TPA online time   : {result.seconds * 1e3:8.2f} ms")
    print(f"  exact solve time  : {exact_time * 1e3:8.2f} ms")
    print(f"  L1 error          : {l1_error(exact, result.scores):.4f}")
    print(f"  Theorem 2 bound   : {result.error_bound:.4f}")
    print(f"  recall@100        : {recall_at_k(exact, result.scores, 100):.3f}")

    top = engine.query(seed, k=5, exclude_seed=False)
    print(f"  top-5 nodes       : {top.top_nodes.tolist()}")
    assert l1_error(exact, result.scores) <= result.error_bound
    print("TPA error is within the paper's theoretical bound.")

    # The serving shape: a whole seed batch propagates through the graph
    # together — one sparse matmul per iteration for all 64 queries.
    rng = np.random.default_rng(0)
    seeds = rng.choice(graph.num_nodes, size=64, replace=False)

    begin = time.perf_counter()
    rankings = engine.serve(seeds, k=10)
    batch_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    for one_seed in seeds:
        engine.method.top_k(int(one_seed), 10)
    looped_seconds = time.perf_counter() - begin

    print(f"\nTop-10 for {len(seeds)} seeds: "
          f"batched {batch_seconds * 1e3:.1f} ms, "
          f"looped {looped_seconds * 1e3:.1f} ms "
          f"({looped_seconds / batch_seconds:.1f}x)")
    print(f"ranking matrix shape: {rankings.shape}. Done.")


if __name__ == "__main__":
    main()
