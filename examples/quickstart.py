"""Quickstart: compute approximate RWR with TPA and check it against the
exact solution.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import TPA, community_graph, l1_error, recall_at_k, rwr_exact


def main() -> None:
    # A synthetic social network with planted community structure — the
    # graph family whose block-wise structure TPA exploits.
    print("Generating a 5,000-node community graph ...")
    graph = community_graph(5_000, avg_degree=12, num_communities=40, seed=7)
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    # Preprocessing phase (Algorithm 2): one PageRank-tail vector, reused
    # by every future query.
    method = TPA(s_iteration=5, t_iteration=10)
    begin = time.perf_counter()
    method.preprocess(graph)
    print(f"Preprocessing took {time.perf_counter() - begin:.3f}s "
          f"({method.preprocessed_bytes():,} bytes stored)")

    # Online phase (Algorithm 3): per-seed queries.
    seed = 42
    begin = time.perf_counter()
    scores = method.query(seed)
    online = time.perf_counter() - begin

    begin = time.perf_counter()
    exact = rwr_exact(graph, seed)
    exact_time = time.perf_counter() - begin

    print(f"\nSeed node {seed}:")
    print(f"  TPA online time   : {online * 1e3:8.2f} ms")
    print(f"  exact solve time  : {exact_time * 1e3:8.2f} ms")
    print(f"  L1 error          : {l1_error(exact, scores):.4f}")
    print(f"  Theorem 2 bound   : {method.error_bound():.4f}")
    print(f"  recall@100        : {recall_at_k(exact, scores, 100):.3f}")

    top = np.argsort(-scores)[:5]
    print(f"  top-5 nodes       : {top.tolist()}")
    assert l1_error(exact, scores) <= method.error_bound()
    print("\nTPA error is within the paper's theoretical bound. Done.")


if __name__ == "__main__":
    main()
