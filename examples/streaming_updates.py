"""Streaming edge updates — fresh follows ranked within seconds.

The scenario the paper's "Who to Follow" deployment actually faces: the
follow graph never stops changing.  This example serves top-k RWR from
an :class:`~repro.engine.Engine` over a live
:class:`~repro.dynamic.DynamicGraph` while edges stream in:

1. a new follow is visible in the very next query (delta-overlay mode,
   within the documented ``1e-12`` overlay tier of a full rebuild),
2. stale cache entries die with the graph epoch — no mutation ever
   replays a pre-update vector,
3. ``compact()`` folds the pending deltas into rebuilt CSR stripes,
   after which results are bitwise identical to a from-scratch build,
4. warm restarts keep the repair cheap: post-epoch queries restart CPI
   from the previous epoch's cached vectors.

Run with::

    python examples/streaming_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import CPIMethod, Engine, Graph, community_graph, cpi
from repro.dynamic import DynamicGraph


def main() -> None:
    print("Generating a 30,000-node community graph ...")
    base = community_graph(30_000, avg_degree=12, num_communities=80,
                           seed=13)
    graph = DynamicGraph(base)
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges, "
          f"epoch token {graph.epoch_token()!r}")

    engine = Engine(CPIMethod(), graph, cache_size=1024)
    user = 4321

    print(f"\nServing user {user} on the clean graph ...")
    before = engine.query(user, k=10)
    print(f"  top-10: {before.top_nodes.tolist()}")

    # A burst of fresh follows lands: the user follows three new
    # accounts, one of them follows back.
    fresh = [(user, 777), (user, 2050), (user, 29_000), (777, user)]
    begin = time.perf_counter()
    applied = graph.add_edges(fresh)
    after = engine.query(user, k=10)
    elapsed_ms = (time.perf_counter() - begin) * 1e3
    print(f"\nApplied {applied} follows and re-ranked in "
          f"{elapsed_ms:.1f} ms (epoch token {graph.epoch_token()!r})")
    print(f"  top-10: {after.top_nodes.tolist()}")
    newly_ranked = set(after.top_nodes.tolist()) - set(
        before.top_nodes.tolist()
    )
    print(f"  newly ranked: {sorted(newly_ranked)}")

    print("\nCompacting the overlay into rebuilt CSR stripes ...")
    begin = time.perf_counter()
    dirty = graph.compact()
    print(f"  rebuilt {dirty.size} of {graph.num_nodes:,} operator rows "
          f"in {(time.perf_counter() - begin) * 1e3:.1f} ms "
          f"(epoch token {graph.epoch_token()!r})")

    # Post-compact results are bitwise identical to a from-scratch
    # build of the mutated edge list.  (Cold runs on both sides — the
    # engine's warm restarts trade bitwise equality for speed, landing
    # within 2*tol/c instead.)
    src, dst = graph.edges()
    rebuilt = Graph(graph.num_nodes, src, dst,
                    dangling=graph.dangling_policy)
    got = cpi(graph, seeds=user).scores
    want = cpi(rebuilt, seeds=user).scores
    print(f"  bitwise vs from-scratch rebuild: "
          f"{bool(np.array_equal(got, want))}")

    # Unfollows repair the other direction; the warm restart makes the
    # re-query cheap (it starts from the post-compact cached vector).
    graph.remove_edges([(user, 777)])
    begin = time.perf_counter()
    engine.query(user, k=10)
    print(f"\nUnfollow re-ranked in "
          f"{(time.perf_counter() - begin) * 1e3:.1f} ms")
    stats = engine.stats()
    print(f"  engine: {stats['queries_served']} queries, "
          f"{stats['cache_hits']} cache hits, "
          f"{stats['cache_misses']} misses")


if __name__ == "__main__":
    main()
