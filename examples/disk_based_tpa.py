"""Disk-based TPA — the paper's stated future work, working end to end.

The conclusion of the paper proposes "extending TPA into a disk-based RWR
method to handle huge, disk-resident graphs".  Because CPI only needs a
``propagate`` operator, TPA runs unchanged on a :class:`DiskGraph` whose
edges live in stripe files on disk and stream through memory one stripe at
a time.  This example builds a disk graph, runs TPA on it, verifies the
scores against the in-memory run, and reports the resident-memory ratio.

Run with::

    python examples/disk_based_tpa.py
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro import TPA, community_graph, format_bytes
from repro.graph.diskgraph import DiskGraph


def main() -> None:
    print("Generating a 10,000-node community graph ...")
    graph = community_graph(10_000, avg_degree=15, num_communities=80, seed=21)
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges, "
          f"{format_bytes(graph.nbytes())} in memory")

    with tempfile.TemporaryDirectory() as directory:
        print("\nSerializing to disk stripes ...")
        disk = DiskGraph.build(graph, directory, rows_per_stripe=1_000)
        print(f"  {disk.num_stripes} stripes, {format_bytes(disk.disk_bytes())} "
              f"on disk, {format_bytes(disk.resident_bytes())} resident per "
              "propagate")

        memory_tpa = TPA(s_iteration=5, t_iteration=10)
        memory_tpa.preprocess(graph)

        disk_tpa = TPA(s_iteration=5, t_iteration=10)
        begin = time.perf_counter()
        disk_tpa.preprocess(disk)       # streams stripes from disk
        prep = time.perf_counter() - begin

        begin = time.perf_counter()
        disk_scores = disk_tpa.query(7)
        online = time.perf_counter() - begin

        memory_scores = memory_tpa.query(7)
        difference = float(np.abs(disk_scores - memory_scores).sum())

        print(f"\nDisk-based TPA: preprocess {prep:.2f}s, "
              f"online {1e3 * online:.1f} ms per query")
        print(f"L1 difference vs in-memory TPA: {difference:.2e}")
        ratio = graph.nbytes() / disk.resident_bytes()
        print(f"Resident edge memory reduced {ratio:.0f}x "
              "(one stripe instead of the full CSR)")
        assert difference < 1e-9


if __name__ == "__main__":
    main()
