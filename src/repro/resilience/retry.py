"""Bounded, jittered, *deterministic* retry policy.

Retryable failures in this stack are transient by construction: worker
death (:class:`~repro.exceptions.WorkerFailure` — the deployment
respawns) and admission rejection
(:class:`~repro.exceptions.ServerOverloaded` — the queue drains).  An
exception opts in by carrying a truthy ``retryable`` attribute;
everything else (parameter errors, :class:`DeadlineExceeded`, plain
bugs) propagates on the first attempt.

The jitter sequence comes from a seeded generator, so a retry schedule
is reproducible run to run — the same property the rest of the repo
holds everywhere else (fault injection, load generation, partitioning).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["RetryPolicy", "call_with_retry", "is_retryable"]


def is_retryable(error: BaseException) -> bool:
    """Whether ``error`` opted into retry (``retryable`` attribute)."""
    return bool(getattr(error, "retryable", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded attempts and seeded jitter.

    Attempt ``i`` (0-based) that fails retryably sleeps
    ``min(backoff_ms * multiplier**i, max_backoff_ms) * (1 + jitter * u)``
    milliseconds, ``u`` drawn from the policy's seeded RNG — jitter
    de-synchronizes colliding clients without sacrificing
    reproducibility.
    """

    max_attempts: int = 3
    backoff_ms: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    max_backoff_ms: float = 1000.0
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ParameterError("max_attempts must be at least 1")
        if self.backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ParameterError("backoff must be non-negative")
        if self.jitter < 0:
            raise ParameterError("jitter must be non-negative")

    def rng(self) -> np.random.Generator:
        """A fresh jitter stream (one per retrying call site)."""
        return np.random.default_rng(self.seed)

    def delay_ms(self, attempt: int, rng: np.random.Generator) -> float:
        """The sleep after failed attempt ``attempt`` (0-based)."""
        base = min(
            self.backoff_ms * (self.multiplier ** attempt),
            self.max_backoff_ms,
        )
        if self.jitter:
            base *= 1.0 + self.jitter * float(rng.random())
        return base


def call_with_retry(
    fn,
    policy: RetryPolicy,
    *,
    on_retry=None,
    sleep=time.sleep,
):
    """Call ``fn()`` under ``policy``.

    Non-retryable exceptions and the final attempt's failure propagate
    unchanged.  ``on_retry(error, delay_ms)`` is invoked before every
    backoff sleep — the dispatch paths use it to bump their retry
    counters.
    """
    rng = policy.rng()
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - filtered below
            if not is_retryable(error) or attempt + 1 >= policy.max_attempts:
                raise
            delay = policy.delay_ms(attempt, rng)
            if on_retry is not None:
                on_retry(error, delay)
            if delay > 0:
                sleep(delay / 1e3)
    raise AssertionError("unreachable")  # pragma: no cover
