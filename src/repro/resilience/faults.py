"""Deterministic fault injection for the serving stack.

Chaos testing a multi-process deployment only works when the chaos is
**reproducible**: a flaky kill is a flaky test.  This module provides
seed-driven injection points the serving and sharding code consults at
well-defined protocol moments — activated by the ``REPRO_FAULTS``
environment variable (inherited by shard worker processes under both
``fork`` and ``spawn``) or programmatically via :func:`set_fault_plan`.

Spec grammar (clauses joined by ``;``)::

    point[@occurrences][:key=value[,key=value...]]

``occurrences`` selects which *visits* of the injection point fire (a
visit = one ``fire()`` call in this process, counted per point):

* ``3``   — exactly the third visit;
* ``3+``  — every visit from the third on;
* ``2-5`` — visits two through five inclusive;
* absent  — every visit.

Recognized parameters:

* ``scope=shard1`` — only fire in the process whose scope matches
  (shard workers set ``shard<i>``; the parent process is ``main``);
* ``gen=0`` — only fire in that worker *generation* (respawned workers
  bump it), so a kill clause slays the first incarnation exactly once
  instead of re-killing every replacement;
* ``p=0.5,seed=7`` — probabilistic firing from a per-clause seeded RNG:
  the visit sequence is still fully deterministic per process;
* anything else (``ms=50``, ``seconds=2``) is passed through to the
  injection site in the dict :func:`fire` returns.

Injection points wired into the stack (see
:func:`repro.sharding.worker.shard_worker_main` and
:meth:`repro.serving.Server`):

===================  ========================================================
``poison_batch``     worker raises before computing (an ``err`` reply)
``kill_before_sweep``  SIGKILL before the stripe product
``kill_mid_sweep``   SIGKILL after computing, before replying
``kill_after_sweep`` SIGKILL after replying
``delay_reply``      sleep ``ms`` before the step reply
``drop_remap_ack``   rebind to the new store but never acknowledge
``hang_on_stop``     ignore ``stop`` (and SIGTERM) — exercises kill escalation
``server_worker_crash``  a Server worker thread dies between batches
===================  ========================================================
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultClause",
    "FaultPlan",
    "active_plan",
    "fire",
    "fire_delay",
    "fire_kill",
    "reset_fault_plan",
    "set_fault_plan",
    "set_scope",
]

#: Environment variable carrying the fault spec.  Worker processes
#: inherit it, so one setting drives the whole deployment.
FAULTS_ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec."""

    point: str
    first: int = 1
    last: int | None = None
    probability: float | None = None
    seed: int = 0
    scope: str | None = None
    generation: int | None = None
    params: tuple[tuple[str, str], ...] = ()

    def param_dict(self) -> dict[str, str]:
        return dict(self.params)


def _parse_occurrences(spec: str) -> tuple[int, int | None]:
    spec = spec.strip()
    try:
        if spec.endswith("+"):
            return int(spec[:-1]), None
        if "-" in spec:
            first, last = spec.split("-", 1)
            return int(first), int(last)
        visit = int(spec)
        return visit, visit
    except ValueError as error:
        raise ParameterError(
            f"invalid fault occurrence spec {spec!r}"
        ) from error


def _parse_clause(text: str) -> FaultClause:
    head, _, raw_params = text.partition(":")
    point, _, occurrences = head.partition("@")
    point = point.strip()
    if not point:
        raise ParameterError(f"fault clause {text!r} names no point")
    first, last = (1, None)
    if occurrences:
        first, last = _parse_occurrences(occurrences)
    probability: float | None = None
    seed = 0
    scope: str | None = None
    generation: int | None = None
    params: list[tuple[str, str]] = []
    for item in raw_params.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        if not eq:
            raise ParameterError(
                f"fault parameter {item!r} is not key=value"
            )
        key, value = key.strip(), value.strip()
        try:
            if key == "p":
                probability = float(value)
            elif key == "seed":
                seed = int(value)
            elif key == "scope":
                scope = value
            elif key == "gen":
                generation = int(value)
            else:
                params.append((key, value))
        except ValueError as error:
            raise ParameterError(
                f"invalid fault parameter {item!r}"
            ) from error
    return FaultClause(
        point=point,
        first=first,
        last=last,
        probability=probability,
        seed=seed,
        scope=scope,
        generation=generation,
        params=tuple(params),
    )


@dataclass
class FaultPlan:
    """A parsed fault spec plus this process's per-point visit counters.

    One plan is active per process (workers re-read ``REPRO_FAULTS`` at
    startup); ``fire`` is thread-safe, so a multi-threaded parent counts
    visits globally across its threads — deterministic as long as the
    injected points are visited deterministically.
    """

    clauses: tuple[FaultClause, ...] = ()
    _visits: dict = field(default_factory=dict, repr=False)
    _rngs: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        clauses = tuple(
            _parse_clause(chunk)
            for chunk in spec.split(";")
            if chunk.strip()
        )
        return cls(clauses=clauses)

    def fire(
        self, point: str, scope: str, generation: int
    ) -> dict[str, str] | None:
        """One visit of ``point``; the matched clause's parameters when
        it fires, else ``None``."""
        with self._lock:
            visit = self._visits.get(point, 0) + 1
            self._visits[point] = visit
            for index, clause in enumerate(self.clauses):
                if clause.point != point:
                    continue
                if clause.scope is not None and clause.scope != scope:
                    continue
                if (
                    clause.generation is not None
                    and clause.generation != generation
                ):
                    continue
                if visit < clause.first or (
                    clause.last is not None and visit > clause.last
                ):
                    continue
                if clause.probability is not None:
                    rng = self._rngs.get(index)
                    if rng is None:
                        rng = np.random.default_rng(clause.seed)
                        self._rngs[index] = rng
                    if rng.random() >= clause.probability:
                        continue
                fired = clause.param_dict()
                fired["point"] = point
                fired["visit"] = str(visit)
                return fired
        return None


# -- process-local activation --------------------------------------------------

_UNSET = object()
_state_lock = threading.Lock()
_active: object = _UNSET  # FaultPlan | None once resolved
_scope = "main"
_generation = 0


def set_scope(scope: str, generation: int = 0) -> None:
    """Name this process for ``scope=``/``gen=`` clause filters.

    Shard workers call this at startup (``shard<i>``, their respawn
    generation); the parent process defaults to ``main`` / generation 0.
    """
    global _scope, _generation
    _scope = str(scope)
    _generation = int(generation)


def set_fault_plan(plan: "FaultPlan | str | None") -> None:
    """Activate a plan programmatically (``None`` disables injection
    entirely, including the environment spec) — for in-process tests."""
    global _active
    with _state_lock:
        _active = FaultPlan.from_spec(plan) if isinstance(plan, str) else plan


def reset_fault_plan() -> None:
    """Forget any active plan; the next ``fire`` re-reads the
    environment.  Shard workers call this at startup so a forked child
    never inherits the parent's resolved (possibly stale) plan."""
    global _active
    with _state_lock:
        _active = _UNSET


def active_plan() -> "FaultPlan | None":
    """The process's plan, resolving ``REPRO_FAULTS`` lazily once."""
    global _active
    with _state_lock:
        if _active is _UNSET:
            spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
            _active = FaultPlan.from_spec(spec) if spec else None
        return _active  # type: ignore[return-value]


def fire(point: str) -> dict[str, str] | None:
    """Visit ``point``; the firing clause's parameters, or ``None``.

    The overwhelmingly common case — no plan — is one ``None`` check.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.fire(point, _scope, _generation)


def fire_kill(point: str) -> None:
    """SIGKILL this process when ``point`` fires — the hard-crash
    injection the respawn paths are tested against."""
    if fire(point) is not None:
        os.kill(os.getpid(), signal.SIGKILL)


def fire_delay(point: str, default_ms: float = 50.0) -> None:
    """Sleep ``ms`` (clause parameter, or ``default_ms``) when ``point``
    fires — models a slow worker without killing it."""
    fired = fire(point)
    if fired is not None:
        time.sleep(float(fired.get("ms", default_ms)) / 1e3)
