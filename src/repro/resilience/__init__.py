"""Fault tolerance for the serving stack: supervision, retries, chaos.

The serving machinery of PRs 4–7 (thread-pool :class:`~repro.serving.Server`,
sharded :class:`~repro.sharding.Router` over ``/dev/shm``) assumed every
worker lives forever.  This package drops that assumption:

* :class:`Supervisor` — heartbeats shard worker **processes** and Server
  worker **threads** (``REPRO_HEARTBEAT_MS`` / ``REPRO_HEARTBEAT_MISSES``)
  and repairs the dead ones: shard workers are respawned and rebound to
  the live :class:`~repro.sharding.ShardStore` stripes, server threads
  restarted on their Engine replica.  In-flight sweeps recover faster
  still — worker death surfaces as pipe EOF inside the sweep, which
  respawns and retries inline, keeping results bitwise identical;
* :class:`RetryPolicy` / :func:`call_with_retry` — bounded,
  seeded-jitter backoff for *retryable* failures
  (:class:`~repro.exceptions.WorkerFailure`,
  :class:`~repro.exceptions.ServerOverloaded`; a
  :class:`~repro.exceptions.DeadlineExceeded` is final by design);
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (``REPRO_FAULTS``) behind the chaos test suite: seeded kills
  before/mid/after a sweep, delayed pipe replies, dropped remap acks,
  poisoned batches, hung shutdowns;
* :func:`reap_orphan_segments` — crash-safe ``/dev/shm`` cleanup keyed
  on the owner pid every ``repro-shm-<pid>-…`` segment name encodes.

Counters (``failures`` / ``retries`` / ``respawns`` /
``deadlines_exceeded``) surface in
:meth:`~repro.serving.LatencyStats.snapshot` and the
``repro-serving-report/1`` benchmark JSON.
"""

from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    FaultClause,
    FaultPlan,
    active_plan,
    fire,
    fire_delay,
    fire_kill,
    reset_fault_plan,
    set_fault_plan,
    set_scope,
)
from repro.resilience.reaper import (
    SEGMENT_PREFIX,
    owned_segment_name,
    owner_pid,
    pid_alive,
    reap_orphan_segments,
)
from repro.resilience.retry import RetryPolicy, call_with_retry, is_retryable
from repro.resilience.supervisor import (
    DEFAULT_HEARTBEAT_MS,
    DEFAULT_MISSED_BEATS,
    HEARTBEAT_ENV_VAR,
    MISSES_ENV_VAR,
    Supervisor,
    heartbeat_interval_ms,
    missed_beat_threshold,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultClause",
    "FaultPlan",
    "active_plan",
    "fire",
    "fire_delay",
    "fire_kill",
    "reset_fault_plan",
    "set_fault_plan",
    "set_scope",
    "SEGMENT_PREFIX",
    "owned_segment_name",
    "owner_pid",
    "pid_alive",
    "reap_orphan_segments",
    "RetryPolicy",
    "call_with_retry",
    "is_retryable",
    "DEFAULT_HEARTBEAT_MS",
    "DEFAULT_MISSED_BEATS",
    "HEARTBEAT_ENV_VAR",
    "MISSES_ENV_VAR",
    "Supervisor",
    "heartbeat_interval_ms",
    "missed_beat_threshold",
]
