"""Crash-safe cleanup of orphaned shared-memory segments.

A cleanly closed deployment unlinks its own segments
(:meth:`~repro.sharding.ShardStore.close`), and Python's resource
tracker covers most crashes — but a SIGKILLed creator whose tracker
dies with it leaves segments behind in ``/dev/shm`` forever.  The
defense is in the *name*: every segment a :class:`ShardStore` creates
is called ``repro-shm-<owner pid>-<nonce>``, so any later process can
decide ownership-liveness from the filename alone.
:func:`reap_orphan_segments` scans for that prefix and unlinks every
segment whose owner pid no longer exists; :meth:`ShardStore.build` and
:meth:`ShardedOperator.close` call it, so serving deployments
self-clean on the next start (and on shutdown) without a cron job.
"""

from __future__ import annotations

import os
import re
import secrets

from repro.obs.logs import get_logger

_log = get_logger("resilience.reaper")

__all__ = [
    "SEGMENT_PREFIX",
    "SHM_DIR",
    "owned_segment_name",
    "owner_pid",
    "pid_alive",
    "reap_orphan_segments",
]

#: Filename prefix of every segment this library creates.  The CI leak
#: checks grep for it alongside the stdlib's ``psm_`` names.
SEGMENT_PREFIX = "repro-shm"

#: Where POSIX shared memory appears as files (Linux).  On platforms
#: without it the reaper is a no-op — the stdlib tracker is the only
#: cleanup there.
SHM_DIR = "/dev/shm"

_NAME_RE = re.compile(rf"^{SEGMENT_PREFIX}-(\d+)-[0-9a-f]+$")


def owned_segment_name() -> str:
    """A fresh segment name encoding this process as the owner."""
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(6)}"


def owner_pid(name: str) -> int | None:
    """The owner pid encoded in ``name``, or ``None`` for foreign names."""
    match = _NAME_RE.match(name)
    return int(match.group(1)) if match else None


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` currently names a process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - conservative: assume alive
        return True
    return True


def reap_orphan_segments(directory: str = SHM_DIR) -> list[str]:
    """Unlink every ``repro-shm`` segment whose owner pid is dead.

    Returns the reaped names.  Races are benign: a concurrent unlink
    (the owner's tracker beat us) is ignored, and a pid reused by an
    unrelated process merely postpones the reap to the next scan.
    """
    try:
        entries = os.listdir(directory)
    except OSError as error:
        _log.debug("cannot scan %s: %s", directory, error)
        return []
    reaped: list[str] = []
    for name in entries:
        pid = owner_pid(name)
        if pid is None or pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(directory, name))
        except OSError as error:  # pragma: no cover - lost the race; fine
            _log.debug("lost reap race for %s: %s", name, error)
            continue
        reaped.append(name)
    if reaped:
        _log.info(
            "reaped %d orphaned segment(s): %s",
            len(reaped), ", ".join(sorted(reaped)),
        )
    return reaped
