"""Heartbeat supervision of serving workers.

:class:`Supervisor` is deliberately generic: a background thread that
periodically calls a ``probe`` for unhealthy worker identities and hands
each one to a ``repair`` callback.  The sharded
:class:`~repro.sharding.ShardedOperator` probes worker-process liveness
(plus an idle ``ping`` over the command pipe when no sweep is running)
and repairs by respawning the worker against the live
:class:`~repro.sharding.ShardStore`; :class:`~repro.serving.Server`
probes its worker threads and repairs by starting a replacement thread
on the same Engine replica.

The heartbeat interval comes from ``REPRO_HEARTBEAT_MS`` (default
1000 ms) unless the deployment passes one explicitly; a worker is
declared hung after :func:`missed_beat_threshold`
(``REPRO_HEARTBEAT_MISSES``, default 3) intervals without a reply.

Supervision is a *between-sweeps* safety net: a worker that dies with a
sweep in flight is detected faster — by the sweep itself, via pipe EOF —
and recovered inline by the sweep's bounded retry.  The supervisor
catches the quiet failures (a worker dying while the deployment is
idle), so the first request after an incident does not pay the
detection latency.
"""

from __future__ import annotations

import os
import threading

from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger

_log = get_logger("supervisor")

__all__ = [
    "DEFAULT_HEARTBEAT_MS",
    "DEFAULT_MISSED_BEATS",
    "HEARTBEAT_ENV_VAR",
    "MISSES_ENV_VAR",
    "Supervisor",
    "heartbeat_interval_ms",
    "missed_beat_threshold",
]

HEARTBEAT_ENV_VAR = "REPRO_HEARTBEAT_MS"
MISSES_ENV_VAR = "REPRO_HEARTBEAT_MISSES"

DEFAULT_HEARTBEAT_MS = 1000.0
DEFAULT_MISSED_BEATS = 3


def _env_number(name: str, default: float, minimum: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return max(value, minimum)


def heartbeat_interval_ms() -> float:
    """The configured heartbeat period (``REPRO_HEARTBEAT_MS``),
    floored at 10 ms so a typo cannot busy-spin the supervisor."""
    return _env_number(HEARTBEAT_ENV_VAR, DEFAULT_HEARTBEAT_MS, 10.0)


def missed_beat_threshold() -> int:
    """Heartbeats a worker may miss before it is declared hung
    (``REPRO_HEARTBEAT_MISSES``)."""
    return int(_env_number(MISSES_ENV_VAR, DEFAULT_MISSED_BEATS, 1.0))


class Supervisor:
    """Periodic health probe + repair loop on a daemon thread.

    Parameters
    ----------
    probe:
        ``() -> iterable`` of unhealthy worker identities.  Called once
        per heartbeat; must be cheap and must tolerate running
        concurrently with serving (the deployments guard their command
        pipes themselves).
    repair:
        ``(identity) -> None`` — bring one unhealthy worker back.
        Exceptions are counted (``repair_failures``) and swallowed so a
        failed repair never kills the supervision loop; the next beat
        retries.
    name:
        Thread name (shows up in stack dumps).
    interval_ms:
        Heartbeat period; default :func:`heartbeat_interval_ms`.

    The thread starts immediately and runs until :meth:`close`.
    """

    def __init__(
        self,
        probe,
        repair,
        *,
        name: str = "repro-supervisor",
        interval_ms: float | None = None,
    ):
        self._probe = probe
        self._repair = repair
        self._interval = (
            heartbeat_interval_ms() if interval_ms is None else float(interval_ms)
        ) / 1e3
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._probes = 0
        self._detected = 0
        self._repairs = 0
        self._repair_failures = 0
        self._thread = threading.Thread(
            target=self._loop, name=name, daemon=True
        )
        self._thread.start()

    @property
    def interval_ms(self) -> float:
        return self._interval * 1e3

    @property
    def closed(self) -> bool:
        return self._stop.is_set()

    def _loop(self) -> None:
        registry = obs_metrics.get_registry()
        probes = registry.counter(
            "repro_supervisor_probes_total", "Heartbeat probe rounds run."
        )
        detected = registry.counter(
            "repro_supervisor_detected_total",
            "Unhealthy workers flagged by heartbeat probes.",
        )
        repairs = registry.counter(
            "repro_supervisor_repairs_total",
            "Workers successfully repaired by supervision.",
        )
        while not self._stop.wait(self._interval):
            try:
                unhealthy = list(self._probe())
            except Exception:  # noqa: BLE001 - next beat retries
                _log.warning(
                    "health probe failed; retrying next beat",
                    exc_info=True,
                )
                continue
            with self._lock:
                self._probes += 1
            probes.inc()
            for identity in unhealthy:
                if self._stop.is_set():
                    return
                with self._lock:
                    self._detected += 1
                detected.inc()
                try:
                    self._repair(identity)
                except Exception:  # noqa: BLE001 - keep supervising
                    with self._lock:
                        self._repair_failures += 1
                    _log.warning(
                        "repair of worker %r failed; next beat retries",
                        identity, exc_info=True,
                    )
                else:
                    with self._lock:
                        self._repairs += 1
                    repairs.inc()
                    _log.info("repaired worker %r", identity)

    def stats(self) -> dict:
        """Lifetime counters of the supervision loop."""
        with self._lock:
            return {
                "interval_ms": self.interval_ms,
                "probes": self._probes,
                "detected": self._detected,
                "repairs": self._repairs,
                "repair_failures": self._repair_failures,
            }

    def close(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        self._stop.set()
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.stats()
        return (
            f"Supervisor(interval_ms={snap['interval_ms']:g}, "
            f"repairs={snap['repairs']}, closed={self.closed})"
        )
