"""FAST-PPR (Lofgren, Banerjee, Goel, Seshadhri — KDD 2014).

The first of the bidirectional pair-PPR estimators the paper cites in
Section V.  For a significance threshold ``δ``, FAST-PPR splits the work
at ``sqrt(δ)``:

1. **Frontier discovery** (backward): push from the target until every
   residual is below ``ε_r = β·sqrt(δ)``, yielding a *target set* of nodes
   whose estimate already exceeds ``ε_r`` and its *frontier* (nodes with
   non-trivial residual).
2. **Random walks** (forward): walk from the source; each walk that first
   hits the frontier at node ``w`` contributes the backward information at
   ``w``.  In the practical variant implemented here (the authors'
   "FAST-PPR with visit counting"), each walk's stop node ``v`` simply
   contributes ``r_t(v)``, and the source's settled estimate ``p_t(s)`` is
   added — algebraically the same bidirectional identity used by BiPPR,
   but with the walk budget set by FAST-PPR's ``sqrt(δ)`` split, which is
   what makes it faster than pure Monte-Carlo for small ``δ``.

Like :class:`~repro.baselines.bippr.BiPPR`, this is a *pair* estimator
(:meth:`query_pair`); the whole-vector adapter exists for interface
compatibility and is practical only on small graphs, which is exactly the
limitation that motivated HubPPR's indexing.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.backward_push import backward_push
from repro.baselines.montecarlo import sample_walk_endpoints
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.method import PPRMethod

__all__ = ["FastPPR"]


class FastPPR(PPRMethod):
    """FAST-PPR bidirectional pair estimator.

    Parameters
    ----------
    delta:
        Significance threshold; pair scores above it get relative-error
        guarantees.  ``None`` defers to ``1/n``.
    beta:
        Frontier threshold multiplier: backward push runs to
        ``ε_r = beta · sqrt(δ)``.
    walk_constant:
        Walk budget multiplier: ``W = walk_constant · sqrt(δ)/δ · ln n``
        walks (the theoretical ``c / ε²`` constant folded in).
    max_walks:
        Hard cap on walks per query.
    c:
        Restart probability.
    seed:
        RNG seed.
    """

    name = "FAST_PPR"

    def __init__(
        self,
        delta: float | None = None,
        beta: float = 1.0 / 6.0,
        walk_constant: float = 24.0,
        max_walks: int = 200_000,
        c: float = 0.15,
        seed: int = 0,
    ):
        super().__init__()
        if beta <= 0:
            raise ParameterError("beta must be positive")
        if walk_constant <= 0:
            raise ParameterError("walk_constant must be positive")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        if delta is not None and delta <= 0:
            raise ParameterError("delta must be positive")
        self.delta = delta
        self.beta = float(beta)
        self.walk_constant = float(walk_constant)
        self.max_walks = int(max_walks)
        self.c = float(c)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._epsilon_r = 0.0
        self._num_walks = 0

    def _preprocess(self, graph: Graph) -> None:
        n = graph.num_nodes
        delta = self.delta if self.delta is not None else 1.0 / n
        self._epsilon_r = self.beta * math.sqrt(delta)
        theory = self.walk_constant * (math.sqrt(delta) / delta) * math.log(max(n, 2))
        self._num_walks = int(min(max(theory, 1), self.max_walks))

    def preprocessed_bytes(self) -> int:
        return 0

    # -- pair API ---------------------------------------------------------------

    def query_pair(self, source: int, target: int) -> float:
        """Estimate the single score ``π_source(target)``."""
        graph = self.graph
        for node, label in ((source, "source"), (target, "target")):
            if not 0 <= node < graph.num_nodes:
                raise ParameterError(f"{label} {node} out of range")
        push = backward_push(graph, target, rmax=self._epsilon_r, c=self.c)
        starts = np.full(self._num_walks, source, dtype=np.int64)
        stops = sample_walk_endpoints(graph, starts, c=self.c, rng=self._rng)
        walk_term = float(push.residual[stops].mean()) if stops.size else 0.0
        return float(push.estimate[source]) + walk_term

    # -- whole-vector adapter ------------------------------------------------------

    def _query(self, seed: int) -> np.ndarray:
        graph = self.graph
        starts = np.full(self._num_walks, seed, dtype=np.int64)
        stops = sample_walk_endpoints(graph, starts, c=self.c, rng=self._rng)
        pi_hat = np.bincount(stops, minlength=graph.num_nodes).astype(np.float64)
        pi_hat /= max(stops.size, 1)

        scores = np.empty(graph.num_nodes)
        for target in range(graph.num_nodes):
            push = backward_push(graph, target, rmax=self._epsilon_r, c=self.c)
            residual_nodes = np.flatnonzero(push.residual)
            scores[target] = push.estimate[seed] + float(
                push.residual[residual_nodes] @ pi_hat[residual_nodes]
            )
        return scores
