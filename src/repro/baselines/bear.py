"""BEAR-APPROX (Shin, Jung, Sael, Kang — SIGMOD 2015, Section V here).

BEAR solves the RWR linear system ``H r = c q`` with
``H = I − (1−c) Ãᵀ`` by *block elimination* after a SlashBurn reordering:

* non-hub nodes come first, so ``H11`` is block diagonal with many small
  blocks (one per connected component of the hub-removed graph) and can be
  inverted block by block;
* the hub part is folded into the dense Schur complement
  ``S = H22 − H21 H11⁻¹ H12`` whose inverse is precomputed.

BEAR-APPROX additionally *drops* every entry of the precomputed
``H11⁻¹`` and ``S⁻¹`` whose absolute value is below the drop tolerance
(``n^{-1/2}`` in the paper's setup), trading accuracy for memory.  The
precomputed inverses still grow roughly quadratically with the hub count,
which is why BEAR-APPROX exhausts memory on the paper's larger datasets.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.graph.graph import Graph
from repro.graph.slashburn import slashburn
from repro.method import PPRMethod
from repro.ranking.rwr import rwr_matrix

__all__ = ["BearApprox"]


class BearApprox(PPRMethod):
    """BEAR-APPROX: block elimination with drop tolerance.

    Parameters
    ----------
    drop_tolerance:
        Entries of the precomputed inverses below this magnitude are
        dropped.  ``None`` (default) uses ``0.1 · n^{-1/2}`` — the paper's
        ``n^{-1/2}`` rescaled because at this repo's ~1/40-scale node
        counts the raw value drops so many entries that recall collapses,
        which would break the Figure 7 shape (BEAR-APPROX tracks the
        accurate methods there).  Pass ``0.0`` for exact BEAR.
    hub_ratio:
        Fraction of nodes removed per SlashBurn round.
    c:
        Restart probability.
    memory_budget_bytes:
        Optional cap on preprocessed bytes (the dense Schur inverse is
        checked *before* allocation, emulating the paper's OOM failures).
    """

    name = "BEAR_APPROX"

    def __init__(
        self,
        drop_tolerance: float | None = None,
        hub_ratio: float = 0.005,
        c: float = 0.15,
        memory_budget_bytes: int | None = None,
    ):
        super().__init__()
        if drop_tolerance is not None and drop_tolerance < 0:
            raise ParameterError("drop_tolerance must be non-negative")
        if not 0.0 < hub_ratio < 1.0:
            raise ParameterError("hub_ratio must be in (0, 1)")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        self.drop_tolerance = drop_tolerance
        self.hub_ratio = float(hub_ratio)
        self.c = float(c)
        self.memory_budget_bytes = memory_budget_bytes

        self._order: np.ndarray | None = None       # old id of each new position
        self._inverse_order: np.ndarray | None = None
        self._n1 = 0
        self._h11_inv: sp.csr_array | None = None
        self._h12: sp.csr_array | None = None
        self._h21: sp.csr_array | None = None
        self._schur_inv: sp.csr_array | None = None

    # -- preprocessing -------------------------------------------------------------

    def _preprocess(self, graph: Graph) -> None:
        n = graph.num_nodes
        drop = self.drop_tolerance
        if drop is None:
            drop = 0.1 / np.sqrt(n)

        ordering = slashburn(
            graph, k=max(1, int(round(self.hub_ratio * n)))
        )
        # BEAR wants non-hubs first (block-diagonal part), hubs last.
        order = np.concatenate(
            [
                ordering.permutation[ordering.num_hubs :],
                ordering.permutation[: ordering.num_hubs],
            ]
        )
        n2 = ordering.num_hubs
        n1 = n - n2

        # Budget check before any dense allocation: the Schur inverse alone
        # needs n2^2 doubles.
        schur_bytes = n2 * n2 * 8
        if (
            self.memory_budget_bytes is not None
            and schur_bytes > self.memory_budget_bytes
        ):
            raise MemoryBudgetExceeded(self.name, schur_bytes, self.memory_budget_bytes)

        matrix = rwr_matrix(graph, self.c)
        permuted = matrix[order][:, order].tocsr()
        h11 = permuted[:n1, :n1].tocsr()
        h12 = permuted[:n1, n1:].tocsr()
        h21 = permuted[n1:, :n1].tocsr()
        h22 = permuted[n1:, n1:].toarray() if n2 else np.zeros((0, 0))

        # Blocks of H11: connected components of the non-hub subgraph.
        # ordering.blocks holds new ids in [num_hubs, n); in BEAR's order
        # those map to [0, n1).
        h11_inv = _blockwise_inverse(
            h11, [block - ordering.num_hubs for block in ordering.blocks], drop
        )

        if n2:
            schur = h22 - kernels.spmm(h21, kernels.spmm(h11_inv, h12.toarray()))
            schur_inv = np.linalg.inv(schur)
            if drop > 0:
                schur_inv[np.abs(schur_inv) < drop] = 0.0
            schur_inv_sp = sp.csr_array(schur_inv)
        else:
            schur_inv_sp = sp.csr_array((0, 0))

        self._order = order
        inverse_order = np.empty(n, dtype=np.int64)
        inverse_order[order] = np.arange(n)
        self._inverse_order = inverse_order
        self._n1 = n1
        self._h11_inv = h11_inv
        self._h12 = h12
        self._h21 = h21
        self._schur_inv = schur_inv_sp

        used = self.preprocessed_bytes()
        if self.memory_budget_bytes is not None and used > self.memory_budget_bytes:
            raise MemoryBudgetExceeded(self.name, used, self.memory_budget_bytes)

    def preprocessed_bytes(self) -> int:
        total = 0
        for mat in (self._h11_inv, self._h12, self._h21, self._schur_inv):
            if mat is not None:
                total += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
        for arr in (self._order, self._inverse_order):
            if arr is not None:
                total += arr.nbytes
        return int(total)

    # -- online phase -----------------------------------------------------------------

    def _query(self, seed: int) -> np.ndarray:
        if self._order is None:
            raise ParameterError("BEAR preprocessing did not complete")
        assert self._h11_inv is not None
        assert self._h12 is not None and self._h21 is not None
        assert self._schur_inv is not None and self._inverse_order is not None

        n = self.graph.num_nodes
        n1 = self._n1
        q = np.zeros(n)
        q[self._inverse_order[seed]] = self.c
        q1, q2 = q[:n1], q[n1:]

        if q.size - n1:
            # The elimination chain is four SpMVs on the kernel layer
            # (identical numerics to the sparse @ operator).
            r2 = kernels.spmv(
                self._schur_inv,
                q2 - kernels.spmv(self._h21, kernels.spmv(self._h11_inv, q1)),
            )
            r1 = kernels.spmv(self._h11_inv, q1 - kernels.spmv(self._h12, r2))
        else:
            r2 = np.zeros(0)
            r1 = kernels.spmv(self._h11_inv, q1)

        permuted_result = np.concatenate([r1, r2])
        return permuted_result[self._inverse_order]

    def _query_many(self, seeds: np.ndarray) -> np.ndarray:
        """Vectorized online phase: block elimination is a fixed chain of
        sparse multiplies, so the whole seed batch runs as ``(n, B)``
        matrices — one SpMM per factor instead of per-seed SpMVs."""
        if self._order is None:
            raise ParameterError("BEAR preprocessing did not complete")
        assert self._h11_inv is not None
        assert self._h12 is not None and self._h21 is not None
        assert self._schur_inv is not None and self._inverse_order is not None

        n = self.graph.num_nodes
        n1 = self._n1
        q = np.zeros((n, seeds.size))
        q[self._inverse_order[seeds], np.arange(seeds.size)] = self.c
        q1, q2 = q[:n1], q[n1:]

        if n - n1:
            # Same chain as the single-seed path but blocked: one SpMM per
            # factor for the whole batch on the kernel layer.
            r2 = kernels.spmm(
                self._schur_inv,
                q2 - kernels.spmm(self._h21, kernels.spmm(self._h11_inv, q1)),
            )
            r1 = kernels.spmm(self._h11_inv, q1 - kernels.spmm(self._h12, r2))
        else:
            r2 = np.zeros((0, seeds.size))
            r1 = kernels.spmm(self._h11_inv, q1)

        permuted_result = np.concatenate([r1, r2], axis=0)
        return np.ascontiguousarray(permuted_result[self._inverse_order].T)


def _blockwise_inverse(
    h11: sp.csr_array, blocks: list[np.ndarray], drop: float
) -> sp.csr_array:
    """Invert a block-diagonal sparse matrix block by block.

    ``blocks`` index disjoint diagonal blocks covering all rows.  Entries
    below ``drop`` are removed from the result.
    """
    n1 = h11.shape[0]
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for block in blocks:
        dense = h11[block][:, block].toarray()
        inverse = np.linalg.inv(dense)
        if drop > 0:
            inverse[np.abs(inverse) < drop] = 0.0
        nz_row, nz_col = np.nonzero(inverse)
        rows.append(block[nz_row])
        cols.append(block[nz_col])
        vals.append(inverse[nz_row, nz_col])
    if rows:
        row_idx = np.concatenate(rows)
        col_idx = np.concatenate(cols)
        values = np.concatenate(vals)
    else:
        row_idx = np.empty(0, dtype=np.int64)
        col_idx = np.empty(0, dtype=np.int64)
        values = np.empty(0)
    return sp.csr_array((values, (row_idx, col_idx)), shape=(n1, n1))
