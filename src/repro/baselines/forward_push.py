"""Forward Push (Andersen, Chung, Lang — FOCS 2006).

Local residual propagation: maintain an estimate vector ``p`` and a
residual vector ``r`` with the invariant

.. math::

    \\pi_s(t) \\;=\\; p(t) + \\sum_v r(v)\\, \\pi_v(t) \\quad \\forall t,

starting from ``r = e_s``.  A *push* on node ``v`` converts the fraction
``c`` of its residual into estimate and spreads the remaining ``1-c``
evenly over its out-neighbors.  Pushing until ``r(v) < rmax · dout(v)``
for all ``v`` guarantees per-node error below ``rmax`` in the
degree-normalized sense, at total cost ``O(1/(c · rmax))`` independent of
the graph size — the locality property FORA builds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["ForwardPushResult", "forward_push"]


@dataclass(frozen=True)
class ForwardPushResult:
    """Outcome of a forward-push run.

    Attributes
    ----------
    estimate:
        The settled score vector ``p`` (lower bound on the RWR scores).
    residual:
        The remaining residual vector ``r``; the invariant above relates
        it to the exact scores.
    pushes:
        Number of push operations performed.
    """

    estimate: np.ndarray
    residual: np.ndarray
    pushes: int


def forward_push(
    graph: Graph,
    seed: int,
    rmax: float,
    c: float = 0.15,
    degree_scaled: bool = True,
    max_pushes: int = 50_000_000,
) -> ForwardPushResult:
    """Run forward push from ``seed`` until all residuals fall below the
    threshold.

    Parameters
    ----------
    graph:
        Input graph.
    seed:
        Source node.
    rmax:
        Residual threshold.  With ``degree_scaled`` (FORA's convention) a
        node is pushed while ``r(v) > rmax * dout(v)``; otherwise while
        ``r(v) > rmax``.
    c:
        Restart probability.
    degree_scaled:
        Threshold convention (see above).
    max_pushes:
        Safety cap on push operations.

    Returns
    -------
    ForwardPushResult
    """
    if rmax <= 0:
        raise ParameterError("rmax must be positive")
    if not 0.0 < c < 1.0:
        raise ParameterError("restart probability c must be in (0, 1)")
    n = graph.num_nodes
    if not 0 <= seed < n:
        raise ParameterError(f"seed {seed} out of range")

    indptr = graph.adjacency.indptr
    indices = graph.adjacency.indices
    out_degree = (indptr[1:] - indptr[:-1]).astype(np.int64)

    estimate = np.zeros(n)
    residual = np.zeros(n)
    residual[seed] = 1.0

    threshold = rmax * np.maximum(out_degree, 1) if degree_scaled else np.full(n, rmax)

    # The queue loop is interpreter-bound; when the Numba kernel backend
    # is active, run the compiled twin (operation-for-operation identical
    # to the loop below) instead.
    pushes = kernels.forward_push_loop(
        indptr, indices, np.asarray(threshold, dtype=np.float64),
        c, seed, max_pushes, estimate, residual,
    )
    if pushes is not None:
        if pushes < 0:
            raise ParameterError(
                f"forward_push exceeded {max_pushes} pushes; rmax={rmax} is "
                "too small for this graph"
            )
        return ForwardPushResult(
            estimate=estimate, residual=residual, pushes=pushes
        )

    queue: deque[int] = deque([seed])
    in_queue = np.zeros(n, dtype=bool)
    in_queue[seed] = True
    pushes = 0

    while queue:
        node = queue.popleft()
        in_queue[node] = False
        mass = residual[node]
        if mass <= threshold[node]:
            continue
        pushes += 1
        if pushes > max_pushes:
            raise ParameterError(
                f"forward_push exceeded {max_pushes} pushes; rmax={rmax} is "
                "too small for this graph"
            )
        estimate[node] += c * mass
        residual[node] = 0.0
        degree = out_degree[node]
        if degree == 0:
            # Dangling under 'uniform' policy: residual mass spreads so
            # thinly (1/n per node) that it falls below any practical
            # threshold; absorb it into the estimate at the node itself
            # to preserve total mass, matching the self-loop policy.
            estimate[node] += (1.0 - c) * mass
            continue
        share = (1.0 - c) * mass / degree
        targets = indices[indptr[node] : indptr[node + 1]]
        residual[targets] += share
        for target in targets[residual[targets] > threshold[targets]]:
            if not in_queue[target]:
                queue.append(int(target))
                in_queue[target] = True

    return ForwardPushResult(estimate=estimate, residual=residual, pushes=pushes)
