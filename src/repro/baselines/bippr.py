"""BiPPR (Lofgren, Banerjee, Goel — WSDM 2016): bidirectional pair-PPR.

BiPPR estimates a *single pair* score ``π_s(t)`` by combining backward
push at the target with Monte-Carlo walks at the source:

.. math::

    \\hat{\\pi}_s(t) \\;=\\; p_t(s)
        + \\frac{1}{W} \\sum_{w=1}^{W} r_t(V_w),

where ``(p_t, r_t)`` is the backward-push pair with residual threshold
``rmax`` and ``V_w`` is the stop node of the ``w``-th walk.  With
``W ≥ c_{bi} · rmax / δ`` walks the estimate is within relative error
``ε`` of any ``π_s(t) ≥ δ`` with high probability.

The paper lists BiPPR in related work (Section V) and compares against
its successor HubPPR ("the most recent study with the best performance
among bi-directional methods"); BiPPR is included here both as the
building block HubPPR indexes and as an extra baseline for pair queries.
Unlike the other classes it exposes a *pair* API (:meth:`query_pair`)
alongside the whole-vector adapter required by :class:`PPRMethod`.

The hot loop of both APIs is :func:`~repro.baselines.backward_push.
backward_push` (one run per target in the whole-vector adapter), which
executes on the compiled queue kernel whenever the Numba backend of
:mod:`repro.kernels` is active — BiPPR needs no code of its own to
benefit from the kernel layer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.backward_push import backward_push
from repro.baselines.montecarlo import sample_walk_endpoints
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.method import PPRMethod

__all__ = ["BiPPR"]


class BiPPR(PPRMethod):
    """Bidirectional pair-PPR estimator.

    Parameters
    ----------
    epsilon:
        Target relative error for scores above ``delta``.
    delta:
        Significance threshold; ``None`` defers to ``1/n``.
    backward_rmax:
        Backward-push residual threshold (the time/accuracy dial: smaller
        means more push work and fewer walks).
    max_walks:
        Cap on Monte-Carlo walks per query.
    c:
        Restart probability.
    seed:
        RNG seed for the walk sampler.
    """

    name = "BiPPR"

    def __init__(
        self,
        epsilon: float = 0.5,
        delta: float | None = None,
        backward_rmax: float = 1e-3,
        max_walks: int = 200_000,
        c: float = 0.15,
        seed: int = 0,
    ):
        super().__init__()
        if epsilon <= 0:
            raise ParameterError("epsilon must be positive")
        if backward_rmax <= 0:
            raise ParameterError("backward_rmax must be positive")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        self.epsilon = float(epsilon)
        self.delta = delta
        self.backward_rmax = float(backward_rmax)
        self.max_walks = int(max_walks)
        self.c = float(c)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._num_walks = 0

    def _preprocess(self, graph: Graph) -> None:
        n = graph.num_nodes
        delta = self.delta if self.delta is not None else 1.0 / n
        # Walks needed: (2e/ε²) · rmax/δ · ln(2/p_f) with p_f = 1/n.
        theory = (
            (2.0 * math.e / self.epsilon**2)
            * (self.backward_rmax / delta)
            * math.log(2.0 * n)
        )
        self._num_walks = int(min(theory, self.max_walks))

    def preprocessed_bytes(self) -> int:
        return 0  # plain BiPPR keeps no index (that is HubPPR's addition)

    # -- pair API ---------------------------------------------------------------

    def query_pair(self, source: int, target: int) -> float:
        """Estimate the single score ``π_source(target)``."""
        graph = self.graph
        for node, label in ((source, "source"), (target, "target")):
            if not 0 <= node < graph.num_nodes:
                raise ParameterError(f"{label} {node} out of range")
        push = backward_push(graph, target, rmax=self.backward_rmax, c=self.c)
        starts = np.full(self._num_walks, source, dtype=np.int64)
        stops = sample_walk_endpoints(graph, starts, c=self.c, rng=self._rng)
        walk_term = float(push.residual[stops].mean()) if stops.size else 0.0
        return float(push.estimate[source]) + walk_term

    # -- whole-vector adapter ------------------------------------------------------

    def _query(self, seed: int) -> np.ndarray:
        """Whole-vector estimate: one walk batch shared across targets,
        per-target backward pushes for the walk-mass refinement.

        This is exactly the expensive pattern the paper describes for
        bidirectional methods used as whole-vector solvers; kept simple
        here (no hub index) and practical only on small graphs.
        """
        graph = self.graph
        starts = np.full(self._num_walks, seed, dtype=np.int64)
        stops = sample_walk_endpoints(graph, starts, c=self.c, rng=self._rng)
        pi_hat = np.bincount(stops, minlength=graph.num_nodes).astype(np.float64)
        pi_hat /= max(stops.size, 1)

        scores = np.empty(graph.num_nodes)
        for target in range(graph.num_nodes):
            push = backward_push(
                graph, target, rmax=self.backward_rmax, c=self.c
            )
            residual_nodes = np.flatnonzero(push.residual)
            scores[target] = push.estimate[seed] + float(
                push.residual[residual_nodes] @ pi_hat[residual_nodes]
            )
        return scores
