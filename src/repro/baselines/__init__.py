"""Baseline approximate-RWR methods from the paper's evaluation (Section V).

Every class implements :class:`repro.method.PPRMethod`:

* :class:`~repro.baselines.brppr.BRPPR` — boundary-restricted PPR
  (Gleich & Polito, 2006): online-only, expands an active vertex set.
* :class:`~repro.baselines.nblin.NBLin` — NB_LIN (Tong et al., 2008):
  partition + low-rank + Sherman–Morrison–Woodbury.
* :class:`~repro.baselines.bear.BearApprox` — BEAR-APPROX (Shin et al.,
  2015): SlashBurn + block elimination with a drop tolerance.
* :class:`~repro.baselines.fora.Fora` — FORA (Wang et al., 2017):
  forward push + Monte-Carlo with a per-node walk index.
* :class:`~repro.baselines.hubppr.HubPPR` — HubPPR (Wang et al., 2016):
  bidirectional estimation with hub indexes, adapted to whole-vector
  queries as in the paper's experiments.
* :class:`~repro.baselines.bepi.BePI` — BePI (Jung et al., 2017): the
  *exact* block-elimination method used as ground truth (Appendix A).

Shared substrates: :mod:`~repro.baselines.forward_push`,
:mod:`~repro.baselines.backward_push`, and
:mod:`~repro.baselines.montecarlo`.
"""

from repro.baselines.forward_push import forward_push, ForwardPushResult
from repro.baselines.backward_push import backward_push, BackwardPushResult
from repro.baselines.montecarlo import monte_carlo_rwr, sample_walk_endpoints, WalkIndex
from repro.baselines.bippr import BiPPR
from repro.baselines.brppr import BRPPR
from repro.baselines.fastppr import FastPPR
from repro.baselines.rppr import RPPR
from repro.baselines.nblin import NBLin
from repro.baselines.bear import BearApprox
from repro.baselines.fora import Fora
from repro.baselines.hubppr import HubPPR
from repro.baselines.bepi import BePI

__all__ = [
    "forward_push",
    "ForwardPushResult",
    "backward_push",
    "BackwardPushResult",
    "monte_carlo_rwr",
    "sample_walk_endpoints",
    "WalkIndex",
    "BiPPR",
    "BRPPR",
    "FastPPR",
    "RPPR",
    "NBLin",
    "BearApprox",
    "Fora",
    "HubPPR",
    "BePI",
]
