"""Backward (reverse) push — the local operator behind bidirectional PPR
methods (FAST-PPR, BiPPR, HubPPR).

For a fixed *target* ``t``, backward push maintains an estimate ``p`` and
residual ``r`` over potential sources with the invariant

.. math::

    \\pi_s(t) \\;=\\; p(s) + \\sum_v r(v)\\, \\pi_s(v) \\quad \\forall s,

starting from ``r = e_t``.  A push on ``v`` moves ``c·r(v)`` into ``p(v)``
and spreads ``(1-c)·r(v)/dout(u)`` to every *in*-neighbor ``u`` of ``v``.
Pushing until ``max_v r(v) ≤ rmax`` bounds the bias of the bidirectional
estimator by ``rmax`` (Lofgren et al., 2016).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["BackwardPushResult", "backward_push"]


@dataclass(frozen=True)
class BackwardPushResult:
    """Outcome of a backward-push run for one target node.

    Attributes
    ----------
    estimate:
        ``p`` — settled contribution such that
        ``π_s(t) ≈ p(s) + Σ_v r(v) π_s(v)``.
    residual:
        ``r`` — remaining residual, all entries ``≤ rmax`` on return.
    pushes:
        Number of push operations performed.
    """

    estimate: np.ndarray
    residual: np.ndarray
    pushes: int


def backward_push(
    graph: Graph,
    target: int,
    rmax: float,
    c: float = 0.15,
    max_pushes: int = 50_000_000,
) -> BackwardPushResult:
    """Run backward push for ``target`` until all residuals are ``≤ rmax``."""
    if rmax <= 0:
        raise ParameterError("rmax must be positive")
    if not 0.0 < c < 1.0:
        raise ParameterError("restart probability c must be in (0, 1)")
    n = graph.num_nodes
    if not 0 <= target < n:
        raise ParameterError(f"target {target} out of range")

    # In-neighbors with the correct 1/dout(u) weights are exactly the
    # rows of Ã^T: row v of transition_transpose lists (u, 1/dout(u)).
    trans_t = graph.transition_transpose
    indptr = trans_t.indptr
    indices = trans_t.indices
    weights = trans_t.data

    estimate = np.zeros(n)
    residual = np.zeros(n)
    residual[target] = 1.0

    # Compiled twin of the loop below (see forward_push for the contract).
    pushes = kernels.backward_push_loop(
        indptr, indices, weights, rmax, c, target, max_pushes,
        estimate, residual,
    )
    if pushes is not None:
        if pushes < 0:
            raise ParameterError(
                f"backward_push exceeded {max_pushes} pushes; rmax={rmax} "
                "is too small for this graph"
            )
        return BackwardPushResult(
            estimate=estimate, residual=residual, pushes=pushes
        )

    queue: deque[int] = deque([target])
    in_queue = np.zeros(n, dtype=bool)
    in_queue[target] = True
    pushes = 0

    while queue:
        node = queue.popleft()
        in_queue[node] = False
        mass = residual[node]
        if mass <= rmax:
            continue
        pushes += 1
        if pushes > max_pushes:
            raise ParameterError(
                f"backward_push exceeded {max_pushes} pushes; rmax={rmax} "
                "is too small for this graph"
            )
        estimate[node] += c * mass
        residual[node] = 0.0
        start, end = indptr[node], indptr[node + 1]
        sources = indices[start:end]
        residual[sources] += (1.0 - c) * mass * weights[start:end]
        for source in sources[residual[sources] > rmax]:
            if not in_queue[source]:
                queue.append(int(source))
                in_queue[source] = True

    return BackwardPushResult(estimate=estimate, residual=residual, pushes=pushes)
