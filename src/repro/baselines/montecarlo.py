"""Monte-Carlo random-walk engine and walk index.

A single random walk with restart probability ``c`` started at ``s`` stops
at node ``v`` with probability exactly ``π_s(v)`` (the RWR score), so the
empirical stop distribution of many walks is an unbiased RWR estimator.
FORA and HubPPR both build on this: FORA runs walks from residual nodes
after forward push, HubPPR runs walks from the source, and both precompute
walk *endpoints* in their indexing phase.

The engine is batch-vectorized: all active walkers advance one step per
numpy pass, sampling out-neighbors directly from the CSR structure.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["sample_walk_endpoints", "monte_carlo_rwr", "WalkIndex"]

#: Geometric walk lengths have mean 1/c ≈ 6.7 at c = 0.15; a cap of 10/c
#: truncates less than (1-c)^(10/c) ≈ 2e-5 of the probability mass.
_LENGTH_CAP_FACTOR = 10


def sample_walk_endpoints(
    graph: Graph,
    starts: np.ndarray,
    c: float = 0.15,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Run one random walk per entry of ``starts``; return the stop nodes.

    Each walker stops with probability ``c`` at every step (including
    step 0, matching the RWR stationary distribution) and otherwise moves
    to a uniformly random out-neighbor.

    Dangling handling follows the graph's policy: under ``"selfloop"``
    the added loops are part of the adjacency already; under ``"uniform"``
    a walker on a dangling node jumps to a uniformly random node.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError("restart probability c must be in (0, 1)")
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    starts = np.asarray(starts, dtype=np.int64)

    indptr = graph.adjacency.indptr
    indices = graph.adjacency.indices
    out_degree = (indptr[1:] - indptr[:-1]).astype(np.int64)

    position = starts.copy()
    endpoints = np.empty_like(position)
    active = np.arange(position.size, dtype=np.int64)
    max_steps = int(_LENGTH_CAP_FACTOR / c) + 1

    for _ in range(max_steps):
        if active.size == 0:
            break
        stop = rng.random(active.size) < c
        stopped = active[stop]
        endpoints[stopped] = position[stopped]
        active = active[~stop]
        if active.size == 0:
            break
        pos = position[active]
        degree = out_degree[pos]
        moved = degree > 0
        if moved.any():
            move_idx = active[moved]
            move_pos = pos[moved]
            offsets = (rng.random(move_pos.size) * degree[moved]).astype(np.int64)
            position[move_idx] = indices[indptr[move_pos] + offsets]
        if (~moved).any():
            # Dangling under the 'uniform' policy: teleport anywhere.
            jump_idx = active[~moved]
            position[jump_idx] = rng.integers(0, graph.num_nodes, size=jump_idx.size)

    # Truncation: any walker still active stops where it stands.
    if active.size:
        endpoints[active] = position[active]
    return endpoints


def monte_carlo_rwr(
    graph: Graph,
    seed: int,
    num_walks: int,
    c: float = 0.15,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Pure Monte-Carlo RWR estimate: stop-node frequencies of
    ``num_walks`` walks from ``seed``."""
    if num_walks < 1:
        raise ParameterError("num_walks must be at least 1")
    starts = np.full(num_walks, seed, dtype=np.int64)
    stops = sample_walk_endpoints(graph, starts, c=c, rng=rng)
    scores = np.bincount(stops, minlength=graph.num_nodes).astype(np.float64)
    return scores / num_walks


class WalkIndex:
    """Precomputed random-walk endpoints, ``capacity[v]`` walks per node.

    This is the storage scheme of FORA's indexing phase (and HubPPR's
    forward hub index): endpoints are concatenated into one array with a
    per-node offset table, so reading the first ``k`` endpoints of node
    ``v`` is a contiguous slice.
    """

    def __init__(
        self,
        graph: Graph,
        capacity: np.ndarray,
        c: float = 0.15,
        rng: np.random.Generator | int | None = None,
    ):
        capacity = np.asarray(capacity, dtype=np.int64)
        if capacity.shape != (graph.num_nodes,):
            raise ParameterError("capacity must have one entry per node")
        if (capacity < 0).any():
            raise ParameterError("walk capacities must be non-negative")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

        self._offsets = np.zeros(graph.num_nodes + 1, dtype=np.int64)
        np.cumsum(capacity, out=self._offsets[1:])
        starts = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), capacity)
        dtype = np.int32 if graph.num_nodes < 2**31 else np.int64
        if starts.size:
            self._endpoints = sample_walk_endpoints(graph, starts, c=c, rng=rng).astype(dtype)
        else:
            self._endpoints = np.empty(0, dtype=dtype)

    def capacity(self, node: int) -> int:
        """Number of stored walks for ``node``."""
        return int(self._offsets[node + 1] - self._offsets[node])

    def endpoints(self, node: int, count: int | None = None) -> np.ndarray:
        """First ``count`` stored endpoints for ``node`` (all if ``None``)."""
        begin = self._offsets[node]
        end = self._offsets[node + 1]
        if count is not None:
            end = min(end, begin + count)
        return self._endpoints[begin:end]

    def nbytes(self) -> int:
        """Bytes of index storage (endpoint array + offset table)."""
        return int(self._endpoints.nbytes + self._offsets.nbytes)

    @property
    def total_walks(self) -> int:
        return int(self._endpoints.size)
