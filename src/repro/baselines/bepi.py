"""BePI (Jung, Park, Sael, Kang — SIGMOD 2017): exact block-elimination RWR.

BePI is the exact method the paper uses as ground truth (Appendix A).  Like
BEAR it reorders with SlashBurn and eliminates the block-diagonal non-hub
part ``H11`` exactly, but instead of precomputing the dense inverse of the
Schur complement it solves the (small) hub system *iteratively* in the
online phase with the Schur complement applied as a matrix-free operator:

.. math::

    S\\,r_2 = c\\,q_2 - H_{21} H_{11}^{-1} c\\,q_1, \\qquad
    S x = H_{22} x - H_{21}\\big(H_{11}^{-1}(H_{12} x)\\big).

Storing only sparse factors keeps the preprocessed data far smaller than
BEAR's — but still one to two orders of magnitude larger than TPA's single
vector (Figure 10(a)) — while every query pays for an inner GMRES solve,
which is why TPA is up to ~100× faster online (Figure 10(c)).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import kernels
from repro.exceptions import ConvergenceError, MemoryBudgetExceeded, ParameterError
from repro.graph.graph import Graph
from repro.graph.slashburn import slashburn
from repro.method import PPRMethod
from repro.ranking.rwr import rwr_matrix

__all__ = ["BePI"]


class BePI(PPRMethod):
    """Exact RWR via block elimination + iterative Schur solve.

    Parameters
    ----------
    hub_ratio:
        Fraction of nodes removed per SlashBurn round.
    c:
        Restart probability.
    solver_tol:
        Relative tolerance of the inner GMRES solve.
    memory_budget_bytes:
        Optional cap on preprocessed bytes.
    """

    name = "BePI"

    def __init__(
        self,
        hub_ratio: float = 0.005,
        c: float = 0.15,
        solver_tol: float = 1e-10,
        memory_budget_bytes: int | None = None,
    ):
        super().__init__()
        if not 0.0 < hub_ratio < 1.0:
            raise ParameterError("hub_ratio must be in (0, 1)")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        self.hub_ratio = float(hub_ratio)
        self.c = float(c)
        self.solver_tol = float(solver_tol)
        self.memory_budget_bytes = memory_budget_bytes

        self._inverse_order: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self._n1 = 0
        self._h11_inv: sp.csr_array | None = None
        self._h12: sp.csr_array | None = None
        self._h21: sp.csr_array | None = None
        self._h22: sp.csr_array | None = None

    # -- preprocessing -------------------------------------------------------------

    def _preprocess(self, graph: Graph) -> None:
        n = graph.num_nodes
        ordering = slashburn(graph, k=max(1, int(round(self.hub_ratio * n))))
        order = np.concatenate(
            [
                ordering.permutation[ordering.num_hubs :],
                ordering.permutation[: ordering.num_hubs],
            ]
        )
        n2 = ordering.num_hubs
        n1 = n - n2

        matrix = rwr_matrix(graph, self.c)
        permuted = matrix[order][:, order].tocsr()
        h11 = permuted[:n1, :n1].tocsr()

        self._h11_inv = _exact_blockwise_inverse(
            h11, [block - ordering.num_hubs for block in ordering.blocks]
        )
        self._h12 = permuted[:n1, n1:].tocsr()
        self._h21 = permuted[n1:, :n1].tocsr()
        self._h22 = permuted[n1:, n1:].tocsr()
        self._order = order
        inverse_order = np.empty(n, dtype=np.int64)
        inverse_order[order] = np.arange(n)
        self._inverse_order = inverse_order
        self._n1 = n1

        used = self.preprocessed_bytes()
        if self.memory_budget_bytes is not None and used > self.memory_budget_bytes:
            raise MemoryBudgetExceeded(self.name, used, self.memory_budget_bytes)

    def preprocessed_bytes(self) -> int:
        total = 0
        for mat in (self._h11_inv, self._h12, self._h21, self._h22):
            if mat is not None:
                total += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
        for arr in (self._order, self._inverse_order):
            if arr is not None:
                total += arr.nbytes
        return int(total)

    # -- online phase -----------------------------------------------------------------

    def _query(self, seed: int) -> np.ndarray:
        if self._order is None:
            raise ParameterError("BePI preprocessing did not complete")
        assert self._h11_inv is not None and self._inverse_order is not None
        assert self._h12 is not None and self._h21 is not None
        assert self._h22 is not None

        n = self.graph.num_nodes
        n1 = self._n1
        n2 = n - n1
        q = np.zeros(n)
        q[self._inverse_order[seed]] = self.c
        q1, q2 = q[:n1], q[n1:]

        if n2 == 0:
            r1 = kernels.spmv(self._h11_inv, q1)
            return r1[self._inverse_order]

        operator = self._schur_operator(n1, n2)
        rhs = q2 - kernels.spmv(
            self._h21, kernels.spmv(self._h11_inv, q1)
        )
        r2, info = spla.gmres(
            operator, rhs, rtol=self.solver_tol, atol=0.0, maxiter=1000
        )
        if info != 0:
            raise ConvergenceError(
                f"BePI inner GMRES did not converge (info={info})"
            )
        r1 = kernels.spmv(self._h11_inv, q1 - kernels.spmv(self._h12, r2))

        permuted_result = np.concatenate([r1, r2])
        return permuted_result[self._inverse_order]

    def _schur_operator(self, n1: int, n2: int) -> spla.LinearOperator:
        """The matrix-free Schur complement ``S x = H22 x - H21 H11⁻¹ H12 x``.

        GMRES applies it dozens of times per query, so the three chained
        SpMVs run on the kernel layer with preallocated scratch buffers —
        only the returned difference (which GMRES may retain) is a fresh
        allocation.
        """
        h11_inv, h12, h21, h22 = self._h11_inv, self._h12, self._h21, self._h22
        scratch1 = np.empty(n1)
        scratch2 = np.empty(n1)
        folded = np.empty(n2)

        def schur_matvec(x: np.ndarray) -> np.ndarray:
            kernels.spmv(h12, x, out=scratch1)
            kernels.spmv(h11_inv, scratch1, out=scratch2)
            kernels.spmv(h21, scratch2, out=folded)
            result = kernels.spmv(h22, x)
            result -= folded
            return result

        return spla.LinearOperator((n2, n2), matvec=schur_matvec)

    def _query_many(self, seeds: np.ndarray) -> np.ndarray:
        """Batched online phase: the heavy sparse algebra (right-hand
        sides, ``H11^{-1}`` applications, back-substitution) runs as one
        ``(n, B)`` matmul chain; only the small ``n2 × n2`` Schur solve
        stays per-column, since GMRES is a single-vector solver."""
        if self._order is None:
            raise ParameterError("BePI preprocessing did not complete")
        assert self._h11_inv is not None and self._inverse_order is not None
        assert self._h12 is not None and self._h21 is not None
        assert self._h22 is not None

        n = self.graph.num_nodes
        n1 = self._n1
        n2 = n - n1
        batch = seeds.size
        q = np.zeros((n, batch))
        q[self._inverse_order[seeds], np.arange(batch)] = self.c
        q1, q2 = q[:n1], q[n1:]

        if n2 == 0:
            r1 = kernels.spmm(self._h11_inv, q1)
            return np.ascontiguousarray(r1[self._inverse_order].T)

        operator = self._schur_operator(n1, n2)
        rhs = q2 - kernels.spmm(
            self._h21, kernels.spmm(self._h11_inv, q1)
        )
        r2 = np.empty((n2, batch))
        for column in range(batch):
            solution, info = spla.gmres(
                operator, rhs[:, column], rtol=self.solver_tol, atol=0.0,
                maxiter=1000,
            )
            if info != 0:
                raise ConvergenceError(
                    f"BePI inner GMRES did not converge (info={info})"
                )
            r2[:, column] = solution
        r1 = kernels.spmm(self._h11_inv, q1 - kernels.spmm(self._h12, r2))

        permuted_result = np.concatenate([r1, r2], axis=0)
        return np.ascontiguousarray(permuted_result[self._inverse_order].T)


def _exact_blockwise_inverse(
    h11: sp.csr_array, blocks: list[np.ndarray]
) -> sp.csr_array:
    """Exact block-diagonal inverse (no drop tolerance)."""
    n1 = h11.shape[0]
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for block in blocks:
        dense = h11[block][:, block].toarray()
        inverse = np.linalg.inv(dense)
        nz_row, nz_col = np.nonzero(inverse)
        rows.append(block[nz_row])
        cols.append(block[nz_col])
        vals.append(inverse[nz_row, nz_col])
    if rows:
        row_idx = np.concatenate(rows)
        col_idx = np.concatenate(cols)
        values = np.concatenate(vals)
    else:
        row_idx = np.empty(0, dtype=np.int64)
        col_idx = np.empty(0, dtype=np.int64)
        values = np.empty(0)
    return sp.csr_array((values, (row_idx, col_idx)), shape=(n1, n1))
