"""BRPPR — Boundary-Restricted Personalized PageRank (Gleich & Polito, 2006).

BRPPR avoids touching the whole graph: it keeps an *active* vertex set
around the seed and computes RWR restricted to it, treating the boundary as
absorbing.  Whenever the total rank absorbed on the frontier exceeds the
stopping threshold ``kappa``, the frontier vertices that received the most
rank (above the expansion threshold, ``10^{-4}`` in the paper's setup) are
activated and the restricted computation repeats.  The method has no
preprocessing phase, which is why it contributes no bar to Figure 1(a).
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.method import PPRMethod

__all__ = ["BRPPR"]


class BRPPR(PPRMethod):
    """Boundary-restricted PPR.

    Parameters
    ----------
    expand_threshold:
        Frontier vertices whose absorbed rank exceeds this are activated
        on each expansion round (paper setting: ``1e-4``).
    kappa:
        Stop expanding once the total rank on the frontier is below this.
    c:
        Restart probability.
    tol:
        Convergence tolerance of the restricted power iteration.
    max_rounds:
        Safety cap on expansion rounds.
    """

    name = "BRPPR"

    def __init__(
        self,
        expand_threshold: float = 1e-4,
        kappa: float = 1e-3,
        c: float = 0.15,
        tol: float = 1e-9,
        max_rounds: int = 200,
    ):
        super().__init__()
        if expand_threshold <= 0:
            raise ParameterError("expand_threshold must be positive")
        if kappa <= 0:
            raise ParameterError("kappa must be positive")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        self.expand_threshold = float(expand_threshold)
        self.kappa = float(kappa)
        self.c = float(c)
        self.tol = float(tol)
        self.max_rounds = int(max_rounds)
        #: Active-set size of the most recent query (exposed for analysis).
        self.last_active_size: int = 0

    def _preprocess(self, graph: Graph) -> None:
        # BRPPR is online-only; nothing to precompute.
        pass

    def preprocessed_bytes(self) -> int:
        return 0

    def _restricted_cpi(
        self, active: np.ndarray, seed: int
    ) -> tuple[np.ndarray, float]:
        """CPI where only active nodes propagate; inactive nodes absorb.

        Returns the accumulated scores (absorbed rank included, sitting on
        the frontier nodes) and the total rank absorbed outside the active
        set.

        The iteration multiplies only the active rows of ``Ã`` — this is
        the whole point of BRPPR: computation cost scales with the active
        subgraph, not the full graph.
        """
        graph = self.graph
        n = graph.num_nodes
        active_idx = np.flatnonzero(active)
        # Row slice of the row-normalized adjacency, transposed to CSR and
        # pre-scaled by 1-c: propagating the active mass x_a is one kernel
        # SpMV over O(nnz of these rows): (1-c)·Ã[active]^T x_a.
        decayed_rows_t = graph.transition[active_idx].T.tocsr()
        decayed_rows_t.data *= 1.0 - self.c
        # Under the 'uniform' policy, active dangling nodes spread their
        # mass over the whole graph; their rows in Ã are empty, so the
        # correction is applied manually.
        if graph.dangling_policy == "uniform":
            dangling_local = np.flatnonzero(np.isin(active_idx, graph.dangling_nodes))
        else:
            dangling_local = np.empty(0, dtype=np.int64)

        scores = np.zeros(n)
        x = np.zeros(n)
        x[seed] = self.c
        scores += x
        # Ping-pong SpMV buffers: one allocation pair per restricted
        # solve instead of one fresh vector per sweep.
        buffers = (np.empty(n), np.empty(n))
        sweep = 0
        # Rank absorbed outside the active set never propagates further.
        while True:
            inside = x[active_idx]
            inside_norm = float(inside.sum())
            if inside_norm < self.tol:
                break
            x = kernels.spmv(decayed_rows_t, inside, out=buffers[sweep % 2])
            sweep += 1
            if dangling_local.size:
                leaked = float(inside[dangling_local].sum())
                if leaked:
                    x += (1.0 - self.c) * leaked / n
            scores += x
        frontier_rank = float(scores[~active].sum())
        return scores, frontier_rank

    def _query(self, seed: int) -> np.ndarray:
        graph = self.graph
        n = graph.num_nodes
        active = np.zeros(n, dtype=bool)
        active[seed] = True

        scores = np.zeros(n)
        for _ in range(self.max_rounds):
            scores, frontier_rank = self._restricted_cpi(active, seed)
            if frontier_rank < self.kappa:
                break
            frontier_scores = np.where(active, 0.0, scores)
            expand = frontier_scores > self.expand_threshold
            if not expand.any():
                # Nothing above the per-vertex expansion threshold, but the
                # total frontier rank still exceeds kappa: activate the
                # highest-rank frontier vertices in bulk so the stopping
                # rule ("expand until total frontier rank < kappa") makes
                # progress instead of grinding one vertex per round.
                positive = int((frontier_scores > 0.0).sum())
                if positive == 0:
                    break
                take = min(positive, max(64, int(active.sum()) // 4))
                best = np.argpartition(-frontier_scores, take - 1)[:take]
                active[best] = True
            else:
                active |= expand
        self.last_active_size = int(active.sum())
        return scores

    # -- batched online phase ------------------------------------------------

    def _restricted_cpi_many(
        self, active: np.ndarray, seeds: np.ndarray
    ) -> np.ndarray:
        """Batched restricted CPI: per-column active masks, shared SpMM.

        ``active`` is an ``(n, P)`` boolean matrix (one active set per
        seed).  Each sweep multiplies the rows of ``Ã`` belonging to the
        *union* of the active sets against the per-column-masked interim
        matrix, so only one sparse multiply serves the whole batch while
        every column still propagates exactly its own active mass —
        inactive rows carry zero mass for that column, as in the
        single-seed iteration.  Columns whose active mass drops below
        ``tol`` are frozen so their accumulated scores stay final.
        """
        graph = self.graph
        n = graph.num_nodes
        union = np.flatnonzero(active.any(axis=1))
        # Same pre-scaled CSR operator shape as the single-seed solve, so
        # every column's per-entry arithmetic matches it bit for bit; the
        # sweep is one blocked SpMM on the kernel layer.
        decayed_rows_t = graph.transition[union].T.tocsr()
        decayed_rows_t.data *= 1.0 - self.c
        if graph.dangling_policy == "uniform":
            dangling_union = np.flatnonzero(np.isin(union, graph.dangling_nodes))
        else:
            dangling_union = np.empty(0, dtype=np.int64)

        batch = seeds.size
        scores = np.zeros((n, batch))
        x = np.zeros((n, batch))
        x[seeds, np.arange(batch)] = self.c
        scores += x
        union_active = active[union]
        running = np.ones(batch, dtype=bool)
        buffers = (np.empty((n, batch)), np.empty((n, batch)))
        sweep = 0
        while True:
            inside = np.where(union_active, x[union], 0.0)
            running = running & (inside.sum(axis=0) >= self.tol)
            if not running.any():
                break
            inside[:, ~running] = 0.0
            x = kernels.spmm(decayed_rows_t, inside, out=buffers[sweep % 2])
            sweep += 1
            if dangling_union.size:
                leaked = inside[dangling_union].sum(axis=0)
                if np.any(leaked != 0.0):
                    x += (1.0 - self.c) * leaked / n
            scores += x
        return scores

    def _query_many(self, seeds: np.ndarray) -> np.ndarray:
        """Vectorized online phase over a seed batch.

        Each seed keeps its own active set and expansion schedule (so
        every row matches the single-seed result), but all seeds still
        pending in a given expansion round share one restricted-CPI run
        (:meth:`_restricted_cpi_many`).  Seeds whose frontier rank drops
        below ``kappa`` leave the batch early.
        """
        graph = self.graph
        n = graph.num_nodes
        batch = seeds.size
        results = np.zeros((batch, n))
        active = np.zeros((n, batch), dtype=bool)
        active[seeds, np.arange(batch)] = True
        pending = np.arange(batch)

        for _ in range(self.max_rounds):
            if pending.size == 0:
                break
            sub_active = active[:, pending]
            scores = self._restricted_cpi_many(sub_active, seeds[pending])
            results[pending] = scores.T
            frontier_rank = np.where(sub_active, 0.0, scores).sum(axis=0)
            still_expanding = []
            for position in np.flatnonzero(frontier_rank >= self.kappa):
                column = pending[position]
                frontier_scores = np.where(
                    active[:, column], 0.0, scores[:, position]
                )
                expand = frontier_scores > self.expand_threshold
                if not expand.any():
                    # Same bulk-activation fallback as the single-seed
                    # path: activate the highest-rank frontier vertices.
                    positive = int((frontier_scores > 0.0).sum())
                    if positive == 0:
                        continue
                    take = min(
                        positive, max(64, int(active[:, column].sum()) // 4)
                    )
                    best = np.argpartition(-frontier_scores, take - 1)[:take]
                    active[best, column] = True
                else:
                    active[:, column] |= expand
                still_expanding.append(column)
            pending = np.asarray(still_expanding, dtype=np.int64)

        self.last_active_sizes = active.sum(axis=0).astype(np.int64)
        self.last_active_size = int(self.last_active_sizes[-1])
        return results
