"""NB_LIN (Tong, Faloutsos, Pan — "Random walk with restart: fast solutions
and applications", KAIS 2008).

NB_LIN exploits the linear correlations of real adjacency matrices:

1. partition the graph into ``k`` communities; the within-partition part
   ``W1`` of the normalized adjacency is block diagonal, so
   ``Q = I − (1−c) W1ᵀ`` inverts block by block;
2. low-rank approximate the cross-partition part ``W2ᵀ ≈ U Σ Vᵀ`` (truncated
   SVD);
3. combine via the Sherman–Morrison–Woodbury identity:

   .. math::

      (Q - (1-c) U \\Sigma V^\\top)^{-1}
        = Q^{-1} + (1-c)\\, Q^{-1} U \\Lambda V^\\top Q^{-1},
      \\qquad
      \\Lambda = (\\Sigma^{-1} - (1-c) V^\\top Q^{-1} U)^{-1}.

The preprocessing stores the dense per-block inverses of ``Q`` plus the
dense factors ``U``, ``Vᵀ``, ``Λ`` — quadratic-ish in the block sizes,
which is exactly why NB-LIN runs out of memory on the paper's larger
datasets (Figure 1(a)).  Accuracy is limited by the low-rank truncation,
matching its weak recall in Figure 7.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import kernels
from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.graph.graph import Graph
from repro.graph.partition import partition_graph
from repro.method import PPRMethod

__all__ = ["NBLin"]


class NBLin(PPRMethod):
    """NB_LIN with label-propagation partitioning and truncated SVD.

    Parameters
    ----------
    num_partitions:
        Community count; defaults to ``max(4, round(sqrt(n) / 2))``.
    rank:
        Rank ``t`` of the cross-partition SVD; defaults to
        ``min(100, n // 10)``.  The paper's setting uses drop tolerance 0,
        i.e. the dense factors are stored in full.
    drop_tolerance:
        Entries of the stored factors with absolute value below this are
        dropped (paper setting for NB-LIN: ``0``).
    c:
        Restart probability.
    memory_budget_bytes:
        Optional cap on preprocessed bytes; exceeding it raises
        :class:`~repro.exceptions.MemoryBudgetExceeded` (emulates the
        paper's 200 GB workstation limit).
    seed:
        RNG seed for the partitioner.
    """

    name = "NB_LIN"

    def __init__(
        self,
        num_partitions: int | None = None,
        rank: int | None = None,
        drop_tolerance: float = 0.0,
        c: float = 0.15,
        memory_budget_bytes: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if drop_tolerance < 0:
            raise ParameterError("drop_tolerance must be non-negative")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        self.num_partitions = num_partitions
        self.rank = rank
        self.drop_tolerance = float(drop_tolerance)
        self.c = float(c)
        self.memory_budget_bytes = memory_budget_bytes
        self.seed = int(seed)

        self._block_nodes: list[np.ndarray] = []
        self._block_inverses: list[np.ndarray] = []
        self._u: np.ndarray | None = None
        self._vt: np.ndarray | None = None
        self._lambda: np.ndarray | None = None
        # Seed-matrix buffers are drawn from the base class's retained
        # workspace (counted in preprocessed_bytes).

    # -- preprocessing ------------------------------------------------------------

    def _preprocess(self, graph: Graph) -> None:
        n = graph.num_nodes
        k = self.num_partitions or max(4, int(round(np.sqrt(n) / 2)))
        k = min(k, n)
        t = self.rank or min(100, max(2, n // 10))

        labels = partition_graph(graph, k, seed=self.seed)

        transition_t = graph.transition_transpose.tocoo()
        same = labels[transition_t.row] == labels[transition_t.col]
        w1_t = sp.csr_array(
            (transition_t.data[same], (transition_t.row[same], transition_t.col[same])),
            shape=(n, n),
        )
        w2_t = sp.csr_array(
            (
                transition_t.data[~same],
                (transition_t.row[~same], transition_t.col[~same]),
            ),
            shape=(n, n),
        )

        # Dense inverse of Q = I - (1-c) W1^T, block by block.
        self._block_nodes = [np.flatnonzero(labels == p) for p in range(k)]
        self._block_nodes = [b for b in self._block_nodes if b.size]
        self._block_inverses = []
        budget_used = 0
        for nodes in self._block_nodes:
            block = np.eye(nodes.size) - (1.0 - self.c) * (
                w1_t[nodes][:, nodes].toarray()
            )
            inverse = np.linalg.inv(block)
            if self.drop_tolerance > 0:
                inverse[np.abs(inverse) < self.drop_tolerance] = 0.0
            self._block_inverses.append(inverse)
            budget_used += inverse.nbytes
            self._check_budget(budget_used)

        # Low-rank factorization of the cross-partition part.
        t = min(t, n - 2)
        if w2_t.nnz == 0 or t < 1:
            self._u = np.zeros((n, 1))
            self._vt = np.zeros((1, n))
            self._lambda = np.zeros((1, 1))
        else:
            # Deterministic start vector: svds defaults to a random one,
            # which would make preprocessing non-reproducible.
            v0 = np.random.default_rng(self.seed).random(n)
            # The Lanczos iterations inside svds are all SpMV applications
            # of W2^T and its transpose — expose them as a matrix-free
            # operator so they run on the kernel layer.
            w2 = w2_t.T.tocsr()
            operator = spla.LinearOperator(
                w2_t.shape,
                matvec=lambda v: kernels.spmv(w2_t, v),
                rmatvec=lambda v: kernels.spmv(w2, v),
                matmat=lambda m: kernels.spmm(w2_t, m),
                rmatmat=lambda m: kernels.spmm(w2, m),
                dtype=np.float64,
            )
            u, sigma, vt = spla.svds(operator, k=t, v0=v0)
            nonzero = sigma > 1e-12
            u, sigma, vt = u[:, nonzero], sigma[nonzero], vt[nonzero]
            if sigma.size == 0:
                self._u = np.zeros((n, 1))
                self._vt = np.zeros((1, n))
                self._lambda = np.zeros((1, 1))
            else:
                core = np.diag(1.0 / sigma) - (1.0 - self.c) * (
                    vt @ self._apply_q_inverse(u)
                )
                self._u = np.ascontiguousarray(u)
                self._vt = np.ascontiguousarray(vt)
                self._lambda = np.linalg.inv(core)
        self._check_budget(self.preprocessed_bytes())

    def _check_budget(self, used: int) -> None:
        if self.memory_budget_bytes is not None and used > self.memory_budget_bytes:
            raise MemoryBudgetExceeded(self.name, used, self.memory_budget_bytes)

    def preprocessed_bytes(self) -> int:
        total = sum(inv.nbytes for inv in self._block_inverses)
        total += sum(nodes.nbytes for nodes in self._block_nodes)
        for factor in (self._u, self._vt, self._lambda):
            if factor is not None:
                total += factor.nbytes
        total += self._workspace.nbytes()
        return int(total)

    # -- online phase ----------------------------------------------------------------

    def _apply_q_inverse(self, x: np.ndarray) -> np.ndarray:
        """Apply the block-diagonal ``Q^{-1}`` to a vector or matrix."""
        result = np.zeros_like(x, dtype=np.float64)
        for nodes, inverse in zip(self._block_nodes, self._block_inverses):
            result[nodes] = inverse @ x[nodes]
        return result

    def _query(self, seed: int) -> np.ndarray:
        if self._u is None or self._vt is None or self._lambda is None:
            raise ParameterError("NB_LIN preprocessing did not complete")
        n = self.graph.num_nodes
        q = np.zeros(n)
        q[seed] = self.c

        base = self._apply_q_inverse(q)
        correction = self._apply_q_inverse(
            self._u @ (self._lambda @ (self._vt @ base))
        )
        return base + (1.0 - self.c) * correction

    def _query_many(self, seeds: np.ndarray) -> np.ndarray:
        """Vectorized online phase: the SMW solve is linear in the seed
        vector, so stacking the seeds as columns turns the per-query
        matvec chain into a single matmul chain for the whole batch."""
        if self._u is None or self._vt is None or self._lambda is None:
            raise ParameterError("NB_LIN preprocessing did not complete")
        n = self.graph.num_nodes
        q = self._workspace.request("seed_matrix", (n, seeds.size))
        q.fill(0.0)
        q[seeds, np.arange(seeds.size)] = self.c

        base = self._apply_q_inverse(q)
        correction = self._apply_q_inverse(
            self._u @ (self._lambda @ (self._vt @ base))
        )
        return np.ascontiguousarray((base + (1.0 - self.c) * correction).T)
