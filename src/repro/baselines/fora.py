"""FORA (Wang, Yang, Xiao, Wei, Yang — KDD 2017).

FORA answers single-source PPR by a two-stage estimator:

1. **Forward push** from the seed with a degree-scaled residual threshold
   ``rmax``, which settles most of the probability mass locally, then
2. **Monte-Carlo random walks**: each node ``v`` with leftover residual
   ``r(v)`` contributes ``ceil(r(v) · ω)`` walks whose stop nodes receive
   ``r(v) / walks`` each.  The push stage cuts the number of walks needed
   for the ``(δ, ε, p_f)`` guarantee from ``ω`` to ``ω · Σ r``.

With the balanced setting ``rmax = 1 / sqrt(m · ω)`` both stages cost
``O(sqrt(m · ω))``.  **FORA+** (``use_index=True``, the variant the paper
benchmarks) precomputes the walk destinations in the preprocessing phase:
node ``v`` stores ``ceil(dout(v) · rmax · ω)`` endpoints — enough for any
query, because forward push never leaves more than ``dout(v) · rmax``
residual on ``v``.  That index is what makes FORA's preprocessed data large
(up to 40× TPA's in Figure 1(a)).
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.forward_push import forward_push
from repro.baselines.montecarlo import WalkIndex, sample_walk_endpoints
from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.graph.graph import Graph
from repro.method import PPRMethod

__all__ = ["Fora"]


class Fora(PPRMethod):
    """FORA / FORA+ single-source PPR.

    Parameters
    ----------
    epsilon, p_fail, delta:
        The ``(ε, p_f, δ)`` result-quality guarantee; the paper's setup
        uses ``(0.5, 1/n, 1/n)`` where ``None`` defers ``p_fail`` and
        ``delta`` to ``1/n`` at preprocessing time.
    use_index:
        Precompute the per-node walk index (FORA+, paper default).
    c:
        Restart probability.
    memory_budget_bytes:
        Optional cap on the walk-index size.
    seed:
        RNG seed for walk sampling.
    """

    name = "FORA"

    def __init__(
        self,
        epsilon: float = 0.5,
        p_fail: float | None = None,
        delta: float | None = None,
        use_index: bool = True,
        c: float = 0.15,
        memory_budget_bytes: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if epsilon <= 0:
            raise ParameterError("epsilon must be positive")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        self.epsilon = float(epsilon)
        self.p_fail = p_fail
        self.delta = delta
        self.use_index = bool(use_index)
        self.c = float(c)
        self.memory_budget_bytes = memory_budget_bytes
        self.seed = int(seed)

        self._omega = 0.0
        self._rmax = 0.0
        self._index: WalkIndex | None = None
        self._rng = np.random.default_rng(seed)

    # -- preprocessing -------------------------------------------------------------

    def _preprocess(self, graph: Graph) -> None:
        n = graph.num_nodes
        m = max(graph.num_edges, 1)
        p_fail = self.p_fail if self.p_fail is not None else 1.0 / n
        delta = self.delta if self.delta is not None else 1.0 / n

        # ω = (2ε/3 + 2) · ln(2/p_f) / (ε² δ)  — walks for the MC guarantee.
        self._omega = (
            (2.0 * self.epsilon / 3.0 + 2.0)
            * math.log(2.0 / p_fail)
            / (self.epsilon**2 * delta)
        )
        # Balanced rmax: push work ≈ walk work ≈ sqrt(m · ω).
        self._rmax = 1.0 / math.sqrt(m * self._omega)

        if not self.use_index:
            self._index = None
            return

        out_degree = np.maximum(graph.out_degree.astype(np.int64), 1)
        capacity = np.ceil(out_degree * self._rmax * self._omega).astype(np.int64)
        estimated_bytes = int(capacity.sum()) * 4 + (n + 1) * 8
        if (
            self.memory_budget_bytes is not None
            and estimated_bytes > self.memory_budget_bytes
        ):
            raise MemoryBudgetExceeded(
                self.name, estimated_bytes, self.memory_budget_bytes
            )
        self._index = WalkIndex(graph, capacity, c=self.c, rng=self._rng)
        used = self.preprocessed_bytes()
        if self.memory_budget_bytes is not None and used > self.memory_budget_bytes:
            raise MemoryBudgetExceeded(self.name, used, self.memory_budget_bytes)

    def preprocessed_bytes(self) -> int:
        return self._index.nbytes() if self._index is not None else 0

    # -- online phase -----------------------------------------------------------------

    def _query(self, seed: int) -> np.ndarray:
        graph = self.graph
        push = forward_push(
            graph, seed, rmax=self._rmax, c=self.c, degree_scaled=True
        )
        scores = push.estimate.copy()

        residual_nodes = np.flatnonzero(push.residual > 0)
        if residual_nodes.size == 0:
            return scores

        residuals = push.residual[residual_nodes]
        walk_counts = np.ceil(residuals * self._omega).astype(np.int64)

        if self._index is not None:
            for node, mass, want in zip(
                residual_nodes.tolist(), residuals.tolist(), walk_counts.tolist()
            ):
                endpoints = self._index.endpoints(node, want)
                if endpoints.size == 0:
                    # Index has no walks for this node (capacity rounded to
                    # zero); sample fresh ones online.
                    endpoints = sample_walk_endpoints(
                        graph,
                        np.full(want, node, dtype=np.int64),
                        c=self.c,
                        rng=self._rng,
                    )
                np.add.at(scores, endpoints, mass / endpoints.size)
        else:
            starts = np.repeat(residual_nodes, walk_counts)
            stops = sample_walk_endpoints(graph, starts, c=self.c, rng=self._rng)
            weights = np.repeat(residuals / walk_counts, walk_counts)
            np.add.at(scores, stops, weights)

        return scores
