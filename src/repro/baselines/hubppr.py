"""HubPPR (Wang, Tang, Xiao, Yang, Li — VLDB 2016).

HubPPR estimates a single pair score ``π_s(t)`` bidirectionally:

.. math::

    \\pi_s(t) \\;\\approx\\; p_t(s) + \\sum_v r_t(v)\\, \\hat{\\pi}_s(v),

where ``(p_t, r_t)`` come from *backward push* at the target and
``π̂_s`` from Monte-Carlo walks at the source.  Its *hub index*
precomputes both directions for high-degree hub nodes: stored walk
endpoints for hub sources and stored backward-push results for hub
targets.

The paper benchmarks HubPPR on whole-vector queries by "querying all
nodes in a graph as the target nodes".  Running a full backward push for
every one of ``n`` targets is exactly why HubPPR's online phase is up to
30× slower than TPA's (Figure 1(c)); at this repo's scale we keep that
cost profile but bound it with a documented adaptation: the Monte-Carlo
estimate already covers all targets, and per-target bidirectional
refinement is applied to the ``refine_top`` highest MC-ranked candidates
(default 800 — comfortably above the paper's top-500 recall window).
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.backward_push import backward_push, BackwardPushResult
from repro.baselines.montecarlo import WalkIndex, sample_walk_endpoints
from repro.exceptions import MemoryBudgetExceeded, ParameterError
from repro.graph.graph import Graph
from repro.method import PPRMethod

__all__ = ["HubPPR"]


class HubPPR(PPRMethod):
    """Bidirectional PPR with hub indexing, adapted to whole-vector queries.

    Parameters
    ----------
    epsilon, p_fail, delta:
        Result-quality guarantee parameters; the paper's setup uses
        ``(0.5, 1/n, 1/n)`` (``None`` defers to ``1/n``).
    hub_fraction:
        Fraction of nodes (picked by total degree) indexed as hubs.
    backward_rmax:
        Residual threshold of the per-target backward pushes.
    refine_top:
        Number of top MC candidates refined bidirectionally per query.
    max_walks:
        Hard cap on Monte-Carlo walks per query (keeps the theoretical
        ``ω`` tractable at small scale without changing the cost shape).
    hub_walk_cap:
        Stored walks per hub in the forward index.  Uncapped, the index
        would need ``hubs × ω`` endpoints and HubPPR would spuriously
        exhaust the scaled memory budget — in the paper it preprocesses
        every dataset (only its online phase is slow), so the cap
        preserves that feasibility profile.  Hub-seeded queries fall back
        to the stored walks plus the bidirectional refinement.
    c:
        Restart probability.
    memory_budget_bytes:
        Optional cap on index bytes.
    seed:
        RNG seed.
    """

    name = "HubPPR"

    def __init__(
        self,
        epsilon: float = 0.5,
        p_fail: float | None = None,
        delta: float | None = None,
        hub_fraction: float = 0.01,
        backward_rmax: float = 1e-3,
        refine_top: int = 800,
        max_walks: int = 400_000,
        hub_walk_cap: int = 10_000,
        c: float = 0.15,
        memory_budget_bytes: int | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if epsilon <= 0:
            raise ParameterError("epsilon must be positive")
        if not 0.0 < hub_fraction < 1.0:
            raise ParameterError("hub_fraction must be in (0, 1)")
        if backward_rmax <= 0:
            raise ParameterError("backward_rmax must be positive")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        self.epsilon = float(epsilon)
        self.p_fail = p_fail
        self.delta = delta
        self.hub_fraction = float(hub_fraction)
        self.backward_rmax = float(backward_rmax)
        self.refine_top = int(refine_top)
        self.max_walks = int(max_walks)
        self.hub_walk_cap = int(hub_walk_cap)
        self.c = float(c)
        self.memory_budget_bytes = memory_budget_bytes
        self.seed = int(seed)

        self._rng = np.random.default_rng(seed)
        self._num_walks = 0
        self._hubs: np.ndarray | None = None
        self._is_hub: np.ndarray | None = None
        self._forward_index: WalkIndex | None = None
        #: hub id -> (estimate entries, residual entries) in sparse form
        self._backward_index: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}

    # -- preprocessing -------------------------------------------------------------

    def _preprocess(self, graph: Graph) -> None:
        n = graph.num_nodes
        p_fail = self.p_fail if self.p_fail is not None else 1.0 / n
        delta = self.delta if self.delta is not None else 1.0 / n
        omega = (
            (2.0 * self.epsilon / 3.0 + 2.0)
            * math.log(2.0 / p_fail)
            / (self.epsilon**2 * delta)
        )
        self._num_walks = int(min(omega, self.max_walks))

        total_degree = graph.out_degree + graph.in_degree
        num_hubs = max(1, int(round(self.hub_fraction * n)))
        hubs = np.argsort(-total_degree, kind="stable")[:num_hubs]
        self._hubs = np.sort(hubs)
        self._is_hub = np.zeros(n, dtype=bool)
        self._is_hub[self._hubs] = True

        # Forward hub index: precomputed walks for hub sources.
        capacity = np.zeros(n, dtype=np.int64)
        capacity[self._hubs] = min(self._num_walks, self.hub_walk_cap)
        estimated = int(capacity.sum()) * 4
        if (
            self.memory_budget_bytes is not None
            and estimated > self.memory_budget_bytes
        ):
            raise MemoryBudgetExceeded(self.name, estimated, self.memory_budget_bytes)
        self._forward_index = WalkIndex(graph, capacity, c=self.c, rng=self._rng)

        # Backward hub index: precomputed backward push for hub targets.
        self._backward_index = {}
        for hub in self._hubs.tolist():
            result = backward_push(graph, hub, rmax=self.backward_rmax, c=self.c)
            self._backward_index[hub] = _sparsify(result)

        used = self.preprocessed_bytes()
        if self.memory_budget_bytes is not None and used > self.memory_budget_bytes:
            raise MemoryBudgetExceeded(self.name, used, self.memory_budget_bytes)

    def preprocessed_bytes(self) -> int:
        total = self._forward_index.nbytes() if self._forward_index else 0
        for entry in self._backward_index.values():
            total += sum(arr.nbytes for arr in entry)
        if self._hubs is not None:
            total += self._hubs.nbytes
        if self._is_hub is not None:
            total += self._is_hub.nbytes
        return int(total)

    # -- online phase -----------------------------------------------------------------

    def _monte_carlo_estimate(self, seed: int) -> np.ndarray:
        graph = self.graph
        assert self._forward_index is not None and self._is_hub is not None
        if self._is_hub[seed]:
            endpoints = self._forward_index.endpoints(seed, self._num_walks)
        else:
            starts = np.full(self._num_walks, seed, dtype=np.int64)
            endpoints = sample_walk_endpoints(graph, starts, c=self.c, rng=self._rng)
        counts = np.bincount(endpoints, minlength=graph.num_nodes).astype(np.float64)
        return counts / max(endpoints.size, 1)

    def _backward_for(self, target: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        entry = self._backward_index.get(target)
        if entry is None:
            entry = _sparsify(
                backward_push(self.graph, target, rmax=self.backward_rmax, c=self.c)
            )
        return entry

    def _query(self, seed: int) -> np.ndarray:
        pi_hat = self._monte_carlo_estimate(seed)
        scores = pi_hat.copy()

        candidates = np.argsort(-pi_hat, kind="stable")[: self.refine_top]
        for target in candidates.tolist():
            est_idx, est_val, res_idx, res_val = self._backward_for(target)
            estimate_at_seed = 0.0
            pos = np.searchsorted(est_idx, seed)
            if pos < est_idx.size and est_idx[pos] == seed:
                estimate_at_seed = float(est_val[pos])
            refined = estimate_at_seed + float(res_val @ pi_hat[res_idx])
            scores[target] = refined
        return scores


def _sparsify(
    result: BackwardPushResult,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compress a backward-push result to (index, value) pairs."""
    est_idx = np.flatnonzero(result.estimate)
    res_idx = np.flatnonzero(result.residual)
    return (
        est_idx.astype(np.int32),
        result.estimate[est_idx],
        res_idx.astype(np.int32),
        result.residual[res_idx],
    )
