"""RPPR — Restricted Personalized PageRank (Gleich & Polito, 2006).

RPPR is the greedier sibling of BRPPR (the paper's Section IV-A sets the
same ``10^{-4}`` expansion threshold "in RPPR and BRPPR").  Instead of
alternating converged restricted solves with frontier expansions, RPPR
grows the active set *during* the iteration: whenever an inactive vertex
accumulates more than the expansion threshold of rank, it is activated
immediately and starts propagating on the next sweep.  One pass to
convergence therefore suffices.

Compared with BRPPR it does less total work (no re-solves) but offers a
weaker handle on the final frontier mass — the same trade the original
authors describe.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.method import PPRMethod

__all__ = ["RPPR"]


class RPPR(PPRMethod):
    """Restricted PPR with on-the-fly vertex activation.

    Parameters
    ----------
    expand_threshold:
        An inactive vertex is activated once its accumulated rank exceeds
        this (paper setting: ``1e-4``).
    c:
        Restart probability.
    tol:
        Convergence tolerance on the active interim mass.
    max_sweeps:
        Safety cap on propagation sweeps.
    """

    name = "RPPR"

    def __init__(
        self,
        expand_threshold: float = 1e-4,
        c: float = 0.15,
        tol: float = 1e-9,
        max_sweeps: int = 10_000,
    ):
        super().__init__()
        if expand_threshold <= 0:
            raise ParameterError("expand_threshold must be positive")
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        if tol <= 0:
            raise ParameterError("tol must be positive")
        self.expand_threshold = float(expand_threshold)
        self.c = float(c)
        self.tol = float(tol)
        self.max_sweeps = int(max_sweeps)
        self.last_active_size: int = 0

    def _preprocess(self, graph: Graph) -> None:
        pass  # online-only, like BRPPR

    def preprocessed_bytes(self) -> int:
        return 0

    def _query(self, seed: int) -> np.ndarray:
        graph = self.graph
        n = graph.num_nodes
        active = np.zeros(n, dtype=bool)
        active[seed] = True

        scores = np.zeros(n)
        x = np.zeros(n)
        x[seed] = self.c
        scores += x
        # Rank parked on inactive vertices waits (is not propagated) until
        # the vertex activates; it then re-enters the flow.
        parked = np.zeros(n)
        # Decay folded into the cached operator + ping-pong output buffers:
        # each sweep is one kernel SpMV with no fresh allocation.
        buffers = (np.empty(n), np.empty(n))

        for sweep in range(self.max_sweeps):
            inside = np.where(active, x + parked, 0.0)
            parked = np.where(active, 0.0, parked + x)
            if float(inside.sum()) < self.tol:
                break
            x = graph.propagate_decayed(
                inside, 1.0 - self.c, out=buffers[sweep % 2]
            )
            scores += x
            # Activate vertices whose accumulated rank crossed the bar.
            newly = (~active) & (scores > self.expand_threshold)
            if newly.any():
                active |= newly

        self.last_active_size = int(active.sum())
        return scores

    def _query_many(self, seeds: np.ndarray) -> np.ndarray:
        """Vectorized online phase over a seed batch.

        Each column keeps its own active mask, parked mass, and
        convergence state, but every sweep propagates the whole
        ``(n, B)`` interim matrix with one SpMM.  Columns whose active
        mass drops below ``tol`` are frozen (their interim column is
        zeroed) so each row of the result matches the single-seed run.
        """
        graph = self.graph
        n = graph.num_nodes
        batch = seeds.size
        columns = np.arange(batch)

        active = np.zeros((n, batch), dtype=bool)
        active[seeds, columns] = True

        scores = np.zeros((n, batch))
        x = np.zeros((n, batch))
        x[seeds, columns] = self.c
        scores += x
        parked = np.zeros((n, batch))
        running = np.ones(batch, dtype=bool)
        buffers = (np.empty((n, batch)), np.empty((n, batch)))

        for sweep in range(self.max_sweeps):
            inside = np.where(active, x + parked, 0.0)
            parked = np.where(active, 0.0, parked + x)
            running = running & (inside.sum(axis=0) >= self.tol)
            if not running.any():
                break
            # Frozen columns stop propagating; their scores are final.
            inside[:, ~running] = 0.0
            x = graph.propagate_decayed(
                inside, 1.0 - self.c, out=buffers[sweep % 2]
            )
            scores += x
            newly = (~active) & (scores > self.expand_threshold)
            if newly.any():
                active |= newly

        self.last_active_sizes = active.sum(axis=0).astype(np.int64)
        self.last_active_size = int(self.last_active_sizes[-1])
        return np.ascontiguousarray(scores.T)
