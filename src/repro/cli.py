"""Command-line interface for the library itself.

Three subcommands::

    python -m repro query --graph edges.tsv --seed 42 --method tpa --top 20
    python -m repro query --graph edges.tsv --seeds 1,2,3 --method tpa
    python -m repro query --graph edges.tsv --seeds @seeds.txt --batch
    python -m repro stats --graph edges.tsv
    python -m repro generate --dataset pokec --scale 0.5 --out pokec.tsv

``query`` reads a whitespace edge list, runs the chosen method through the
batched :class:`~repro.engine.Engine`, and prints the top-ranked nodes (in
the file's original ids).  Seeds come from ``--seed`` (one id) or
``--seeds`` (comma-separated list, or ``@path`` to a file with one id per
whitespace-separated token); multiple seeds — or ``--batch`` — switch the
output to the tab-separated batch format with a leading ``seed`` column.
Methods are resolved via the registry
(:func:`repro.engine.available_methods`).

``stats`` prints the structural summary used to judge TPA-friendliness;
``generate`` writes one of the synthetic dataset analogs to disk as an
edge list.

(The per-figure experiment harness lives under ``python -m
repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import Engine, QueryRequest, available_methods, create_method
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import graph_stats

__all__ = ["main"]


def _method_params(args: argparse.Namespace) -> dict:
    """Per-method constructor arguments sourced from CLI flags."""
    if args.method == "tpa":
        return {
            "s_iteration": args.s_iteration,
            "t_iteration": args.t_iteration,
        }
    return {}


def _parse_seed_spec(spec: str) -> list[int]:
    """Parse ``--seeds``: a comma list (``1,2,3``) or ``@file`` of ids."""
    if spec.startswith("@"):
        try:
            tokens = Path(spec[1:]).read_text(encoding="utf-8").split()
        except OSError as error:
            raise SystemExit(f"cannot read seed file {spec[1:]!r}: {error}")
    else:
        tokens = [token for token in spec.split(",") if token.strip()]
    try:
        return [int(token) for token in tokens]
    except ValueError as error:
        raise SystemExit(f"invalid seed id in --seeds: {error}") from error


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Approximate RWR on edge-list graphs (TPA, ICDE 2018).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="rank nodes by RWR from seeds")
    query.add_argument("--graph", required=True, help="edge-list file")
    query.add_argument("--seed", type=int, help="seed node (original id)")
    query.add_argument("--seeds",
                       help="seed batch: comma list '1,2,3' or '@file' with "
                            "one id per token")
    query.add_argument("--method", choices=available_methods(), default="tpa")
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--batch", action="store_true",
                       help="force the tab-separated batch output format")
    query.add_argument("--s-iteration", type=int, default=5)
    query.add_argument("--t-iteration", type=int, default=10)

    stats = commands.add_parser("stats", help="structural graph summary")
    stats.add_argument("--graph", required=True, help="edge-list file")

    generate = commands.add_parser("generate", help="write a dataset analog")
    generate.add_argument("--dataset", choices=dataset_names(), required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--out", required=True, help="destination path")

    return parser


def _command_query(args: argparse.Namespace) -> int:
    if args.seed is None and args.seeds is None:
        print("one of --seed or --seeds is required", file=sys.stderr)
        return 2

    graph, original_ids = read_edge_list(args.graph)
    id_to_compact = {int(original): index
                     for index, original in enumerate(original_ids.tolist())}

    requested: list[int] = []
    if args.seed is not None:
        requested.append(args.seed)
    if args.seeds is not None:
        requested.extend(_parse_seed_spec(args.seeds))
    missing = [seed for seed in requested if seed not in id_to_compact]
    if missing:
        print(f"seed id {missing[0]} not present in {args.graph}",
              file=sys.stderr)
        return 2
    compact_seeds = [id_to_compact[seed] for seed in requested]

    method = create_method(args.method, **_method_params(args))
    engine = Engine(method, graph)
    results = engine.batch(
        [QueryRequest(seed=seed, k=args.top, exclude_seed=False)
         for seed in compact_seeds]
    )

    online_seconds = sum(result.seconds for result in results)
    print(f"# method={method.name} nodes={graph.num_nodes} "
          f"edges={graph.num_edges}")
    print(f"# preprocess={engine.preprocess_seconds:.4f}s "
          f"online={online_seconds:.4f}s "
          f"index={method.preprocessed_bytes()}B")

    batch_mode = args.batch or len(results) > 1
    if batch_mode:
        print(f"# queries={len(results)}")
        print("seed\trank\tnode\tscore")
        for original_seed, result in zip(requested, results):
            for rank, (node, score) in enumerate(
                zip(result.top_nodes.tolist(), result.top_scores.tolist()),
                start=1,
            ):
                print(f"{original_seed}\t{rank}\t{original_ids[node]}\t"
                      f"{score:.6e}")
    else:
        result = results[0]
        print("rank\tnode\tscore")
        for rank, (node, score) in enumerate(
            zip(result.top_nodes.tolist(), result.top_scores.tolist()),
            start=1,
        ):
            print(f"{rank}\t{original_ids[node]}\t{score:.6e}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph, _ = read_edge_list(args.graph)
    stats = graph_stats(graph)
    print(f"nodes            {stats.num_nodes}")
    print(f"edges            {stats.num_edges}")
    print(f"mean degree      {stats.mean_degree:.2f}")
    print(f"max in-degree    {stats.max_in_degree}")
    print(f"max out-degree   {stats.max_out_degree}")
    print(f"in-degree gini   {stats.in_degree_gini:.3f}")
    print(f"out-degree gini  {stats.out_degree_gini:.3f}")
    print(f"reciprocity      {stats.reciprocity:.3f}")
    print(f"dangling nodes   {stats.dangling_nodes}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    spec = DATASETS[args.dataset]
    write_edge_list(
        graph,
        args.out,
        header=(
            f"analog of {args.dataset} (paper: {spec.paper_nodes} nodes, "
            f"{spec.paper_edges} edges) at scale {args.scale}"
        ),
    )
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _command_query,
        "stats": _command_stats,
        "generate": _command_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
