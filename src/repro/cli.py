"""Command-line interface for the library itself.

Five subcommands::

    python -m repro query --graph edges.tsv --seed 42 --method tpa --top 20
    python -m repro query --graph edges.tsv --seeds 1,2,3 --method tpa
    python -m repro query --graph edges.tsv --seeds @seeds.txt --batch
    python -m repro stats --graph edges.tsv
    python -m repro generate --dataset pokec --scale 0.5 --out pokec.tsv
    python -m repro serve-bench --nodes 20000 --workers 4 --clients 8
    python -m repro shard-bench --nodes 20000 --shards 4 --clients 8
    python -m repro update-bench --nodes 20000 --workers 4 --clients 8

``query`` reads a whitespace edge list, runs the chosen method through the
batched :class:`~repro.engine.Engine`, and prints the top-ranked nodes (in
the file's original ids).  Seeds come from ``--seed`` (one id) or
``--seeds`` (comma-separated list, or ``@path`` to a file with one id per
whitespace-separated token); multiple seeds — or ``--batch`` — switch the
output to the tab-separated batch format with a leading ``seed`` column.
Methods are resolved via the registry
(:func:`repro.engine.available_methods`).

``stats`` prints the structural summary used to judge TPA-friendliness;
``generate`` writes one of the synthetic dataset analogs to disk as an
edge list.

``serve-bench`` stands up a :class:`repro.serving.Server` (worker pool
of Engine replicas behind the micro-batching scheduler); ``shard-bench``
stands up a :class:`repro.sharding.Router` (shard worker processes over
shared-memory CSR stripes behind the same scheduler).  Both drive the
closed-loop load generator and print the client-observed latency
histogram plus p50/p95/p99 and throughput; ``--json`` additionally
writes the report — one shared, versioned schema
(:data:`repro.serving.metrics.REPORT_SCHEMA`) for both deployments, so
CI's artifacts stay directly diffable.

``update-bench`` serves over a live :class:`repro.dynamic.DynamicGraph`
instead: the same closed-loop clients run while a mutator thread applies
edge-update batches (and periodic compactions), answering how many
updates per second the deployment sustains at what query latency.  The
report shares the same schema plus ``updates_*`` fields.

(The per-figure experiment harness lives under ``python -m
repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import Engine, QueryRequest, available_methods, create_method
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import graph_stats

__all__ = ["main"]


def _method_params(args: argparse.Namespace) -> dict:
    """Per-method constructor arguments sourced from CLI flags."""
    if args.method == "tpa":
        return {
            "s_iteration": args.s_iteration,
            "t_iteration": args.t_iteration,
        }
    return {}


def _parse_seed_spec(spec: str) -> list[int]:
    """Parse ``--seeds``: a comma list (``1,2,3``) or ``@file`` of ids."""
    if spec.startswith("@"):
        try:
            tokens = Path(spec[1:]).read_text(encoding="utf-8").split()
        except OSError as error:
            raise SystemExit(f"cannot read seed file {spec[1:]!r}: {error}")
    else:
        tokens = [token for token in spec.split(",") if token.strip()]
    try:
        return [int(token) for token in tokens]
    except ValueError as error:
        raise SystemExit(f"invalid seed id in --seeds: {error}") from error


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Approximate RWR on edge-list graphs (TPA, ICDE 2018).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="rank nodes by RWR from seeds")
    query.add_argument("--graph", required=True, help="edge-list file")
    query.add_argument("--seed", type=int, help="seed node (original id)")
    query.add_argument("--seeds",
                       help="seed batch: comma list '1,2,3' or '@file' with "
                            "one id per token")
    query.add_argument("--method", choices=available_methods(), default="tpa")
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--batch", action="store_true",
                       help="force the tab-separated batch output format")
    query.add_argument("--s-iteration", type=int, default=5)
    query.add_argument("--t-iteration", type=int, default=10)

    stats = commands.add_parser("stats", help="structural graph summary")
    stats.add_argument("--graph", required=True, help="edge-list file")

    generate = commands.add_parser("generate", help="write a dataset analog")
    generate.add_argument("--dataset", choices=dataset_names(), required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--out", required=True, help="destination path")

    def add_bench_arguments(bench) -> None:
        """Flags shared by serve-bench and shard-bench — one benchmark
        surface, two deployments."""
        source = bench.add_mutually_exclusive_group(required=True)
        source.add_argument("--graph", help="edge-list file to serve")
        source.add_argument("--nodes", type=int,
                            help="serve a synthetic community graph this big")
        bench.add_argument("--avg-degree", type=int, default=16,
                           help="synthetic graph mean degree (with --nodes)")
        bench.add_argument("--method", choices=available_methods(),
                           default="tpa")
        bench.add_argument("--s-iteration", type=int, default=5)
        bench.add_argument("--t-iteration", type=int, default=10)
        bench.add_argument("--clients", type=int, default=4,
                           help="closed-loop client threads")
        bench.add_argument("--requests", type=int, default=100,
                           help="requests per client")
        bench.add_argument("--top", type=int, default=10,
                           help="top-k of every request")
        bench.add_argument("--max-batch", type=int, default=32)
        bench.add_argument("--max-wait-ms", type=float, default=2.0)
        bench.add_argument("--max-pending", type=int, default=1024)
        bench.add_argument("--cache", type=int, default=0,
                           help="shared score-cache capacity (0 = off)")
        bench.add_argument("--seed-pool", type=int, default=256,
                           help="distinct seeds the load generator cycles "
                                "over")
        bench.add_argument("--json", dest="json_out",
                           help="also write the report as JSON to this path")

    bench = commands.add_parser(
        "serve-bench",
        help="closed-loop load test of the concurrent serving stack",
    )
    add_bench_arguments(bench)
    bench.add_argument("--workers", type=int, default=2,
                       help="worker threads (one Engine replica each)")

    shard = commands.add_parser(
        "shard-bench",
        help="closed-loop load test of the sharded multi-process router",
    )
    add_bench_arguments(shard)
    shard.add_argument("--shards", type=int, default=2,
                       help="shard worker processes (one row stripe each)")
    shard.add_argument("--reorder",
                       choices=("none", "slashburn", "partition"),
                       default="slashburn",
                       help="row ordering the shard plan cuts on")
    shard.add_argument("--start-method", default=None,
                       help="multiprocessing start method override")

    update = commands.add_parser(
        "update-bench",
        help="closed-loop load test while the graph mutates underneath",
    )
    add_bench_arguments(update)
    update.add_argument("--workers", type=int, default=2,
                        help="worker threads (one Engine replica each)")
    update.add_argument("--update-batch", type=int, default=8,
                        help="edges per mutation call")
    update.add_argument("--compact-every", type=int, default=256,
                        help="applied mutations between compactions "
                             "(0 = never compact, pure overlay serving)")
    update.add_argument("--backlog", type=int, default=1024,
                        help="max benchmark-inserted edges alive at once")

    return parser


def _command_query(args: argparse.Namespace) -> int:
    if args.seed is None and args.seeds is None:
        print("one of --seed or --seeds is required", file=sys.stderr)
        return 2

    graph, original_ids = read_edge_list(args.graph)
    id_to_compact = {int(original): index
                     for index, original in enumerate(original_ids.tolist())}

    requested: list[int] = []
    if args.seed is not None:
        requested.append(args.seed)
    if args.seeds is not None:
        requested.extend(_parse_seed_spec(args.seeds))
    missing = [seed for seed in requested if seed not in id_to_compact]
    if missing:
        print(f"seed id {missing[0]} not present in {args.graph}",
              file=sys.stderr)
        return 2
    compact_seeds = [id_to_compact[seed] for seed in requested]

    method = create_method(args.method, **_method_params(args))
    engine = Engine(method, graph)
    results = engine.batch(
        [QueryRequest(seed=seed, k=args.top, exclude_seed=False)
         for seed in compact_seeds]
    )

    online_seconds = sum(result.seconds for result in results)
    print(f"# method={method.name} nodes={graph.num_nodes} "
          f"edges={graph.num_edges}")
    print(f"# preprocess={engine.preprocess_seconds:.4f}s "
          f"online={online_seconds:.4f}s "
          f"index={method.preprocessed_bytes()}B")

    batch_mode = args.batch or len(results) > 1
    if batch_mode:
        print(f"# queries={len(results)}")
        print("seed\trank\tnode\tscore")
        for original_seed, result in zip(requested, results):
            for rank, (node, score) in enumerate(
                zip(result.top_nodes.tolist(), result.top_scores.tolist()),
                start=1,
            ):
                print(f"{original_seed}\t{rank}\t{original_ids[node]}\t"
                      f"{score:.6e}")
    else:
        result = results[0]
        print("rank\tnode\tscore")
        for rank, (node, score) in enumerate(
            zip(result.top_nodes.tolist(), result.top_scores.tolist()),
            start=1,
        ):
            print(f"{rank}\t{original_ids[node]}\t{score:.6e}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph, _ = read_edge_list(args.graph)
    stats = graph_stats(graph)
    print(f"nodes            {stats.num_nodes}")
    print(f"edges            {stats.num_edges}")
    print(f"mean degree      {stats.mean_degree:.2f}")
    print(f"max in-degree    {stats.max_in_degree}")
    print(f"max out-degree   {stats.max_out_degree}")
    print(f"in-degree gini   {stats.in_degree_gini:.3f}")
    print(f"out-degree gini  {stats.out_degree_gini:.3f}")
    print(f"reciprocity      {stats.reciprocity:.3f}")
    print(f"dangling nodes   {stats.dangling_nodes}")
    return 0


def _bench_graph(args: argparse.Namespace):
    """The benchmark graph plus a human-readable source label."""
    from repro.graph.generators import community_graph

    if args.graph is not None:
        graph, _ = read_edge_list(args.graph)
        return graph, args.graph
    graph = community_graph(
        args.nodes, avg_degree=args.avg_degree,
        num_communities=max(8, args.nodes // 500), seed=7,
    )
    return graph, f"synthetic community ({args.nodes} nodes)"


def _bench_seed_pool(args: argparse.Namespace, num_nodes: int):
    import numpy as np

    return np.random.default_rng(0).choice(
        num_nodes, size=min(args.seed_pool, num_nodes), replace=False,
    )


def _print_bench_report(args: argparse.Namespace, report, *, kind: str,
                        config: dict, extra: dict | None = None) -> None:
    """Render one closed-loop report: histogram, summary lines, and the
    optional JSON document (shared schema across all three benchmarks;
    ``extra`` fields — e.g. ``updates_*`` — merge into the document)."""
    import json

    from repro.serving.metrics import bench_report, latency_histogram

    print(latency_histogram(report.latencies_ms))
    print(f"requests        {report.requests}")
    print(f"rejected        {report.rejected}")
    print(f"errors          {report.errors}")
    print(f"wall seconds    {report.seconds:.3f}")
    print(f"throughput      {report.queries_per_second:.1f} q/s")
    print(f"latency p50     {report.latency_p50_ms:.2f} ms")
    print(f"latency p95     {report.latency_p95_ms:.2f} ms")
    print(f"latency p99     {report.latency_p99_ms:.2f} ms")
    print(f"latency mean    {report.latency_mean_ms:.2f} ms")
    stats = report.server_stats
    print(f"queue mean      {stats['queue_mean_ms']:.2f} ms")
    print(f"compute mean    {stats['compute_mean_ms']:.2f} ms")
    if "cache" in stats:
        cache = stats["cache"]
        print(f"cache           {cache['hits']} hits / "
              f"{cache['misses']} misses / {cache['evictions']} evictions")

    if args.json_out:
        document = bench_report(report, kind=kind, config=config)
        if extra:
            document.update(extra)
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote report to {args.json_out}")


def _command_serve_bench(args: argparse.Namespace) -> int:
    from repro.serving import Server, run_closed_loop

    graph, source = _bench_graph(args)
    method = create_method(args.method, **_method_params(args))
    pool = _bench_seed_pool(args, graph.num_nodes)
    with Server(
        method,
        graph,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        cache_size=args.cache,
    ) as server:
        print(f"# graph={source} nodes={graph.num_nodes} "
              f"edges={graph.num_edges}")
        print(f"# method={method.name} workers={args.workers} "
              f"clients={args.clients} requests/client={args.requests} "
              f"top={args.top} max_batch={args.max_batch} "
              f"max_wait_ms={args.max_wait_ms:g} cache={args.cache}")
        report = run_closed_loop(
            server,
            pool,
            k=args.top,
            clients=args.clients,
            requests_per_client=args.requests,
        )

    _print_bench_report(
        args, report, kind="serve-bench",
        config={
            "graph": source, "nodes": graph.num_nodes,
            "edges": graph.num_edges, "method": method.name,
            "workers": args.workers, "clients": args.clients,
            "requests_per_client": args.requests, "top": args.top,
            "max_batch": args.max_batch, "max_wait_ms": args.max_wait_ms,
            "cache": args.cache,
        },
    )
    return 0


def _command_shard_bench(args: argparse.Namespace) -> int:
    from repro.serving import run_closed_loop
    from repro.sharding import Router

    graph, source = _bench_graph(args)
    method = create_method(args.method, **_method_params(args))
    pool = _bench_seed_pool(args, graph.num_nodes)
    reorder = None if args.reorder == "none" else args.reorder
    with Router(
        method,
        graph,
        num_shards=args.shards,
        reorder=reorder,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        cache_size=args.cache,
        start_method=args.start_method,
    ) as router:
        print(f"# graph={source} nodes={graph.num_nodes} "
              f"edges={graph.num_edges}")
        print(f"# method={method.name} shards={router.num_shards} "
              f"reorder={args.reorder} clients={args.clients} "
              f"requests/client={args.requests} top={args.top} "
              f"max_batch={args.max_batch} "
              f"max_wait_ms={args.max_wait_ms:g} cache={args.cache}")
        shard_rows = router.stats()["shards"]["shard_rows"]
        print(f"# shard rows    {shard_rows}")
        report = run_closed_loop(
            router,
            pool,
            k=args.top,
            clients=args.clients,
            requests_per_client=args.requests,
        )

    _print_bench_report(
        args, report, kind="shard-bench",
        config={
            "graph": source, "nodes": graph.num_nodes,
            "edges": graph.num_edges, "method": method.name,
            "shards": args.shards, "reorder": args.reorder,
            "clients": args.clients,
            "requests_per_client": args.requests, "top": args.top,
            "max_batch": args.max_batch, "max_wait_ms": args.max_wait_ms,
            "cache": args.cache, "shard_rows": shard_rows,
        },
    )
    return 0


def _command_update_bench(args: argparse.Namespace) -> int:
    from repro.dynamic import DynamicGraph, run_update_bench
    from repro.serving import Server

    base, source = _bench_graph(args)
    graph = DynamicGraph(base)
    method = create_method(args.method, **_method_params(args))
    pool = _bench_seed_pool(args, graph.num_nodes)
    with Server(
        method,
        graph,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        cache_size=args.cache,
    ) as server:
        print(f"# graph={source} nodes={graph.num_nodes} "
              f"edges={graph.num_edges}")
        print(f"# method={method.name} workers={args.workers} "
              f"clients={args.clients} requests/client={args.requests} "
              f"top={args.top} update_batch={args.update_batch} "
              f"compact_every={args.compact_every} cache={args.cache}")
        result = run_update_bench(
            server,
            graph,
            pool,
            k=args.top,
            clients=args.clients,
            requests_per_client=args.requests,
            update_batch=args.update_batch,
            compact_every=args.compact_every,
            backlog=args.backlog,
        )

    print(f"updates applied {result.updates_applied} "
          f"(attempted {result.updates_attempted})")
    print(f"compactions     {result.compactions}")
    print(f"updates/sec     {result.updates_per_second:.1f}")
    _print_bench_report(
        args, result.load, kind="update-bench",
        config={
            "graph": source, "nodes": graph.num_nodes,
            "edges": graph.num_edges, "method": method.name,
            "workers": args.workers, "clients": args.clients,
            "requests_per_client": args.requests, "top": args.top,
            "max_batch": args.max_batch, "max_wait_ms": args.max_wait_ms,
            "cache": args.cache, "update_batch": args.update_batch,
            "compact_every": args.compact_every, "backlog": args.backlog,
        },
        extra=result.update_fields(),
    )
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    spec = DATASETS[args.dataset]
    write_edge_list(
        graph,
        args.out,
        header=(
            f"analog of {args.dataset} (paper: {spec.paper_nodes} nodes, "
            f"{spec.paper_edges} edges) at scale {args.scale}"
        ),
    )
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _command_query,
        "stats": _command_stats,
        "generate": _command_generate,
        "serve-bench": _command_serve_bench,
        "shard-bench": _command_shard_bench,
        "update-bench": _command_update_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
