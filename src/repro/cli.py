"""Command-line interface for the library itself.

Four subcommands::

    python -m repro query --graph edges.tsv --seed 42 --method tpa --top 20
    python -m repro query --graph edges.tsv --seeds 1,2,3 --method tpa
    python -m repro query --graph edges.tsv --seeds @seeds.txt --batch
    python -m repro stats --graph edges.tsv
    python -m repro generate --dataset pokec --scale 0.5 --out pokec.tsv
    python -m repro serve-bench --nodes 20000 --workers 4 --clients 8

``query`` reads a whitespace edge list, runs the chosen method through the
batched :class:`~repro.engine.Engine`, and prints the top-ranked nodes (in
the file's original ids).  Seeds come from ``--seed`` (one id) or
``--seeds`` (comma-separated list, or ``@path`` to a file with one id per
whitespace-separated token); multiple seeds — or ``--batch`` — switch the
output to the tab-separated batch format with a leading ``seed`` column.
Methods are resolved via the registry
(:func:`repro.engine.available_methods`).

``stats`` prints the structural summary used to judge TPA-friendliness;
``generate`` writes one of the synthetic dataset analogs to disk as an
edge list.

``serve-bench`` stands up a :class:`repro.serving.Server` (worker pool
of Engine replicas behind the micro-batching scheduler), drives it with
the closed-loop load generator, and prints the client-observed latency
histogram plus p50/p95/p99 and throughput; ``--json`` additionally
writes the report for trend tracking (CI uploads it next to the
bench-smoke artifact).

(The per-figure experiment harness lives under ``python -m
repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import Engine, QueryRequest, available_methods, create_method
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import graph_stats

__all__ = ["main"]


def _method_params(args: argparse.Namespace) -> dict:
    """Per-method constructor arguments sourced from CLI flags."""
    if args.method == "tpa":
        return {
            "s_iteration": args.s_iteration,
            "t_iteration": args.t_iteration,
        }
    return {}


def _parse_seed_spec(spec: str) -> list[int]:
    """Parse ``--seeds``: a comma list (``1,2,3``) or ``@file`` of ids."""
    if spec.startswith("@"):
        try:
            tokens = Path(spec[1:]).read_text(encoding="utf-8").split()
        except OSError as error:
            raise SystemExit(f"cannot read seed file {spec[1:]!r}: {error}")
    else:
        tokens = [token for token in spec.split(",") if token.strip()]
    try:
        return [int(token) for token in tokens]
    except ValueError as error:
        raise SystemExit(f"invalid seed id in --seeds: {error}") from error


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Approximate RWR on edge-list graphs (TPA, ICDE 2018).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="rank nodes by RWR from seeds")
    query.add_argument("--graph", required=True, help="edge-list file")
    query.add_argument("--seed", type=int, help="seed node (original id)")
    query.add_argument("--seeds",
                       help="seed batch: comma list '1,2,3' or '@file' with "
                            "one id per token")
    query.add_argument("--method", choices=available_methods(), default="tpa")
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--batch", action="store_true",
                       help="force the tab-separated batch output format")
    query.add_argument("--s-iteration", type=int, default=5)
    query.add_argument("--t-iteration", type=int, default=10)

    stats = commands.add_parser("stats", help="structural graph summary")
    stats.add_argument("--graph", required=True, help="edge-list file")

    generate = commands.add_parser("generate", help="write a dataset analog")
    generate.add_argument("--dataset", choices=dataset_names(), required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--out", required=True, help="destination path")

    bench = commands.add_parser(
        "serve-bench",
        help="closed-loop load test of the concurrent serving stack",
    )
    source = bench.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="edge-list file to serve")
    source.add_argument("--nodes", type=int,
                        help="serve a synthetic community graph this big")
    bench.add_argument("--avg-degree", type=int, default=16,
                       help="synthetic graph mean degree (with --nodes)")
    bench.add_argument("--method", choices=available_methods(), default="tpa")
    bench.add_argument("--s-iteration", type=int, default=5)
    bench.add_argument("--t-iteration", type=int, default=10)
    bench.add_argument("--workers", type=int, default=2,
                       help="worker threads (one Engine replica each)")
    bench.add_argument("--clients", type=int, default=4,
                       help="closed-loop client threads")
    bench.add_argument("--requests", type=int, default=100,
                       help="requests per client")
    bench.add_argument("--top", type=int, default=10,
                       help="top-k of every request")
    bench.add_argument("--max-batch", type=int, default=32)
    bench.add_argument("--max-wait-ms", type=float, default=2.0)
    bench.add_argument("--max-pending", type=int, default=1024)
    bench.add_argument("--cache", type=int, default=0,
                       help="shared score-cache capacity (0 = off)")
    bench.add_argument("--seed-pool", type=int, default=256,
                       help="distinct seeds the load generator cycles over")
    bench.add_argument("--json", dest="json_out",
                       help="also write the report as JSON to this path")

    return parser


def _command_query(args: argparse.Namespace) -> int:
    if args.seed is None and args.seeds is None:
        print("one of --seed or --seeds is required", file=sys.stderr)
        return 2

    graph, original_ids = read_edge_list(args.graph)
    id_to_compact = {int(original): index
                     for index, original in enumerate(original_ids.tolist())}

    requested: list[int] = []
    if args.seed is not None:
        requested.append(args.seed)
    if args.seeds is not None:
        requested.extend(_parse_seed_spec(args.seeds))
    missing = [seed for seed in requested if seed not in id_to_compact]
    if missing:
        print(f"seed id {missing[0]} not present in {args.graph}",
              file=sys.stderr)
        return 2
    compact_seeds = [id_to_compact[seed] for seed in requested]

    method = create_method(args.method, **_method_params(args))
    engine = Engine(method, graph)
    results = engine.batch(
        [QueryRequest(seed=seed, k=args.top, exclude_seed=False)
         for seed in compact_seeds]
    )

    online_seconds = sum(result.seconds for result in results)
    print(f"# method={method.name} nodes={graph.num_nodes} "
          f"edges={graph.num_edges}")
    print(f"# preprocess={engine.preprocess_seconds:.4f}s "
          f"online={online_seconds:.4f}s "
          f"index={method.preprocessed_bytes()}B")

    batch_mode = args.batch or len(results) > 1
    if batch_mode:
        print(f"# queries={len(results)}")
        print("seed\trank\tnode\tscore")
        for original_seed, result in zip(requested, results):
            for rank, (node, score) in enumerate(
                zip(result.top_nodes.tolist(), result.top_scores.tolist()),
                start=1,
            ):
                print(f"{original_seed}\t{rank}\t{original_ids[node]}\t"
                      f"{score:.6e}")
    else:
        result = results[0]
        print("rank\tnode\tscore")
        for rank, (node, score) in enumerate(
            zip(result.top_nodes.tolist(), result.top_scores.tolist()),
            start=1,
        ):
            print(f"{rank}\t{original_ids[node]}\t{score:.6e}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph, _ = read_edge_list(args.graph)
    stats = graph_stats(graph)
    print(f"nodes            {stats.num_nodes}")
    print(f"edges            {stats.num_edges}")
    print(f"mean degree      {stats.mean_degree:.2f}")
    print(f"max in-degree    {stats.max_in_degree}")
    print(f"max out-degree   {stats.max_out_degree}")
    print(f"in-degree gini   {stats.in_degree_gini:.3f}")
    print(f"out-degree gini  {stats.out_degree_gini:.3f}")
    print(f"reciprocity      {stats.reciprocity:.3f}")
    print(f"dangling nodes   {stats.dangling_nodes}")
    return 0


def _latency_histogram(latencies_ms, buckets: int = 10, width: int = 40) -> str:
    """An ASCII histogram of client-observed latencies, log-spaced —
    serving latency distributions are long-tailed, so linear buckets
    would pile everything into the first bar."""
    import numpy as np

    samples = np.asarray(latencies_ms, dtype=np.float64)
    if samples.size == 0:
        # Every request failed: still print the report (the error
        # counts below are exactly what the user needs to see).
        return "latency histogram (ms)\n  (no completed requests)"
    low = max(samples.min(), 1e-3)
    high = max(samples.max(), low * 1.001)
    edges = np.geomspace(low, high, buckets + 1)
    edges[0] = 0.0  # catch everything below the measured floor
    counts, _ = np.histogram(samples, bins=edges)
    peak = max(int(counts.max()), 1)
    lines = ["latency histogram (ms)"]
    for index, count in enumerate(counts.tolist()):
        bar = "#" * max(1 if count else 0, round(width * count / peak))
        lines.append(
            f"  {edges[index]:8.2f} - {edges[index + 1]:8.2f}  "
            f"{bar:<{width}} {count}"
        )
    return "\n".join(lines)


def _command_serve_bench(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.graph.generators import community_graph
    from repro.serving import Server, run_closed_loop

    if args.graph is not None:
        graph, _ = read_edge_list(args.graph)
        source = args.graph
    else:
        graph = community_graph(
            args.nodes, avg_degree=args.avg_degree,
            num_communities=max(8, args.nodes // 500), seed=7,
        )
        source = f"synthetic community ({args.nodes} nodes)"

    method = create_method(args.method, **_method_params(args))
    pool = np.random.default_rng(0).choice(
        graph.num_nodes,
        size=min(args.seed_pool, graph.num_nodes),
        replace=False,
    )
    with Server(
        method,
        graph,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        cache_size=args.cache,
    ) as server:
        print(f"# graph={source} nodes={graph.num_nodes} "
              f"edges={graph.num_edges}")
        print(f"# method={method.name} workers={args.workers} "
              f"clients={args.clients} requests/client={args.requests} "
              f"top={args.top} max_batch={args.max_batch} "
              f"max_wait_ms={args.max_wait_ms:g} cache={args.cache}")
        report = run_closed_loop(
            server,
            pool,
            k=args.top,
            clients=args.clients,
            requests_per_client=args.requests,
        )

    print(_latency_histogram(report.latencies_ms))
    print(f"requests        {report.requests}")
    print(f"rejected        {report.rejected}")
    print(f"errors          {report.errors}")
    print(f"wall seconds    {report.seconds:.3f}")
    print(f"throughput      {report.queries_per_second:.1f} q/s")
    print(f"latency p50     {report.latency_p50_ms:.2f} ms")
    print(f"latency p95     {report.latency_p95_ms:.2f} ms")
    print(f"latency p99     {report.latency_p99_ms:.2f} ms")
    print(f"latency mean    {report.latency_mean_ms:.2f} ms")
    stats = report.server_stats
    print(f"queue mean      {stats['queue_mean_ms']:.2f} ms")
    print(f"compute mean    {stats['compute_mean_ms']:.2f} ms")
    if "cache" in stats:
        cache = stats["cache"]
        print(f"cache           {cache['hits']} hits / "
              f"{cache['misses']} misses / {cache['evictions']} evictions")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote report to {args.json_out}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    spec = DATASETS[args.dataset]
    write_edge_list(
        graph,
        args.out,
        header=(
            f"analog of {args.dataset} (paper: {spec.paper_nodes} nodes, "
            f"{spec.paper_edges} edges) at scale {args.scale}"
        ),
    )
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _command_query,
        "stats": _command_stats,
        "generate": _command_generate,
        "serve-bench": _command_serve_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
