"""Command-line interface for the library itself.

Three subcommands::

    python -m repro query --graph edges.tsv --seed 42 --method tpa --top 20
    python -m repro stats --graph edges.tsv
    python -m repro generate --dataset pokec --scale 0.5 --out pokec.tsv

``query`` reads a whitespace edge list, runs the chosen method, and prints
the top-ranked nodes (in the file's original ids); ``stats`` prints the
structural summary used to judge TPA-friendliness; ``generate`` writes one
of the synthetic dataset analogs to disk as an edge list.

(The per-figure experiment harness lives under ``python -m
repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.baselines import BRPPR, BearApprox, BePI, Fora, HubPPR, NBLin, RPPR
from repro.core.tpa import TPA
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import graph_stats
from repro.method import PPRMethod

__all__ = ["main"]

_METHOD_FACTORIES = {
    "tpa": lambda args: TPA(s_iteration=args.s_iteration, t_iteration=args.t_iteration),
    "brppr": lambda args: BRPPR(),
    "rppr": lambda args: RPPR(),
    "fora": lambda args: Fora(seed=0),
    "bear": lambda args: BearApprox(),
    "hubppr": lambda args: HubPPR(seed=0),
    "nblin": lambda args: NBLin(seed=0),
    "bepi": lambda args: BePI(),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Approximate RWR on edge-list graphs (TPA, ICDE 2018).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="rank nodes by RWR from a seed")
    query.add_argument("--graph", required=True, help="edge-list file")
    query.add_argument("--seed", type=int, required=True,
                       help="seed node (original id)")
    query.add_argument("--method", choices=sorted(_METHOD_FACTORIES),
                       default="tpa")
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--s-iteration", type=int, default=5)
    query.add_argument("--t-iteration", type=int, default=10)

    stats = commands.add_parser("stats", help="structural graph summary")
    stats.add_argument("--graph", required=True, help="edge-list file")

    generate = commands.add_parser("generate", help="write a dataset analog")
    generate.add_argument("--dataset", choices=dataset_names(), required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--out", required=True, help="destination path")

    return parser


def _command_query(args: argparse.Namespace) -> int:
    graph, original_ids = read_edge_list(args.graph)
    id_to_compact = {int(original): index
                     for index, original in enumerate(original_ids.tolist())}
    if args.seed not in id_to_compact:
        print(f"seed id {args.seed} not present in {args.graph}", file=sys.stderr)
        return 2
    compact_seed = id_to_compact[args.seed]

    method: PPRMethod = _METHOD_FACTORIES[args.method](args)
    begin = time.perf_counter()
    method.preprocess(graph)
    preprocess_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    scores = method.query(compact_seed)
    online_seconds = time.perf_counter() - begin

    print(f"# method={method.name} nodes={graph.num_nodes} "
          f"edges={graph.num_edges}")
    print(f"# preprocess={preprocess_seconds:.4f}s online={online_seconds:.4f}s "
          f"index={method.preprocessed_bytes()}B")
    print("rank\tnode\tscore")
    order = np.argsort(-scores, kind="stable")[: args.top]
    for rank, node in enumerate(order.tolist(), start=1):
        print(f"{rank}\t{original_ids[node]}\t{scores[node]:.6e}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph, _ = read_edge_list(args.graph)
    stats = graph_stats(graph)
    print(f"nodes            {stats.num_nodes}")
    print(f"edges            {stats.num_edges}")
    print(f"mean degree      {stats.mean_degree:.2f}")
    print(f"max in-degree    {stats.max_in_degree}")
    print(f"max out-degree   {stats.max_out_degree}")
    print(f"in-degree gini   {stats.in_degree_gini:.3f}")
    print(f"out-degree gini  {stats.out_degree_gini:.3f}")
    print(f"reciprocity      {stats.reciprocity:.3f}")
    print(f"dangling nodes   {stats.dangling_nodes}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    spec = DATASETS[args.dataset]
    write_edge_list(
        graph,
        args.out,
        header=(
            f"analog of {args.dataset} (paper: {spec.paper_nodes} nodes, "
            f"{spec.paper_edges} edges) at scale {args.scale}"
        ),
    )
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _command_query,
        "stats": _command_stats,
        "generate": _command_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
