"""Command-line interface for the library itself.

Five subcommands::

    python -m repro query --graph edges.tsv --seed 42 --method tpa --top 20
    python -m repro query --graph edges.tsv --seeds 1,2,3 --method tpa
    python -m repro query --graph edges.tsv --seeds @seeds.txt --batch
    python -m repro stats --graph edges.tsv
    python -m repro generate --dataset pokec --scale 0.5 --out pokec.tsv
    python -m repro tune --json
    python -m repro serve-bench --nodes 20000 --workers 4 --clients 8
    python -m repro shard-bench --nodes 20000 --shards 4 --clients 8 --tuned
    python -m repro update-bench --nodes 20000 --workers 4 --clients 8

``query`` reads a whitespace edge list, runs the chosen method through the
batched :class:`~repro.engine.Engine`, and prints the top-ranked nodes (in
the file's original ids).  Seeds come from ``--seed`` (one id) or
``--seeds`` (comma-separated list, or ``@path`` to a file with one id per
whitespace-separated token); multiple seeds — or ``--batch`` — switch the
output to the tab-separated batch format with a leading ``seed`` column.
Methods are resolved via the registry
(:func:`repro.engine.available_methods`).

``stats`` prints the structural summary used to judge TPA-friendliness;
``generate`` writes one of the synthetic dataset analogs to disk as an
edge list.

``tune`` measures this machine's kernel and serving knobs
(:func:`repro.tune.autotune`) and caches the resulting
:class:`~repro.tune.TuneProfile` under a hardware fingerprint — the
second invocation reads the cache instead of re-measuring.

The three benchmarks share one driver (:func:`_command_bench`) and one
flag surface.  ``serve-bench`` stands up a
:class:`repro.serving.Server` (worker pool of Engine replicas behind
the micro-batching scheduler); ``shard-bench`` stands up a
:class:`repro.sharding.Router` (shard worker processes over
shared-memory CSR stripes behind the same scheduler); ``update-bench``
serves over a live :class:`repro.dynamic.DynamicGraph` while a mutator
thread applies edge-update batches.  All drive the closed-loop load
generator and print the client-observed latency histogram plus
p50/p95/p99 and throughput; ``--json`` additionally writes the report —
one shared, versioned schema
(:data:`repro.serving.metrics.REPORT_SCHEMA`) for every deployment, so
CI's artifacts stay directly diffable.  ``--tuned [PATH]`` serves with
a tuned profile (bare ``--tuned`` uses this machine's cached profile,
measuring one if needed) and ``--pin`` / ``--no-pin`` controls core
pinning; every knob the caller sets explicitly still wins over the
profile.

(The per-figure experiment harness lives under ``python -m
repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import Engine, QueryRequest, available_methods, create_method
from repro.graph.datasets import DATASETS, dataset_names, load_dataset
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import graph_stats

__all__ = ["main"]


def _method_params(args: argparse.Namespace) -> dict:
    """Per-method constructor arguments sourced from CLI flags."""
    if args.method == "tpa":
        return {
            "s_iteration": args.s_iteration,
            "t_iteration": args.t_iteration,
        }
    return {}


def _parse_seed_spec(spec: str) -> list[int]:
    """Parse ``--seeds``: a comma list (``1,2,3``) or ``@file`` of ids."""
    if spec.startswith("@"):
        try:
            tokens = Path(spec[1:]).read_text(encoding="utf-8").split()
        except OSError as error:
            raise SystemExit(f"cannot read seed file {spec[1:]!r}: {error}")
    else:
        tokens = [token for token in spec.split(",") if token.strip()]
    try:
        return [int(token) for token in tokens]
    except ValueError as error:
        raise SystemExit(f"invalid seed id in --seeds: {error}") from error


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Approximate RWR on edge-list graphs (TPA, ICDE 2018).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="rank nodes by RWR from seeds")
    query.add_argument("--graph", required=True, help="edge-list file")
    query.add_argument("--seed", type=int, help="seed node (original id)")
    query.add_argument("--seeds",
                       help="seed batch: comma list '1,2,3' or '@file' with "
                            "one id per token")
    query.add_argument("--method", choices=available_methods(), default="tpa")
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--batch", action="store_true",
                       help="force the tab-separated batch output format")
    query.add_argument("--s-iteration", type=int, default=5)
    query.add_argument("--t-iteration", type=int, default=10)

    stats = commands.add_parser("stats", help="structural graph summary")
    stats.add_argument("--graph", required=True, help="edge-list file")

    generate = commands.add_parser("generate", help="write a dataset analog")
    generate.add_argument("--dataset", choices=dataset_names(), required=True)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--out", required=True, help="destination path")

    tune_cmd = commands.add_parser(
        "tune",
        help="measure this machine's kernel/serving knobs and cache them",
    )
    tune_cmd.add_argument("--graph",
                          help="edge-list file to probe on "
                               "(default: synthetic probe graph)")
    tune_cmd.add_argument("--nodes", type=int, default=8000,
                          help="synthetic probe-graph size")
    tune_cmd.add_argument("--avg-degree", type=int, default=12,
                          help="synthetic probe-graph mean degree")
    tune_cmd.add_argument("--repeats", type=int, default=3,
                          help="timing repetitions per grid cell")
    tune_cmd.add_argument("--force", action="store_true",
                          help="re-measure even when a cached profile exists")
    tune_cmd.add_argument("--json", dest="json_out", nargs="?", const="-",
                          metavar="PATH",
                          help="emit the profile as JSON (to stdout, or to "
                               "PATH)")

    def add_bench_arguments(bench) -> None:
        """Flags shared by all three benchmarks — one surface, one
        driver (:func:`_command_bench`), three deployments."""
        source = bench.add_mutually_exclusive_group(required=True)
        source.add_argument("--graph", help="edge-list file to serve")
        source.add_argument("--nodes", type=int,
                            help="serve a synthetic community graph this big")
        bench.add_argument("--avg-degree", type=int, default=16,
                           help="synthetic graph mean degree (with --nodes)")
        bench.add_argument("--method", choices=available_methods(),
                           default="tpa")
        bench.add_argument("--s-iteration", type=int, default=5)
        bench.add_argument("--t-iteration", type=int, default=10)
        bench.add_argument("--clients", type=int, default=4,
                           help="closed-loop client threads")
        bench.add_argument("--requests", type=int, default=100,
                           help="requests per client")
        bench.add_argument("--top", type=int, default=10,
                           help="top-k of every request")
        bench.add_argument("--max-batch", type=int, default=None,
                           help="scheduler micro-batch cap "
                                "(default: tuned profile, else 32)")
        bench.add_argument("--max-wait-ms", type=float, default=None,
                           help="scheduler coalescing window "
                                "(default: tuned profile, else 2.0)")
        bench.add_argument("--max-pending", type=int, default=1024)
        bench.add_argument("--cache", type=int, default=0,
                           help="shared score-cache capacity (0 = off)")
        bench.add_argument("--seed-pool", type=int, default=256,
                           help="distinct seeds the load generator cycles "
                                "over")
        bench.add_argument("--tuned", nargs="?", const="auto", default=None,
                           metavar="PATH",
                           help="serve with a tuned profile: bare --tuned "
                                "loads (measuring if absent) this machine's "
                                "cached profile, --tuned PATH loads a saved "
                                "one; explicit flags still win")
        bench.add_argument("--pin", action=argparse.BooleanOptionalAction,
                           default=None,
                           help="pin workers/shards to distinct cores "
                                "(default: pin exactly when --tuned)")
        bench.add_argument("--deadline-ms", type=float, default=None,
                           help="queue deadline per request: still "
                                "undispatched after this many ms, it fails "
                                "fast with DeadlineExceeded")
        bench.add_argument("--retry-attempts", type=int, default=None,
                           help="bound client-side retries of rejected "
                                "submissions (jittered backoff) instead of "
                                "retrying forever")
        bench.add_argument("--retry-backoff-ms", type=float, default=5.0,
                           help="base backoff of --retry-attempts retries")
        bench.add_argument("--json", dest="json_out",
                           help="also write the report as JSON to this path")
        bench.add_argument("--trace", dest="trace_out", metavar="PATH",
                           help="enable request tracing for the run and "
                                "dump the retained spans as JSON to PATH "
                                "(inspect with 'repro obs trace PATH')")
        bench.add_argument("--metrics-out", dest="metrics_out",
                           metavar="PATH",
                           help="dump the metrics registry after the run: "
                                "Prometheus text, or a JSON snapshot when "
                                "PATH ends in .json")
        bench.add_argument("--profile", dest="profile_out", metavar="PATH",
                           help="sample-profile the run (router and shard "
                                "workers alike) and write the merged "
                                "collapsed-stack profile to PATH — "
                                "flamegraph.pl input, or a repro-profile/1 "
                                "JSON snapshot when PATH ends in .json "
                                "(inspect with 'repro obs profile PATH')")
        bench.add_argument("--obs-port", dest="obs_port", type=int,
                           default=None, metavar="PORT",
                           help="serve /metrics, /health, /snapshot, "
                                "/traces, /profile over HTTP for the "
                                "run's duration (0 = ephemeral port)")

    bench = commands.add_parser(
        "serve-bench",
        help="closed-loop load test of the concurrent serving stack",
    )
    add_bench_arguments(bench)
    bench.add_argument("--workers", type=int, default=None,
                       help="worker threads, one Engine replica each "
                            "(default: tuned profile, else 2)")

    shard = commands.add_parser(
        "shard-bench",
        help="closed-loop load test of the sharded multi-process router",
    )
    add_bench_arguments(shard)
    shard.add_argument("--shards", type=int, default=None,
                       help="shard worker processes, one row stripe each "
                            "(default: tuned profile, else 2)")
    shard.add_argument("--reorder",
                       choices=("none", "slashburn", "partition"),
                       default="slashburn",
                       help="row ordering the shard plan cuts on")
    shard.add_argument("--start-method", default=None,
                       help="multiprocessing start method override")

    update = commands.add_parser(
        "update-bench",
        help="closed-loop load test while the graph mutates underneath",
    )
    add_bench_arguments(update)
    update.add_argument("--workers", type=int, default=None,
                        help="worker threads, one Engine replica each "
                             "(default: tuned profile, else 2)")
    update.add_argument("--update-batch", type=int, default=8,
                        help="edges per mutation call")
    update.add_argument("--compact-every", type=int, default=256,
                        help="applied mutations between compactions "
                             "(0 = never compact, pure overlay serving)")
    update.add_argument("--backlog", type=int, default=1024,
                        help="max benchmark-inserted edges alive at once")

    obs = commands.add_parser(
        "obs",
        help="inspect observability dumps written by the benchmarks",
    )
    obs_kinds = obs.add_subparsers(dest="obs_command", required=True)
    obs_metrics_cmd = obs_kinds.add_parser(
        "metrics",
        help="summarize a metrics dump (--metrics-out file: Prometheus "
             "text or JSON snapshot)",
    )
    obs_metrics_cmd.add_argument("path", help="metrics dump file")
    obs_trace_cmd = obs_kinds.add_parser(
        "trace",
        help="render the span trees in a trace dump (--trace file)",
    )
    obs_trace_cmd.add_argument("path", help="trace dump file (JSON)")
    obs_trace_cmd.add_argument("--trace-id", default=None,
                               help="render only this trace")
    obs_profile_cmd = obs_kinds.add_parser(
        "profile",
        help="summarize a sampling profile (--profile file: collapsed "
             "stacks or repro-profile/1 JSON, or a bench report with a "
             "profile section)",
    )
    obs_profile_cmd.add_argument("path", help="profile dump file")
    obs_profile_cmd.add_argument("--top", type=int, default=20,
                                 help="self-time rows to print")

    return parser


def _command_query(args: argparse.Namespace) -> int:
    if args.seed is None and args.seeds is None:
        print("one of --seed or --seeds is required", file=sys.stderr)
        return 2

    graph, original_ids = read_edge_list(args.graph)
    id_to_compact = {int(original): index
                     for index, original in enumerate(original_ids.tolist())}

    requested: list[int] = []
    if args.seed is not None:
        requested.append(args.seed)
    if args.seeds is not None:
        requested.extend(_parse_seed_spec(args.seeds))
    missing = [seed for seed in requested if seed not in id_to_compact]
    if missing:
        print(f"seed id {missing[0]} not present in {args.graph}",
              file=sys.stderr)
        return 2
    compact_seeds = [id_to_compact[seed] for seed in requested]

    method = create_method(args.method, **_method_params(args))
    engine = Engine(method, graph)
    results = engine.batch(
        [QueryRequest(seed=seed, k=args.top, exclude_seed=False)
         for seed in compact_seeds]
    )

    online_seconds = sum(result.seconds for result in results)
    print(f"# method={method.name} nodes={graph.num_nodes} "
          f"edges={graph.num_edges}")
    print(f"# preprocess={engine.preprocess_seconds:.4f}s "
          f"online={online_seconds:.4f}s "
          f"index={method.preprocessed_bytes()}B")

    batch_mode = args.batch or len(results) > 1
    if batch_mode:
        print(f"# queries={len(results)}")
        print("seed\trank\tnode\tscore")
        for original_seed, result in zip(requested, results):
            for rank, (node, score) in enumerate(
                zip(result.top_nodes.tolist(), result.top_scores.tolist()),
                start=1,
            ):
                print(f"{original_seed}\t{rank}\t{original_ids[node]}\t"
                      f"{score:.6e}")
    else:
        result = results[0]
        print("rank\tnode\tscore")
        for rank, (node, score) in enumerate(
            zip(result.top_nodes.tolist(), result.top_scores.tolist()),
            start=1,
        ):
            print(f"{rank}\t{original_ids[node]}\t{score:.6e}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph, _ = read_edge_list(args.graph)
    stats = graph_stats(graph)
    print(f"nodes            {stats.num_nodes}")
    print(f"edges            {stats.num_edges}")
    print(f"mean degree      {stats.mean_degree:.2f}")
    print(f"max in-degree    {stats.max_in_degree}")
    print(f"max out-degree   {stats.max_out_degree}")
    print(f"in-degree gini   {stats.in_degree_gini:.3f}")
    print(f"out-degree gini  {stats.out_degree_gini:.3f}")
    print(f"reciprocity      {stats.reciprocity:.3f}")
    print(f"dangling nodes   {stats.dangling_nodes}")
    return 0


def _bench_graph(args: argparse.Namespace):
    """The benchmark graph plus a human-readable source label."""
    from repro.graph.generators import community_graph

    if args.graph is not None:
        graph, _ = read_edge_list(args.graph)
        return graph, args.graph
    graph = community_graph(
        args.nodes, avg_degree=args.avg_degree,
        num_communities=max(8, args.nodes // 500), seed=7,
    )
    return graph, f"synthetic community ({args.nodes} nodes)"


def _bench_seed_pool(args: argparse.Namespace, num_nodes: int):
    import numpy as np

    return np.random.default_rng(0).choice(
        num_nodes, size=min(args.seed_pool, num_nodes), replace=False,
    )


def _print_bench_report(args: argparse.Namespace, report, *, kind: str,
                        config: dict, extra: dict | None = None) -> None:
    """Render one closed-loop report: histogram, summary lines, and the
    optional JSON document (shared schema across all three benchmarks;
    ``extra`` fields — e.g. ``updates_*`` — merge into the document)."""
    import json

    from repro.serving.metrics import bench_report, latency_histogram

    print(latency_histogram(report.latencies_ms))
    print(f"requests        {report.requests}")
    print(f"rejected        {report.rejected}")
    print(f"errors          {report.errors}")
    print(f"retries         {report.retries}")
    print(f"deadline misses {report.deadlines_exceeded}")
    print(f"wall seconds    {report.seconds:.3f}")
    print(f"throughput      {report.queries_per_second:.1f} q/s")
    print(f"latency p50     {report.latency_p50_ms:.2f} ms")
    print(f"latency p95     {report.latency_p95_ms:.2f} ms")
    print(f"latency p99     {report.latency_p99_ms:.2f} ms")
    print(f"latency mean    {report.latency_mean_ms:.2f} ms")
    stats = report.server_stats
    print(f"queue mean      {stats['queue_mean_ms']:.2f} ms")
    print(f"compute mean    {stats['compute_mean_ms']:.2f} ms")
    resilience = " / ".join(
        f"{stats.get(key, 0)} {key}"
        for key in ("failures", "retries", "respawns", "deadlines_exceeded")
    )
    print(f"server faults   {resilience}")
    cache = stats.get("cache")
    if cache:
        print(f"cache           {cache['hits']} hits / "
              f"{cache['misses']} misses / {cache['evictions']} evictions")

    if args.json_out:
        document = bench_report(report, kind=kind, config=config)
        if extra:
            document.update(extra)
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote report to {args.json_out}")


def _load_tuned_profile(args: argparse.Namespace):
    """Resolve ``--tuned`` into a :class:`~repro.tune.TuneProfile`.

    ``None`` when the flag is absent; bare ``--tuned`` resolves through
    :func:`repro.tune.autotune` (cache hit, or measure-and-save);
    ``--tuned PATH`` loads exactly that file."""
    spec = getattr(args, "tuned", None)
    if spec is None:
        return None
    from repro import tune
    from repro.exceptions import ParameterError

    if spec == "auto":
        return tune.autotune()
    try:
        return tune.TuneProfile.load(spec)
    except (OSError, ValueError, KeyError, ParameterError) as error:
        raise SystemExit(f"cannot load tuned profile {spec!r}: {error}")


def _command_bench(args: argparse.Namespace) -> int:
    """The one driver behind serve-bench, shard-bench, and update-bench.

    Resolves the graph, method, seed pool, and optional tuned profile;
    stands up the deployment the subcommand names (Server, Router, or
    Server over a :class:`~repro.dynamic.DynamicGraph`); runs the
    closed-loop load; renders the shared report.  Knob precedence is the
    deployments' own: explicit flag > tuned profile > static default —
    the header and JSON config echo the *resolved* values."""
    import os

    from repro.obs import profile as obs_profile
    from repro.obs import trace as obs_trace
    from repro.serving import Server, run_closed_loop

    kind = args.command
    if args.trace_out:
        # Opt the whole run (and any shard workers it spawns, via the
        # inherited environment) into tracing before the deployment
        # exists, so the very first request is already traced.
        obs_trace.set_tracing(True)
        os.environ.setdefault(obs_trace.TRACE_ENV_VAR, "1")
    if args.profile_out:
        # Same pattern for the profiler: the environment opt-in is what
        # shard worker processes inherit and arm themselves from.
        os.environ.setdefault(obs_profile.PROFILE_ENV_VAR, "1")
        obs_profile.set_profiling(True)
    graph, source = _bench_graph(args)
    if kind == "update-bench":
        from repro.dynamic import DynamicGraph

        graph = DynamicGraph(graph)
    method = create_method(args.method, **_method_params(args))
    pool = _bench_seed_pool(args, graph.num_nodes)
    profile = _load_tuned_profile(args)
    client_retry = None
    if args.retry_attempts is not None:
        from repro.resilience import RetryPolicy

        client_retry = RetryPolicy(
            max_attempts=args.retry_attempts,
            backoff_ms=args.retry_backoff_ms,
        )

    common = dict(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        cache_size=args.cache,
        tune=profile,
        pin=args.pin,
        obs_port=args.obs_port,
    )
    if kind == "shard-bench":
        from repro.sharding import Router

        deployment = Router(
            method,
            graph,
            num_shards=args.shards,
            reorder=None if args.reorder == "none" else args.reorder,
            start_method=args.start_method,
            **common,
        )
    else:
        deployment = Server(method, graph, workers=args.workers, **common)

    extra = None
    with deployment:
        if deployment.exporter is not None:
            print(f"# obs endpoint  {deployment.exporter.url('/metrics')}")
        stats = deployment.stats()
        max_batch = stats["max_batch"]
        max_wait_ms = stats["max_wait_ms"]
        config = {
            "graph": source, "nodes": graph.num_nodes,
            "edges": graph.num_edges, "method": method.name,
            "clients": args.clients, "requests_per_client": args.requests,
            "top": args.top, "max_batch": max_batch,
            "max_wait_ms": max_wait_ms, "cache": args.cache,
            "tuned": profile is not None,
            "deadline_ms": args.deadline_ms,
            "retry_attempts": args.retry_attempts,
        }
        print(f"# graph={source} nodes={graph.num_nodes} "
              f"edges={graph.num_edges}")
        if kind == "shard-bench":
            shape = f"shards={deployment.num_shards} reorder={args.reorder}"
            pinning = stats["shards"]["pinning"]
            config["shards"] = deployment.num_shards
            config["reorder"] = args.reorder
            config["shard_rows"] = stats["shards"]["shard_rows"]
        else:
            shape = f"workers={deployment.workers}"
            pinning = stats.get("pinning")
            config["workers"] = deployment.workers
        config["pinning"] = pinning
        print(f"# method={method.name} {shape} "
              f"clients={args.clients} requests/client={args.requests} "
              f"top={args.top} max_batch={max_batch} "
              f"max_wait_ms={max_wait_ms:g} cache={args.cache}")
        if profile is not None:
            print(f"# tuned fingerprint={profile.fingerprint.key()} "
                  f"stream_block={profile.stream_block} "
                  f"kernel_threads={profile.kernel_threads} "
                  f"pinning={pinning}")
        if kind == "shard-bench":
            print(f"# shard rows    {config['shard_rows']}")
        if kind == "update-bench":
            from repro.dynamic import run_update_bench

            config.update(
                update_batch=args.update_batch,
                compact_every=args.compact_every,
                backlog=args.backlog,
            )
            result = run_update_bench(
                deployment,
                graph,
                pool,
                k=args.top,
                clients=args.clients,
                requests_per_client=args.requests,
                update_batch=args.update_batch,
                compact_every=args.compact_every,
                backlog=args.backlog,
            )
            report = result.load
            extra = result.update_fields()
        else:
            report = run_closed_loop(
                deployment,
                pool,
                k=args.top,
                clients=args.clients,
                requests_per_client=args.requests,
                deadline_ms=args.deadline_ms,
                retry=client_retry,
            )

    if kind == "update-bench":
        print(f"updates applied {result.updates_applied} "
              f"(attempted {result.updates_attempted})")
        print(f"compactions     {result.compactions}")
        print(f"updates/sec     {result.updates_per_second:.1f}")
    _print_bench_report(args, report, kind=kind, config=config, extra=extra)
    if args.trace_out:
        retained = obs_trace.dump_traces(args.trace_out)
        print(f"wrote {len(retained['spans'])} spans "
              f"({len(obs_trace.trace_ids())} traces) to {args.trace_out}")
    if args.metrics_out:
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.get_registry()
        if args.metrics_out.endswith(".json"):
            payload = obs_metrics.snapshot_json(indent=2) + "\n"
        else:
            payload = registry.expose()
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {len(registry.families())} metric families "
              f"to {args.metrics_out}")
    if args.profile_out:
        import json

        # Fold the local sampler's remaining epoch in; worker samples
        # already arrived on the step replies.
        obs_profile.stop()
        snapshot = obs_profile.profile_snapshot()
        if args.profile_out.endswith(".json"):
            payload = json.dumps(snapshot, indent=2) + "\n"
        else:
            payload = obs_profile.collapsed()
        with open(args.profile_out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {snapshot['samples']} profile samples "
              f"from {len(snapshot['pids'])} process(es) "
              f"to {args.profile_out}")
    return 0


def _command_tune(args: argparse.Namespace) -> int:
    import json

    from repro import tune

    graph = None
    if args.graph is not None:
        graph, _ = read_edge_list(args.graph)
    fingerprint = tune.machine_fingerprint()
    cached = None if args.force else tune.load_cached(fingerprint)
    profile = cached if cached is not None else tune.autotune(
        graph,
        force=args.force,
        nodes=args.nodes,
        avg_degree=args.avg_degree,
        repeats=args.repeats,
    )
    if args.json_out:
        document = json.dumps(profile.to_dict(), indent=2)
        if args.json_out == "-":
            print(document)
            return 0
        Path(args.json_out).write_text(document + "\n", encoding="utf-8")
        print(f"wrote profile to {args.json_out}")
    print(f"fingerprint     {fingerprint.key()} "
          f"({fingerprint.cpu_count} cpus, "
          f"{len(fingerprint.numa)} numa node(s), "
          f"backend={fingerprint.backend})")
    print(f"profile         "
          f"{'cached' if cached is not None else 'measured'} "
          f"({tune.cache_path(fingerprint)})")
    print(f"probe seconds   {profile.probe_seconds:.2f}")
    print(f"tile_rows       {profile.tile_rows}")
    print(f"stream_block    {profile.stream_block}")
    print(f"kernel_threads  {profile.kernel_threads}")
    print(f"workers         {profile.workers}")
    print(f"shards          {profile.shards}")
    print(f"max_batch       {profile.max_batch}")
    print(f"max_wait_ms     {profile.max_wait_ms:g}")
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    """Inspect dump files written by ``--metrics-out`` / ``--trace``.

    A fresh CLI process has an empty registry and span buffer, so both
    subcommands operate on the files the benchmarks wrote rather than
    on live state: ``metrics`` re-parses the exposition text (or JSON
    snapshot) and prints a per-family summary; ``trace`` rebuilds and
    renders the span trees."""
    import json

    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    try:
        text = Path(args.path).read_text(encoding="utf-8")
    except OSError as error:
        raise SystemExit(f"cannot read {args.path!r}: {error}")

    if args.obs_command == "metrics":
        if text.lstrip().startswith("{"):
            snapshot = json.loads(text)
            families = snapshot.get("families", {})
            rows = []
            for name in sorted(families):
                family = families[name]
                for sample in family.get("samples", []):
                    labels = sample.get("labels") or {}
                    if "value" in sample:
                        rows.append((name, labels, sample["value"]))
                    else:  # histogram sample
                        rows.append(
                            (f"{name}_sum", labels, sample["sum"])
                        )
                        rows.append(
                            (f"{name}_count", labels, sample["count"])
                        )
        else:
            try:
                families = obs_metrics.parse_prometheus_text(text)
            except ValueError as error:
                raise SystemExit(f"malformed metrics dump: {error}")
            rows = [
                sample
                for name in sorted(families)
                for sample in families[name]["samples"]
            ]
        for sample_name, labels, value in rows:
            rendered = (
                "{" + ",".join(
                    f"{key}={labels[key]}" for key in sorted(labels)
                ) + "}"
                if labels else ""
            )
            print(f"{sample_name}{rendered} {value:g}")
        print(f"# {len(families)} families, {len(rows)} samples")
        return 0

    if args.obs_command == "profile":
        stacks: dict[str, float] = {}
        if text.lstrip().startswith("{"):
            document = json.loads(text)
            # Accept a repro-profile/1 snapshot directly, or a bench
            # report carrying one under its "profile" key.
            section = (
                document
                if "stacks" in document
                else document.get("profile", {})
            )
            stacks = {
                str(stack): float(count)
                for stack, count in (section.get("stacks") or {}).items()
            }
        else:
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                stack, _, count = line.rpartition(" ")
                try:
                    stacks[stack] = stacks.get(stack, 0.0) + float(count)
                except ValueError:
                    raise SystemExit(
                        f"malformed collapsed-stack line: {line!r}"
                    )
        if not stacks:
            print("# empty profile (was REPRO_PROFILE/--profile set?)")
            return 0
        total = sum(stacks.values())
        pids = sorted(
            {
                stack.split(";", 1)[0][4:]
                for stack in stacks
                if stack.startswith("pid:")
            }
        )
        self_time: dict[str, float] = {}
        for stack, count in stacks.items():
            leaf = stack.rsplit(";", 1)[-1]
            self_time[leaf] = self_time.get(leaf, 0.0) + count
        ranked = sorted(
            self_time.items(), key=lambda item: (-item[1], item[0])
        )
        print(f"{'samples':>9}  {'share':>6}  symbol (self time)")
        for symbol, count in ranked[: args.top]:
            print(f"{count:9g}  {count / total:6.1%}  {symbol}")
        print(f"# {total:g} samples, {len(stacks)} stacks, "
              f"{len(pids)} process(es): {', '.join(pids)}")
        return 0

    document = json.loads(text)
    spans = document.get("spans", [])
    by_trace: dict[str, list] = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)
    wanted = [args.trace_id] if args.trace_id else sorted(by_trace)
    for trace_id in wanted:
        if trace_id not in by_trace:
            raise SystemExit(f"trace {trace_id!r} not in {args.path}")
        print(obs_trace.format_trace(trace_id, retained=by_trace[trace_id]))
    print(f"# {len(spans)} spans across {len(by_trace)} traces")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    spec = DATASETS[args.dataset]
    write_edge_list(
        graph,
        args.out,
        header=(
            f"analog of {args.dataset} (paper: {spec.paper_nodes} nodes, "
            f"{spec.paper_edges} edges) at scale {args.scale}"
        ),
    )
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "query": _command_query,
        "stats": _command_stats,
        "generate": _command_generate,
        "tune": _command_tune,
        "serve-bench": _command_bench,
        "shard-bench": _command_bench,
        "update-bench": _command_bench,
        "obs": _command_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
