"""Reusable output buffers for iterate loops.

Every CPI/TPA iteration writes one dense iterate the size of the operand —
``(n,)`` for a single query, ``(n, B)`` for a batch.  Allocating that
buffer per step costs page faults and memory-bandwidth churn that can
rival the SpMM itself on large graphs, so methods keep a
:class:`Workspace` and draw named buffers from it: the first request
allocates, subsequent requests with the same name and shape reuse.

Buffers are *retained* between queries (that is the point), which makes
them part of a method's resident footprint —
:meth:`~repro.method.PPRMethod.preprocessed_bytes` implementations add
:meth:`Workspace.nbytes` so the serving-memory figures stay honest.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """A pool of named, shape-keyed scratch arrays.

    Each name holds at most one buffer; requesting a different shape or
    dtype under the same name drops the old buffer and allocates anew (a
    batch-size change should not leak the previous batch's buffers).
    Contents are never zeroed here — callers own initialization.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def request(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: type | np.dtype = np.float64,
    ) -> np.ndarray:
        """Return the buffer registered under ``name``, (re)allocating
        when the requested shape or dtype differs from the retained one."""
        dtype = np.dtype(dtype)
        buffer = self._buffers.get(name)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[name] = buffer
        return buffer

    def pair(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: type | np.dtype = np.float64,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Two same-shaped buffers for ping-pong iterate loops."""
        return (
            self.request(f"{name}.0", shape, dtype),
            self.request(f"{name}.1", shape, dtype),
        )

    def nbytes(self) -> int:
        """Total bytes of all retained buffers."""
        return int(sum(buffer.nbytes for buffer in self._buffers.values()))

    def clear(self) -> None:
        """Drop every retained buffer."""
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workspace(buffers={len(self._buffers)}, nbytes={self.nbytes()})"
