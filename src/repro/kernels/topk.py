"""Top-k selection kernels — the ranking side of the serving hot path.

A top-k workload throws away almost everything the score pass computes:
of an ``(B, n)`` score matrix only ``B·k`` ids survive.  The selection
itself used to be a Python-level loop of per-row ``argpartition`` calls;
this module makes it a kernel like the SpMM:

* :func:`select_top_k` — the canonical single-row selection (score
  descending, ties broken by ascending node id, banned nodes excluded),
  ``O(n + k' log k')`` via ``argpartition``.  Accepts a ``scratch``
  buffer so batched callers stop allocating a masked copy per call.
* :func:`select_top_k_many` — the batched form: one call ranks every row
  of a ``(B, n)`` matrix into a ``(B, k)`` id matrix padded with ``-1``.
  On the Numba backend the rows run ``prange``-parallel with a bounded
  ``k``-element heap per row (no full-row copy, no ``-inf`` masking); the
  NumPy fallback reproduces the looped :func:`select_top_k` exactly.

Both forms implement the *same* ordering contract, and the suite holds
the compiled path to exact agreement with the looped reference
(including ban and tie cases).  Scores are assumed finite — RWR scores
always are.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.kernels.backend import _backend_module

__all__ = ["select_top_k", "select_top_k_many"]


def select_top_k(
    scores: np.ndarray,
    k: int,
    banned: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Indices of the ``k`` largest entries of ``scores``, best first.

    Equivalent to ``np.argsort(-scores, kind="stable")`` filtered by
    ``banned`` and truncated to ``k`` — ties broken by ascending node id —
    but runs in ``O(n + k' log k')`` via :func:`np.argpartition` instead of
    sorting all ``n`` nodes (``k'`` is ``k`` plus boundary ties).

    Parameters
    ----------
    scores:
        Length-``n`` score vector.
    k:
        Result size; fewer indices are returned when ``banned`` leaves
        fewer than ``k`` nodes.
    banned:
        Optional boolean mask of nodes excluded from the ranking.
    scratch:
        Optional length-``n`` float64 buffer receiving the masked score
        copy when ``banned`` is active — callers ranking many rows (the
        batched serving path) pass a retained workspace buffer instead of
        allocating a fresh copy per call.  Contents are clobbered.
    """
    scores = np.asarray(scores)
    n = scores.size
    if banned is not None and banned.any():
        if (
            scratch is not None
            and scratch.shape == (n,)
            and scratch.dtype == np.float64
            and scratch is not scores
        ):
            masked = scratch
            # Any needed widening (e.g. float32 iterates) is fused into
            # this copy — the serving path stays allocation-free.
            np.copyto(masked, scores, casting="unsafe")
        elif scores.dtype == np.float64:
            masked = scores.copy()
        else:
            masked = scores.astype(np.float64)
        masked[banned] = -np.inf
        available = n - int(np.count_nonzero(banned))
    else:
        masked = (
            scores if scores.dtype.kind == "f"
            else scores.astype(np.float64)
        )
        available = n
    kk = min(int(k), available)
    if kk <= 0:
        return np.empty(0, dtype=np.int64)
    if kk < n:
        # Value of the kk-th largest entry; every banned entry is -inf and
        # therefore below it, so the candidate set never contains one.
        kth = np.partition(masked, n - kk)[n - kk]
        candidates = np.flatnonzero(masked >= kth)
    else:
        candidates = np.flatnonzero(masked > -np.inf)
    # Primary key: score descending; secondary: node id ascending — the
    # exact order of a stable argsort over the negated scores.
    order = np.lexsort((candidates, -masked[candidates]))
    return candidates[order[:kk]].astype(np.int64, copy=False)


def select_top_k_many(
    scores: np.ndarray,
    k: int,
    banned: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise top-``k`` of a ``(B, n)`` score matrix, best first per row.

    Row ``b`` of the returned ``(B, k)`` ``int64`` matrix equals
    ``select_top_k(scores[b], k, banned[b])`` padded with ``-1`` — the
    contract :meth:`repro.method.PPRMethod.top_k_many` has always had,
    now computed by one batch-parallel kernel call instead of a Python
    loop over rows.

    Parameters
    ----------
    scores:
        ``(B, n)`` float score matrix (C-contiguous rows preferred).
    k:
        Result width; rows with fewer than ``k`` unbanned nodes are
        padded with ``-1``.
    banned:
        Optional ``(B, n)`` boolean exclusion mask, one row per query.
    out:
        Optional ``(B, k)`` C-contiguous ``int64`` result buffer; it is
        overwritten and returned.
    """
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ParameterError(
            f"scores must be a (B, n) matrix, got shape {scores.shape}"
        )
    k = int(k)
    if k < 1:
        raise ParameterError("k must be at least 1")
    rows, n = scores.shape
    if banned is not None:
        banned = np.asarray(banned)
        if banned.shape != scores.shape or banned.dtype != np.bool_:
            raise ParameterError(
                f"banned must be a boolean mask of shape {scores.shape}; "
                f"got shape {banned.shape} dtype {banned.dtype}"
            )
    if out is None:
        out = np.empty((rows, k), dtype=np.int64)
    elif (
        out.shape != (rows, k)
        or out.dtype != np.int64
        or not out.flags.c_contiguous
    ):
        raise ParameterError(
            f"out buffer must be C-contiguous int64 of shape {(rows, k)}; "
            f"got shape {out.shape} dtype {out.dtype}"
        )
    if rows == 0:
        return out

    impl = getattr(_backend_module(), "select_top_k_many", None)
    if impl is not None:
        if scores.dtype not in (np.float32, np.float64):
            scores = scores.astype(np.float64)
        # Any layout is accepted: transposed iterate buffers (the shape
        # cpi_many returns) stream fine row-parallel — no full-matrix
        # copy just to make rows contiguous.
        mask = (
            banned if banned is not None else np.empty((0, 0), dtype=np.bool_)
        )
        impl(scores, mask, banned is not None, k, out)
        return out

    # NumPy fallback: the looped reference, with one reused masked-copy
    # scratch for the whole batch instead of an allocation per row.
    scratch = np.empty(n, dtype=np.float64)
    for b in range(rows):
        picks = select_top_k(
            scores[b], k, None if banned is None else banned[b], scratch=scratch
        )
        out[b, : picks.size] = picks
        out[b, picks.size :] = -1
    return out
