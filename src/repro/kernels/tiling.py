"""Hub-aware row tiling for the blocked SpMM.

The batched online phase is one big CSR SpMM per iteration: every output
row gathers ``x[indices[j]]`` rows that are ``B`` doubles wide.  On a
SlashBurn-reordered operator those gathers split into two populations —
a short, extremely hot *hub band* (rows every other row links to) and a
near-block-diagonal *spoke* remainder whose gathers stay inside the
row's own community block.  Executing the SpMM tile by tile keeps each
tile's working set (its slice of ``out`` plus the ``x`` rows it gathers)
cache resident instead of streaming the whole ``(n, B)`` operand per
thread, and gives the parallel backend scheduling units that are large
enough to amortize dispatch but small enough to balance skewed rows.

:class:`RowTiling` is a pure execution schedule: tiles partition the row
range, every row is computed exactly as in the untiled kernel, and the
per-row accumulation order is unchanged — tiled and untiled products are
**bitwise identical** on both backends (asserted by the test suite).

Configuration
-------------
``REPRO_KERNEL_TILE`` (environment, read once at import) or
:func:`set_tile_rows` (API) fix the spoke-tile height; unset/``auto``
uses :data:`DEFAULT_TILE_ROWS`.  The active value is part of
:func:`repro.kernels.cache_token` so configuration switches are visible
to every cache keyed on the numeric setup.

The tiling itself is built per operator with :func:`row_tiling`; the
:class:`~repro.kernels.reorder.LocalityReordering` builds one aligned to
its SlashBurn hub band and community blocks, and the Engine attaches it
to the serving graph automatically when ``reorder="slashburn"`` is
active.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "DEFAULT_TILE_ROWS",
    "RowTiling",
    "row_tiling",
    "set_tile_rows",
    "tile_rows",
    "tile_token",
]

#: Spoke-tile height used when no explicit configuration is active.  At a
#: batch width of 64 float64 columns a 4096-row tile writes a 2 MiB output
#: slice — L2-sized on common server parts, so the tile's output plus the
#: hot hub rows of ``x`` it gathers stay cache resident.
DEFAULT_TILE_ROWS = 4096


def _resolve_env_tile() -> int | None:
    requested = os.environ.get("REPRO_KERNEL_TILE", "").strip().lower()
    if not requested or requested == "auto":
        return None
    try:
        value = int(requested)
    except ValueError:
        value = 0
    if value < 1:
        warnings.warn(
            f"REPRO_KERNEL_TILE={requested!r} is not a positive integer "
            "or 'auto'; using the auto tile height",
            stacklevel=2,
        )
        return None
    return value


#: ``None`` means auto (:data:`DEFAULT_TILE_ROWS`).
_tile_rows: int | None = _resolve_env_tile()


def tile_rows() -> int:
    """The active spoke-tile height in rows."""
    return DEFAULT_TILE_ROWS if _tile_rows is None else _tile_rows


def set_tile_rows(rows: int | None) -> int | None:
    """Set the spoke-tile height; returns the previous explicit setting.

    ``rows`` must be a positive integer, or ``None``/``"auto"`` to return
    to the auto default.  Tilings already built by :func:`row_tiling`
    keep the height they were built with; rebuild them (e.g. construct a
    new Engine) to pick up the change.  :func:`repro.kernels.cache_token`
    reflects the new value immediately.
    """
    global _tile_rows
    previous = _tile_rows
    if rows is None or rows == "auto":
        _tile_rows = None
        return previous
    rows = int(rows)
    if rows < 1:
        raise ParameterError(f"tile height must be a positive row count, got {rows}")
    _tile_rows = rows
    return previous


def tile_token() -> str:
    """The tiling-configuration component of :func:`repro.kernels.cache_token`."""
    return "tile-auto" if _tile_rows is None else f"tile-{_tile_rows}"


@dataclass(frozen=True)
class RowTiling:
    """A partition of an operator's row range into execution tiles.

    Attributes
    ----------
    boundaries:
        ``int64`` array ``[0, b_1, ..., n]``; tile ``t`` covers rows
        ``boundaries[t]..boundaries[t+1]-1``.  Strictly increasing.
    num_hubs:
        Size of the hub prefix the tiling was built around (``0`` for an
        unordered operator).  A boundary always falls on ``num_hubs`` so
        no tile straddles the hub/spoke frontier.
    tile_height:
        The target spoke-tile height the boundaries were packed to.
    """

    boundaries: np.ndarray
    num_hubs: int = 0
    tile_height: int = field(default=DEFAULT_TILE_ROWS)

    def __post_init__(self) -> None:
        bounds = np.ascontiguousarray(self.boundaries, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2 or bounds[0] != 0:
            raise ParameterError(
                "tile boundaries must be a 1-D int array starting at 0"
            )
        if not (np.diff(bounds) > 0).all():
            raise ParameterError("tile boundaries must be strictly increasing")
        object.__setattr__(self, "boundaries", bounds)

    @property
    def num_rows(self) -> int:
        return int(self.boundaries[-1])

    @property
    def num_tiles(self) -> int:
        return int(self.boundaries.size - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RowTiling(rows={self.num_rows}, tiles={self.num_tiles}, "
            f"hubs={self.num_hubs}, height={self.tile_height})"
        )


def _pack_range(
    start: int, end: int, height: int, edges: np.ndarray | None
) -> list[int]:
    """Boundaries partitioning ``[start, end)`` into tiles of at most
    ``height`` rows, preferring to close each tile on one of ``edges``
    (ascending candidate cut points) so tiles align to natural block
    frontiers instead of splitting them."""
    bounds: list[int] = []
    position = start
    while position < end:
        limit = position + height
        if limit >= end:
            bounds.append(end)
            break
        cut = limit
        if edges is not None and edges.size:
            # Largest candidate edge inside (position, limit]: cutting
            # there keeps whole community blocks inside one tile.
            index = int(np.searchsorted(edges, limit, side="right")) - 1
            if index >= 0 and edges[index] > position:
                cut = int(edges[index])
        bounds.append(cut)
        position = cut
    return bounds


def row_tiling(
    num_rows: int,
    num_hubs: int = 0,
    tile_height: int | None = None,
    block_starts: np.ndarray | None = None,
) -> RowTiling:
    """Build a hub-aware :class:`RowTiling` for an ``num_rows``-row operator.

    Parameters
    ----------
    num_rows:
        Row count of the operator the tiling will execute.
    num_hubs:
        Size of the hub prefix (rows ``0..num_hubs-1``).  The hub band is
        chunked separately and a tile boundary is pinned at ``num_hubs``.
    tile_height:
        Explicit tile height; defaults to the configured
        :func:`tile_rows` (``REPRO_KERNEL_TILE`` / :func:`set_tile_rows`).
    block_starts:
        Optional ascending first-row indices of the spoke community
        blocks (SlashBurn's near-block-diagonal remainder).  Spoke tiles
        then close on block frontiers whenever one lies within the tile
        height, so a tile's gathers stay inside its own blocks plus the
        hub band; blocks taller than the tile height are split.
    """
    if num_rows < 1:
        raise ParameterError("row_tiling needs at least one row")
    if not 0 <= num_hubs <= num_rows:
        raise ParameterError(
            f"num_hubs must lie in [0, {num_rows}], got {num_hubs}"
        )
    height = tile_rows() if tile_height is None else int(tile_height)
    if height < 1:
        raise ParameterError(f"tile height must be positive, got {height}")

    edges = None
    if block_starts is not None:
        edges = np.unique(np.asarray(block_starts, dtype=np.int64))
        edges = edges[(edges > num_hubs) & (edges < num_rows)]

    bounds = [0]
    if num_hubs:
        bounds.extend(_pack_range(0, num_hubs, height, None))
    if num_hubs < num_rows:
        bounds.extend(_pack_range(num_hubs, num_rows, height, edges))
    return RowTiling(
        boundaries=np.asarray(bounds, dtype=np.int64),
        num_hubs=int(num_hubs),
        tile_height=height,
    )
