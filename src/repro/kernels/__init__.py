"""Compiled sparse-kernel layer: CSR-native SpMV/SpMM under every hot loop.

Everything the paper's method does — CPI iterates (Algorithm 1), TPA's
family/neighbor/stranger phases (Algorithms 2–3), and every
power-iteration baseline — bottoms out in repeated sparse matrix–vector
(SpMV) or matrix–matrix (SpMM) products with the transition operator
``Ã^T``.  This package is the single place those products happen:

* :func:`spmv` / :func:`spmm` — CSR-native products with caller-supplied
  output buffers (no per-iteration allocation);
* :func:`spmm_tiled` — the same product executed over a hub-aware
  :class:`~repro.kernels.tiling.RowTiling` (bitwise identical to
  :func:`spmm`; tuned by ``REPRO_KERNEL_TILE`` / :func:`set_tile_rows`
  and auto-enabled by ``Engine(..., reorder="slashburn")``);
* :func:`select_top_k` / :func:`select_top_k_many` — the ranking
  primitives (:mod:`repro.kernels.topk`): batch-parallel bounded-heap
  top-k selection on the Numba backend, the looped ``argpartition``
  reference on NumPy — identical ban and tie semantics;
* two interchangeable backends (see :mod:`repro.kernels.backend`):
  a Numba-JIT, ``prange``-parallel implementation auto-selected at import
  when Numba is installed, and a pure NumPy/SciPy fallback that is
  bitwise identical to the pre-kernel ``operator @ x`` code path;
* :class:`Workspace` — named, retained iterate buffers for ping-pong
  loops (counted in ``preprocessed_bytes`` so memory figures stay honest);
* :func:`locality_reordering` — the SlashBurn row reordering that makes
  the blocked SpMM cache friendly (``Engine(..., reorder="slashburn")``);
* JIT'd queue loops for forward/backward push, used automatically by
  :mod:`repro.baselines` when the Numba backend is active.

Backend selection
-----------------
``REPRO_KERNEL=numba|numpy`` (environment) or :func:`set_backend` (API).
Auto-selection prefers Numba when importable.  The NumPy fallback never
changes results: it calls the very SciPy kernels ``csr_array @ x``
dispatches to.  The Numba backend accumulates each output row in the same
stored-index order, and the suite holds it to ``<= 1e-12`` agreement.

float32 compute policy (opt-in)
-------------------------------
``REPRO_KERNEL_DTYPE=float32`` or ``set_compute_dtype("float32")`` makes
the iterate loops allocate, propagate, and accumulate in single
precision, halving memory traffic — usually a ~1.5–2x SpMM speedup on
bandwidth-bound graphs.  Error impact: CPI sums ``O(log(1/tol)/c)``
nonnegative iterates, so roundoff grows only additively; measured against
the float64 path the L1 gap stays below ``~1e-5`` on the test graphs
(unit-tested bound ``5e-5``), i.e. orders of magnitude below TPA's
approximation error ``2(1-c)^S`` (≈ 0.89 at the paper's S=5 defaults) and
below typical recall@k sensitivity.  Use float64 (default) when scores
feed error-bound experiments (Table III) or convergence studies with
``tol < 1e-6`` — a float32 iterate cannot certify residuals near machine
epsilon.  Caches must key on :func:`cache_token`, which names the active
backend, tile configuration, shard annotation, and compute dtype; the
Engine's LRU does.

Benchmark trajectory
--------------------
``python benchmarks/record.py`` appends one JSON object per line to
``BENCH_kernels.json`` at the repo root: commit, backend, dtype, graph
size, SpMV/SpMM wall-times, and end-to-end batched queries/sec.  Compare
the ``queries_per_second_batched`` field across commits (same
``backend`` and ``graph`` fields) to read the perf trajectory;
``spmm_seconds`` isolates kernel-level wins from engine-level ones.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.kernels.backend import (
    available_backends,
    cache_token,
    compute_dtype,
    get_backend,
    kernel_threads,
    num_threads,
    numba_available,
    set_backend,
    set_compute_dtype,
    set_num_threads,
    set_shard_annotation,
    shard_annotation,
    _backend_module,
)
from repro.kernels.reorder import LocalityReordering, locality_reordering
from repro.kernels.tiling import (
    DEFAULT_TILE_ROWS,
    RowTiling,
    row_tiling,
    set_tile_rows,
    tile_rows,
)
from repro.kernels.topk import select_top_k, select_top_k_many
from repro.kernels.workspace import Workspace

__all__ = [
    "spmv",
    "spmm",
    "spmm_tiled",
    "scaled_values",
    "select_top_k",
    "select_top_k_many",
    "available_backends",
    "get_backend",
    "set_backend",
    "numba_available",
    "compute_dtype",
    "set_compute_dtype",
    "cache_token",
    "shard_annotation",
    "set_shard_annotation",
    "num_threads",
    "set_num_threads",
    "kernel_threads",
    "Workspace",
    "LocalityReordering",
    "locality_reordering",
    "DEFAULT_TILE_ROWS",
    "RowTiling",
    "row_tiling",
    "set_tile_rows",
    "tile_rows",
    "forward_push_loop",
    "backward_push_loop",
]


def scaled_values(
    data: np.ndarray, decay: float | None, dtype
) -> np.ndarray:
    """The operator value array, decay-folded and cast: **scale, then
    cast**.

    This exact operation order is the bitwise contract every decayed
    operator copy in the codebase shares — the in-memory
    :meth:`Graph._operator_for` cache, the :class:`DiskGraph` streamed
    stripes, and the shard workers' scaled stripes all build their
    values through this one helper, so their products agree bit for
    bit.  ``decay=None`` means unscaled; the input array is returned
    as-is when no scaling or cast is needed, otherwise exactly one new
    array is produced.
    """
    scaled = data if decay is None else data * decay
    dtype = np.dtype(dtype)
    if scaled.dtype != dtype:
        scaled = scaled.astype(dtype, copy=scaled is data)
    return scaled


def _prepare_operand(matrix, x: np.ndarray, ndim: int) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != ndim:
        raise ParameterError(
            f"operand must be {ndim}-D, got shape {x.shape}"
        )
    if x.shape[0] != matrix.shape[1]:
        raise ParameterError(
            f"operand leading dimension {x.shape[0]} does not match "
            f"matrix shape {matrix.shape}"
        )
    if x.dtype != matrix.data.dtype:
        x = x.astype(matrix.data.dtype)
    return np.ascontiguousarray(x)


def _prepare_out(
    matrix, x: np.ndarray, out: np.ndarray | None, shape: tuple[int, ...]
) -> np.ndarray:
    if out is None:
        return np.empty(shape, dtype=matrix.data.dtype)
    if out.shape != shape or out.dtype != matrix.data.dtype:
        raise ParameterError(
            f"out buffer has shape {out.shape} dtype {out.dtype}; "
            f"expected shape {shape} dtype {matrix.data.dtype}"
        )
    if not out.flags.c_contiguous:
        raise ParameterError("out buffer must be C-contiguous")
    if np.may_share_memory(out, x):
        raise ParameterError("out buffer must not alias the operand")
    return out


def spmv(matrix, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``matrix @ x`` for a CSR matrix and 1-D ``x`` via the active backend.

    ``out``, when given, must be a C-contiguous vector of the matrix's
    dtype and row count; it is overwritten and returned.  The operand is
    cast to the matrix dtype when needed (one copy).
    """
    x = _prepare_operand(matrix, x, 1)
    out = _prepare_out(matrix, x, out, (matrix.shape[0],))
    return _backend_module().spmv(matrix, x, out)


def spmm(matrix, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``matrix @ x`` for a CSR matrix and ``(n, B)`` dense ``x``.

    The blocked product behind every batched online phase: one kernel
    call advances the whole seed batch.  Same ``out`` contract as
    :func:`spmv`.
    """
    x = _prepare_operand(matrix, x, 2)
    out = _prepare_out(matrix, x, out, (matrix.shape[0], x.shape[1]))
    return _backend_module().spmm(matrix, x, out)


def spmm_tiled(
    matrix,
    x: np.ndarray,
    out: np.ndarray | None = None,
    tiling: "RowTiling | None" = None,
) -> np.ndarray:
    """:func:`spmm` executed tile by tile along the rows of ``matrix``.

    ``tiling`` fixes the execution schedule (see
    :mod:`repro.kernels.tiling`); ``None`` builds a plain equal-height
    tiling from the configured tile height.  Per-row arithmetic is
    unchanged, so the result is **bitwise identical** to :func:`spmm` on
    both backends — the tiling only bounds each pass's working set, which
    is where the win comes from on a SlashBurn-reordered operator (hot
    hub band + block-local gathers).  Same ``out`` contract as
    :func:`spmv`.
    """
    x = _prepare_operand(matrix, x, 2)
    out = _prepare_out(matrix, x, out, (matrix.shape[0], x.shape[1]))
    if tiling is None:
        tiling = row_tiling(matrix.shape[0])
    elif tiling.num_rows != matrix.shape[0]:
        raise ParameterError(
            f"tiling covers {tiling.num_rows} rows but the matrix has "
            f"{matrix.shape[0]}"
        )
    module = _backend_module()
    impl = getattr(module, "spmm_tiled", None)
    if impl is None:  # pragma: no cover - every shipped backend has one
        return module.spmm(matrix, x, out)
    return impl(matrix, x, out, tiling.boundaries)


def forward_push_loop(*args) -> int | None:
    """Run the forward-push queue loop on the active backend.

    Returns the push count (``-1`` for a ``max_pushes`` overrun) or
    ``None`` when the active backend has no compiled loop — the caller
    runs its reference Python implementation instead.
    """
    loop = getattr(_backend_module(), "forward_push_loop", None)
    if loop is None:
        return None
    return loop(*args)


def backward_push_loop(*args) -> int | None:
    """Backward-push counterpart of :func:`forward_push_loop`."""
    loop = getattr(_backend_module(), "backward_push_loop", None)
    if loop is None:
        return None
    return loop(*args)
