"""Pure NumPy/SciPy implementation of the CSR kernels.

This backend IS the pre-kernel-layer code path: SciPy's C kernels
``csr_matvec`` / ``csr_matvecs`` are exactly what ``csr_array @ x``
dispatches to, so routing a hot loop through here changes *nothing* about
its floating-point operations — results are bitwise identical to the
original ``operator @ x`` expressions (the equivalence the test suite
asserts).  Calling the private kernels directly buys one thing ``@``
cannot offer: accumulation into a caller-supplied output buffer, so
iterate loops stop allocating a fresh multi-megabyte matrix per step.

When the private ``scipy.sparse._sparsetools`` layout ever changes, the
public operator is used instead (identical numerics, one extra
allocation when no ``out`` is supplied — and one copy when it is).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - import guard
    from scipy.sparse._sparsetools import csr_matvec as _csr_matvec
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - older/newer scipy layouts
    _csr_matvec = None
    _csr_matvecs = None

name = "numpy"

#: Rough concurrency of the backend (the NumPy fallback is single-threaded).
num_threads = 1


def spmv(matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out <- matrix @ x`` for CSR ``matrix`` and a 1-D operand."""
    if _csr_matvec is None:
        np.copyto(out, matrix @ x)
        return out
    out.fill(0.0)  # the scipy kernel accumulates into its output
    n_row, n_col = matrix.shape
    _csr_matvec(
        n_row, n_col, matrix.indptr, matrix.indices, matrix.data, x, out
    )
    return out


def spmm(matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out <- matrix @ x`` for CSR ``matrix`` and a C-contiguous
    ``(n, B)`` operand."""
    if _csr_matvecs is None:
        np.copyto(out, matrix @ x)
        return out
    out.fill(0.0)
    n_row, n_col = matrix.shape
    _csr_matvecs(
        n_row, n_col, x.shape[1],
        matrix.indptr, matrix.indices, matrix.data,
        x.ravel(), out.ravel(),
    )
    return out


def spmm_tiled(
    matrix, x: np.ndarray, out: np.ndarray, boundaries: np.ndarray
) -> np.ndarray:
    """``out <- matrix @ x`` executed tile by tile.

    Each tile is one ``csr_matvecs`` call over a zero-copy row slice of
    the operator (indptr rebased by the tile's first nonzero position).
    Rows are computed independently by the scipy kernel, so the tiled
    product is bitwise identical to :func:`spmm` — the tiling only
    bounds each pass's working set.
    """
    if _csr_matvecs is None:
        np.copyto(out, matrix @ x)
        return out
    n_col = matrix.shape[1]
    width = x.shape[1]
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    x_flat = x.ravel()
    for t in range(boundaries.size - 1):
        r0, r1 = int(boundaries[t]), int(boundaries[t + 1])
        p0, p1 = int(indptr[r0]), int(indptr[r1])
        tile_out = out[r0:r1]
        tile_out.fill(0.0)
        _csr_matvecs(
            r1 - r0, n_col, width,
            indptr[r0 : r1 + 1] - p0, indices[p0:p1], data[p0:p1],
            x_flat, tile_out.ravel(),
        )
    return out


#: The bounded-heap batched selection only exists compiled; the dispatcher
#: in ``repro.kernels.topk`` runs the looped ``select_top_k`` reference
#: when the active backend signals None here.
select_top_k_many = None

#: The queue-based push loops have no NumPy vectorization; the reference
#: Python implementations in ``repro.baselines.forward_push`` /
#: ``backward_push`` are this backend's implementation, signalled by None.
forward_push_loop = None
backward_push_loop = None
