"""Backend selection and compute-dtype policy for the sparse-kernel layer.

The kernel layer offers two implementations of the CSR primitives:

``"numba"``
    JIT-compiled, ``prange``-parallel kernels (:mod:`._numba_backend`).
    Auto-selected at import when Numba is installed.
``"numpy"``
    A pure NumPy/SciPy fallback (:mod:`._numpy_backend`) that is *bitwise
    identical* to ``csr_array @ x`` — the code path every hot loop used
    before the kernel layer existed.

Selection happens once at import (``REPRO_KERNEL=numba|numpy`` overrides
the auto-detection) and can be changed at runtime with :func:`set_backend`.
Detection uses ``importlib.util.find_spec`` so importing this module stays
cheap; the Numba module itself is only imported — and its kernels only
compiled — on first use.

The *compute dtype* policy lives here too: ``float64`` (default, exact) or
the opt-in ``float32`` (``REPRO_KERNEL_DTYPE=float32`` or
:func:`set_compute_dtype`).  See :mod:`repro.kernels` for the documented
error impact.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import warnings
from types import ModuleType

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "available_backends",
    "get_backend",
    "set_backend",
    "numba_available",
    "compute_dtype",
    "set_compute_dtype",
    "cache_token",
    "shard_annotation",
    "set_shard_annotation",
    "num_threads",
    "set_num_threads",
    "kernel_threads",
]

_BACKEND_NAMES = ("numba", "numpy")

#: Detected once at import; tests monkeypatch this to simulate a missing
#: Numba installation (the forced-fallback path).
_NUMBA_INSTALLED = importlib.util.find_spec("numba") is not None

_DTYPES = {"float32": np.float32, "float64": np.float64}


def numba_available() -> bool:
    """Whether the Numba backend can be activated in this environment."""
    return _NUMBA_INSTALLED


def available_backends() -> tuple[str, ...]:
    """Backends usable in this environment, preferred first."""
    if _NUMBA_INSTALLED:
        return ("numba", "numpy")
    return ("numpy",)


def _auto_backend() -> str:
    return "numba" if _NUMBA_INSTALLED else "numpy"


def _resolve_env_backend() -> str:
    requested = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if not requested or requested == "auto":
        return _auto_backend()
    if requested not in _BACKEND_NAMES:
        warnings.warn(
            f"REPRO_KERNEL={requested!r} is not one of {_BACKEND_NAMES}; "
            "falling back to auto-selection",
            stacklevel=2,
        )
        return _auto_backend()
    if requested == "numba" and not _NUMBA_INSTALLED:
        warnings.warn(
            "REPRO_KERNEL=numba requested but Numba is not importable; "
            "using the NumPy fallback",
            stacklevel=2,
        )
        return "numpy"
    return requested


_active_backend: str = _resolve_env_backend()


def _resolve_env_dtype() -> type:
    requested = os.environ.get("REPRO_KERNEL_DTYPE", "").strip().lower()
    if not requested:
        return np.float64
    if requested not in _DTYPES:
        warnings.warn(
            f"REPRO_KERNEL_DTYPE={requested!r} is not one of "
            f"{tuple(_DTYPES)}; keeping float64",
            stacklevel=2,
        )
        return np.float64
    return _DTYPES[requested]


_compute_dtype: type = _resolve_env_dtype()


def _resolve_env_threads() -> int | None:
    requested = os.environ.get("REPRO_KERNEL_THREADS", "").strip().lower()
    if not requested or requested == "auto":
        return None
    try:
        value = int(requested)
    except ValueError:
        value = 0
    if value < 1:
        warnings.warn(
            f"REPRO_KERNEL_THREADS={requested!r} is not a positive integer "
            "or 'auto'; using the backend default",
            stacklevel=2,
        )
        return None
    return value


#: Requested kernel thread count; ``None`` means backend default (Numba's
#: full launch pool).  Deliberately **not** part of :func:`cache_token`:
#: the kernels are row parallel with a fixed per-row accumulation order,
#: so results are bitwise identical across thread counts — the test suite
#: asserts that invariant rather than the token recording the count.
_kernel_threads: int | None = _resolve_env_threads()


def kernel_threads() -> int | None:
    """The configured thread-count policy (``None`` = backend default)."""
    return _kernel_threads


def num_threads() -> int:
    """Thread count the active backend actually runs with.

    The NumPy backend is always 1; the Numba backend reports its live
    pool size (the configured policy clamped to the pool Numba launched
    with — the pool cannot grow after import).
    """
    return int(getattr(_backend_module(), "num_threads", 1))


def set_num_threads(count: int | None) -> int | None:
    """Set the kernel thread-count policy; returns the previous setting.

    ``count`` must be a positive integer, or ``None``/``"auto"`` to
    restore the backend default.  The policy caps the Numba backend's
    ``prange`` pool (applied immediately when Numba is active, or on
    first activation otherwise); the single-threaded NumPy backend
    records but ignores it.  Thread count never changes results — see
    :data:`_kernel_threads` — so this setting is absent from
    :func:`cache_token` by design.
    """
    global _kernel_threads
    previous = _kernel_threads
    if count is None or count == "auto":
        _kernel_threads = None
    else:
        count = int(count)
        if count < 1:
            raise ParameterError(
                f"kernel thread count must be positive, got {count}"
            )
        _kernel_threads = count
    if _numba_module is not None:
        _numba_module.set_num_threads(_kernel_threads)
    return previous


def get_backend() -> str:
    """Name of the active backend (``"numba"`` or ``"numpy"``)."""
    return _active_backend


def set_backend(name: str | None) -> str:
    """Select the kernel backend; returns the previously active name.

    ``name`` may be ``"numba"``, ``"numpy"``, or ``"auto"``/``None`` to
    re-run the import-time selection (``REPRO_KERNEL`` included, so a
    forced-fallback environment stays forced).  Requesting ``"numba"``
    when Numba is not importable raises
    :class:`~repro.exceptions.ParameterError` (unlike the env-var route,
    which warns and falls back — an explicit API call deserves a hard
    error).
    """
    global _active_backend
    previous = _active_backend
    if name is None or name == "auto":
        _active_backend = _resolve_env_backend()
        return previous
    if name not in _BACKEND_NAMES:
        raise ParameterError(
            f"unknown kernel backend {name!r}; choose from {_BACKEND_NAMES}"
        )
    if name == "numba" and not _NUMBA_INSTALLED:
        raise ParameterError(
            "the numba backend was requested but Numba is not installed; "
            "use the 'numpy' fallback or install numba"
        )
    _active_backend = name
    return previous


def compute_dtype() -> type:
    """The dtype iterate loops allocate and accumulate in
    (``numpy.float64`` unless the float32 policy was opted into)."""
    return _compute_dtype


def set_compute_dtype(dtype: str | type | np.dtype) -> type:
    """Set the compute dtype policy; returns the previous dtype.

    Accepts ``"float32"`` / ``"float64"`` or the NumPy dtypes themselves.
    ``float32`` halves iterate-buffer traffic at a documented accuracy
    cost (see the :mod:`repro.kernels` package docstring); callers that
    cache results keyed by numeric configuration must include
    :func:`cache_token` in their keys.
    """
    global _compute_dtype
    key = np.dtype(dtype).name
    if key not in _DTYPES:
        raise ParameterError(
            f"compute dtype must be float32 or float64, got {key!r}"
        )
    previous = _compute_dtype
    _compute_dtype = _DTYPES[key]
    return previous


#: Shard annotation of this process, or ``None`` outside shard workers.
_shard_annotation: str | None = None


def shard_annotation() -> str | None:
    """This process's shard annotation (``None`` in ordinary processes).

    :class:`repro.sharding.ShardWorker` processes stamp themselves with
    ``"<shard>/<num_shards>"`` at startup, so every kernel product — and
    every :func:`cache_token` — computed inside a worker names the row
    stripe it ran on.
    """
    return _shard_annotation


def set_shard_annotation(tag: str | None) -> str | None:
    """Set the process-wide shard annotation; returns the previous one.

    Sharded execution is bitwise identical to the single-process product
    by contract (row stripes change the schedule, not the per-row
    arithmetic), so the annotation — like the tile component — records
    *how* results were produced rather than gating their reuse.
    """
    global _shard_annotation
    previous = _shard_annotation
    _shard_annotation = None if tag is None else str(tag)
    return previous


def cache_token(graph=None) -> str:
    """Opaque token identifying the numeric configuration of results.

    Two runs with equal tokens compute with the same backend, tiling
    configuration, sharding, *graph generation*, and dtype, so their
    score vectors are interchangeable; score caches (e.g. the
    :class:`~repro.engine.Engine` LRU) must key on this so a float32 run
    never serves cached float64 vectors (or vice versa).  The tile and
    shard components (see :mod:`repro.kernels.tiling` and
    :mod:`repro.sharding`) keep caches honest about *how* results were
    produced even though tiled, sharded, and plain products are bitwise
    identical by contract.

    ``graph`` optionally supplies the substrate results were computed
    on.  A static graph (or ``None``) contributes the constant
    ``graph-static`` component; a mutable substrate exposing
    ``epoch_token()`` (:class:`repro.dynamic.DynamicGraph`) contributes
    ``graph-<epoch_token>``, which changes on **every** mutation and
    compaction — so a mutated graph can never hit a pre-update cache
    entry.  While mutations are pending the epoch token carries an
    ``~overlay-1e-12`` suffix naming the documented overlay accuracy
    tier (:data:`repro.dynamic.OVERLAY_TOLERANCE`), the same way the
    dtype component already names the float32 tier.
    """
    from repro.kernels.tiling import tile_token

    shard = "shard-none" if _shard_annotation is None else (
        f"shard-{_shard_annotation}"
    )
    epoch = getattr(graph, "epoch_token", None)
    generation = "graph-static" if epoch is None else f"graph-{epoch()}"
    return (
        f"{_active_backend}:{tile_token()}:{shard}:{generation}:"
        f"{np.dtype(_compute_dtype).name}"
    )


_numba_module: ModuleType | None = None


def _backend_module() -> ModuleType:
    """The implementation module of the active backend (lazy import)."""
    global _numba_module
    if _active_backend == "numba":
        if _numba_module is None:
            _numba_module = importlib.import_module(
                "repro.kernels._numba_backend"
            )
            if _kernel_threads is not None:
                _numba_module.set_num_threads(_kernel_threads)
        return _numba_module
    from repro.kernels import _numpy_backend

    return _numpy_backend
