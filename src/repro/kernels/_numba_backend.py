"""Numba-JIT, thread-parallel implementation of the CSR kernels.

Row-parallel SpMV/SpMM: CSR rows partition the output, so ``prange`` over
rows needs no atomics and no reduction — each thread owns a disjoint slice
of ``out``.  Within a row, nonzeros accumulate in stored index order,
which is the same order SciPy's ``csr_matvec(s)`` kernels use; for float64
operands the two backends therefore agree to the last ulp in practice (the
test suite asserts ≤ 1e-12, the contract we document).

The skewed degree distributions of real random-walk graphs make static
row-blocking lopsided (one hub row can hold 1% of all nonzeros), so the
kernels run under Numba's default dynamic ``prange`` scheduling rather
than a hand-rolled row partition.  Pair with the SlashBurn locality
reordering (:mod:`repro.kernels.reorder`) to keep each thread's column
accesses cache-resident for the blocked SpMM.

This module is imported lazily by :mod:`repro.kernels.backend` only when
the ``numba`` backend is active, so environments without Numba never pay
(or fail) the import.  Kernels compile on first call per dtype signature;
``cache=True`` persists the machine code next to the package for
subsequent processes.
"""

from __future__ import annotations

import numba
import numpy as np
from numba import njit, prange

name = "numba"

num_threads = int(numba.get_num_threads())


def set_num_threads(requested):
    """Apply a thread-count request; ``None`` restores the launch pool.

    Numba only accepts ``1..NUMBA_NUM_THREADS`` (the pool it launched
    with cannot grow after import), so requests are clamped into that
    range rather than rejected — an autotuned profile measured on a
    bigger machine must degrade gracefully on a smaller one.  Returns
    the count actually applied.
    """
    global num_threads
    limit = int(numba.config.NUMBA_NUM_THREADS)
    if requested is None:
        applied = limit
    else:
        applied = max(1, min(int(requested), limit))
    numba.set_num_threads(applied)
    num_threads = applied
    return applied


@njit(parallel=True, nogil=True, cache=True)
def _spmv(indptr, indices, data, x, out):  # pragma: no cover - JIT
    # Accumulate through out[i] so every partial sum rounds in the output
    # dtype — exactly what SciPy's csr_matvec and _spmm below do.  A
    # float64 register accumulator would round only once, which under the
    # float32 policy would break the bitwise single-vs-batch equivalence
    # (spmv feeds single-seed queries, spmm the batched ones).
    for i in prange(out.shape[0]):
        out[i] = 0.0
        for j in range(indptr[i], indptr[i + 1]):
            out[i] += data[j] * x[indices[j]]


@njit(parallel=True, nogil=True, cache=True)
def _spmm(indptr, indices, data, x, out):  # pragma: no cover - JIT
    width = x.shape[1]
    for i in prange(out.shape[0]):
        for k in range(width):
            out[i, k] = 0.0
        for j in range(indptr[i], indptr[i + 1]):
            value = data[j]
            column = indices[j]
            for k in range(width):
                out[i, k] += value * x[column, k]


@njit(parallel=True, nogil=True, cache=True)
def _spmm_tiled(indptr, indices, data, x, out, boundaries):  # pragma: no cover - JIT
    # Tile-parallel variant of _spmm: prange over row tiles instead of
    # rows.  Each row's accumulation is identical to _spmm's (same stored
    # index order, same output-dtype rounding), so the tiled product is
    # bitwise identical to the untiled one; the tiling only fixes the
    # traversal schedule so a tile's out slice plus the x rows it gathers
    # (hub band + its own community blocks under SlashBurn order) stay
    # cache resident, and gives the scheduler coarser, better-balanced
    # units than single skewed rows.
    width = x.shape[1]
    tiles = boundaries.shape[0] - 1
    for t in prange(tiles):
        for i in range(boundaries[t], boundaries[t + 1]):
            for k in range(width):
                out[i, k] = 0.0
            for j in range(indptr[i], indptr[i + 1]):
                value = data[j]
                column = indices[j]
                for k in range(width):
                    out[i, k] += value * x[column, k]


@njit(nogil=True, cache=True)
def _heap_worse(s_a, i_a, s_b, i_b):  # pragma: no cover - JIT
    # "a is worse than b" under the ranking order (score descending, ties
    # by ascending id): lower score, or equal score and higher id.  The
    # single definition of the tie-break contract for the heap kernels.
    return s_a < s_b or (s_a == s_b and i_a > i_b)


@njit(nogil=True, cache=True)
def _heap_sift_down(heap_s, heap_i, size):  # pragma: no cover - JIT
    # Restore the min-heap (root = worst kept entry) after replacing the
    # root; heap_s/heap_i[0:size] is otherwise heap-ordered.
    pos = 0
    while True:
        left = 2 * pos + 1
        if left >= size:
            break
        worst = left
        right = left + 1
        if right < size and _heap_worse(
            heap_s[right], heap_i[right], heap_s[left], heap_i[left]
        ):
            worst = right
        if _heap_worse(heap_s[worst], heap_i[worst], heap_s[pos], heap_i[pos]):
            heap_s[pos], heap_s[worst] = heap_s[worst], heap_s[pos]
            heap_i[pos], heap_i[worst] = heap_i[worst], heap_i[pos]
            pos = worst
        else:
            break


@njit(parallel=True, nogil=True, cache=True)
def _select_top_k_many(scores, banned, use_banned, k, out):  # pragma: no cover - JIT
    # Row-parallel bounded selection: each row keeps its k best candidates
    # in a binary min-heap whose root is the *worst* kept entry under the
    # ranking order (see _heap_worse).  A final in-place heapsort pops
    # the worst to the back repeatedly, so the row comes out best first —
    # exactly select_top_k's order.
    rows, n = scores.shape
    for b in prange(rows):
        heap_s = np.empty(k, np.float64)
        heap_i = np.empty(k, np.int64)
        size = 0
        for i in range(n):
            if use_banned and banned[b, i]:
                continue
            s = scores[b, i]
            if size < k:
                pos = size
                heap_s[pos] = s
                heap_i[pos] = i
                size += 1
                while pos > 0:  # sift up while worse than the parent
                    parent = (pos - 1) // 2
                    if _heap_worse(
                        heap_s[pos], heap_i[pos],
                        heap_s[parent], heap_i[parent],
                    ):
                        heap_s[pos], heap_s[parent] = heap_s[parent], heap_s[pos]
                        heap_i[pos], heap_i[parent] = heap_i[parent], heap_i[pos]
                        pos = parent
                    else:
                        break
            elif _heap_worse(heap_s[0], heap_i[0], s, i):
                # Beats the worst kept entry: replace the root, sift down.
                heap_s[0] = s
                heap_i[0] = i
                _heap_sift_down(heap_s, heap_i, size)
        # Heapsort: move the current worst to the back until sorted; the
        # kept entries end up best first in heap_s/heap_i[0:size].
        length = size
        while length > 1:
            length -= 1
            heap_s[0], heap_s[length] = heap_s[length], heap_s[0]
            heap_i[0], heap_i[length] = heap_i[length], heap_i[0]
            _heap_sift_down(heap_s, heap_i, length)
        for j in range(size):
            out[b, j] = heap_i[j]
        for j in range(size, k):
            out[b, j] = -1


def spmv(matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out <- matrix @ x`` for CSR ``matrix`` and a 1-D operand."""
    _spmv(matrix.indptr, matrix.indices, matrix.data, x, out)
    return out


def spmm(matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out <- matrix @ x`` for CSR ``matrix`` and a C-contiguous
    ``(n, B)`` operand."""
    _spmm(matrix.indptr, matrix.indices, matrix.data, x, out)
    return out


def spmm_tiled(
    matrix, x: np.ndarray, out: np.ndarray, boundaries: np.ndarray
) -> np.ndarray:
    """``out <- matrix @ x`` executed tile by tile (bitwise equal to
    :func:`spmm`; see :mod:`repro.kernels.tiling`)."""
    _spmm_tiled(matrix.indptr, matrix.indices, matrix.data, x, out, boundaries)
    return out


def select_top_k_many(
    scores: np.ndarray,
    banned: np.ndarray,
    use_banned: bool,
    k: int,
    out: np.ndarray,
) -> np.ndarray:
    """Row-parallel top-``k`` selection into ``out`` (``-1`` padded)."""
    _select_top_k_many(scores, banned, use_banned, int(k), out)
    return out


# -- local push loops ----------------------------------------------------------
#
# Forward/backward push are queue-driven scalar loops — Python-interpreter
# bound, not memory bound.  The JIT versions below mirror the reference
# implementations in repro.baselines operation for operation (same FIFO
# discipline, same in-queue dedup, same two-pass add-then-enqueue order),
# so their floating-point results are identical; only the interpreter
# overhead disappears.  They return the push count, or -1 when max_pushes
# was exceeded (the caller raises, matching the reference behavior).


@njit(nogil=True, cache=True)
def _forward_push(indptr, indices, threshold, c, seed, max_pushes,
                  estimate, residual):  # pragma: no cover - JIT
    n = indptr.shape[0] - 1
    queue = np.empty(n, np.int64)
    in_queue = np.zeros(n, np.uint8)
    # Ring buffer seeded with one element: reads start at 0, the next
    # write goes to 1 mod n (tail is always (head + count) mod n).
    head = 0
    tail = 1 % n
    count = 1
    queue[0] = seed
    in_queue[seed] = 1
    pushes = 0
    while count > 0:
        node = queue[head]
        head += 1
        if head == n:
            head = 0
        count -= 1
        in_queue[node] = 0
        mass = residual[node]
        if mass <= threshold[node]:
            continue
        pushes += 1
        if pushes > max_pushes:
            return -1
        estimate[node] += c * mass
        residual[node] = 0.0
        lo = indptr[node]
        hi = indptr[node + 1]
        degree = hi - lo
        if degree == 0:
            # Dangling node: absorb the remaining mass locally, exactly as
            # the reference implementation does.
            estimate[node] += (1.0 - c) * mass
            continue
        share = (1.0 - c) * mass / degree
        for j in range(lo, hi):
            residual[indices[j]] += share
        for j in range(lo, hi):
            target = indices[j]
            if residual[target] > threshold[target] and in_queue[target] == 0:
                queue[tail] = target
                tail += 1
                if tail == n:
                    tail = 0
                count += 1
                in_queue[target] = 1
    return pushes


@njit(nogil=True, cache=True)
def _backward_push(indptr, indices, weights, rmax, c, target, max_pushes,
                   estimate, residual):  # pragma: no cover - JIT
    n = indptr.shape[0] - 1
    queue = np.empty(n, np.int64)
    in_queue = np.zeros(n, np.uint8)
    # Same ring-buffer discipline as _forward_push: tail = (head + count).
    head = 0
    tail = 1 % n
    count = 1
    queue[0] = target
    in_queue[target] = 1
    pushes = 0
    while count > 0:
        node = queue[head]
        head += 1
        if head == n:
            head = 0
        count -= 1
        in_queue[node] = 0
        mass = residual[node]
        if mass <= rmax:
            continue
        pushes += 1
        if pushes > max_pushes:
            return -1
        estimate[node] += c * mass
        residual[node] = 0.0
        lo = indptr[node]
        hi = indptr[node + 1]
        for j in range(lo, hi):
            residual[indices[j]] += (1.0 - c) * mass * weights[j]
        for j in range(lo, hi):
            source = indices[j]
            if residual[source] > rmax and in_queue[source] == 0:
                queue[tail] = source
                tail += 1
                if tail == n:
                    tail = 0
                count += 1
                in_queue[source] = 1
    return pushes


def forward_push_loop(indptr, indices, threshold, c, seed, max_pushes,
                      estimate, residual) -> int:
    return int(_forward_push(indptr, indices, threshold, float(c),
                             np.int64(seed), np.int64(max_pushes),
                             estimate, residual))


def backward_push_loop(indptr, indices, weights, rmax, c, target, max_pushes,
                       estimate, residual) -> int:
    return int(_backward_push(indptr, indices, weights, float(rmax), float(c),
                              np.int64(target), np.int64(max_pushes),
                              estimate, residual))
