"""Numba-JIT, thread-parallel implementation of the CSR kernels.

Row-parallel SpMV/SpMM: CSR rows partition the output, so ``prange`` over
rows needs no atomics and no reduction — each thread owns a disjoint slice
of ``out``.  Within a row, nonzeros accumulate in stored index order,
which is the same order SciPy's ``csr_matvec(s)`` kernels use; for float64
operands the two backends therefore agree to the last ulp in practice (the
test suite asserts ≤ 1e-12, the contract we document).

The skewed degree distributions of real random-walk graphs make static
row-blocking lopsided (one hub row can hold 1% of all nonzeros), so the
kernels run under Numba's default dynamic ``prange`` scheduling rather
than a hand-rolled row partition.  Pair with the SlashBurn locality
reordering (:mod:`repro.kernels.reorder`) to keep each thread's column
accesses cache-resident for the blocked SpMM.

This module is imported lazily by :mod:`repro.kernels.backend` only when
the ``numba`` backend is active, so environments without Numba never pay
(or fail) the import.  Kernels compile on first call per dtype signature;
``cache=True`` persists the machine code next to the package for
subsequent processes.
"""

from __future__ import annotations

import numba
import numpy as np
from numba import njit, prange

name = "numba"

num_threads = int(numba.get_num_threads())


@njit(parallel=True, nogil=True, cache=True)
def _spmv(indptr, indices, data, x, out):  # pragma: no cover - JIT
    # Accumulate through out[i] so every partial sum rounds in the output
    # dtype — exactly what SciPy's csr_matvec and _spmm below do.  A
    # float64 register accumulator would round only once, which under the
    # float32 policy would break the bitwise single-vs-batch equivalence
    # (spmv feeds single-seed queries, spmm the batched ones).
    for i in prange(out.shape[0]):
        out[i] = 0.0
        for j in range(indptr[i], indptr[i + 1]):
            out[i] += data[j] * x[indices[j]]


@njit(parallel=True, nogil=True, cache=True)
def _spmm(indptr, indices, data, x, out):  # pragma: no cover - JIT
    width = x.shape[1]
    for i in prange(out.shape[0]):
        for k in range(width):
            out[i, k] = 0.0
        for j in range(indptr[i], indptr[i + 1]):
            value = data[j]
            column = indices[j]
            for k in range(width):
                out[i, k] += value * x[column, k]


def spmv(matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out <- matrix @ x`` for CSR ``matrix`` and a 1-D operand."""
    _spmv(matrix.indptr, matrix.indices, matrix.data, x, out)
    return out


def spmm(matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out <- matrix @ x`` for CSR ``matrix`` and a C-contiguous
    ``(n, B)`` operand."""
    _spmm(matrix.indptr, matrix.indices, matrix.data, x, out)
    return out


# -- local push loops ----------------------------------------------------------
#
# Forward/backward push are queue-driven scalar loops — Python-interpreter
# bound, not memory bound.  The JIT versions below mirror the reference
# implementations in repro.baselines operation for operation (same FIFO
# discipline, same in-queue dedup, same two-pass add-then-enqueue order),
# so their floating-point results are identical; only the interpreter
# overhead disappears.  They return the push count, or -1 when max_pushes
# was exceeded (the caller raises, matching the reference behavior).


@njit(nogil=True, cache=True)
def _forward_push(indptr, indices, threshold, c, seed, max_pushes,
                  estimate, residual):  # pragma: no cover - JIT
    n = indptr.shape[0] - 1
    queue = np.empty(n, np.int64)
    in_queue = np.zeros(n, np.uint8)
    # Ring buffer seeded with one element: reads start at 0, the next
    # write goes to 1 mod n (tail is always (head + count) mod n).
    head = 0
    tail = 1 % n
    count = 1
    queue[0] = seed
    in_queue[seed] = 1
    pushes = 0
    while count > 0:
        node = queue[head]
        head += 1
        if head == n:
            head = 0
        count -= 1
        in_queue[node] = 0
        mass = residual[node]
        if mass <= threshold[node]:
            continue
        pushes += 1
        if pushes > max_pushes:
            return -1
        estimate[node] += c * mass
        residual[node] = 0.0
        lo = indptr[node]
        hi = indptr[node + 1]
        degree = hi - lo
        if degree == 0:
            # Dangling node: absorb the remaining mass locally, exactly as
            # the reference implementation does.
            estimate[node] += (1.0 - c) * mass
            continue
        share = (1.0 - c) * mass / degree
        for j in range(lo, hi):
            residual[indices[j]] += share
        for j in range(lo, hi):
            target = indices[j]
            if residual[target] > threshold[target] and in_queue[target] == 0:
                queue[tail] = target
                tail += 1
                if tail == n:
                    tail = 0
                count += 1
                in_queue[target] = 1
    return pushes


@njit(nogil=True, cache=True)
def _backward_push(indptr, indices, weights, rmax, c, target, max_pushes,
                   estimate, residual):  # pragma: no cover - JIT
    n = indptr.shape[0] - 1
    queue = np.empty(n, np.int64)
    in_queue = np.zeros(n, np.uint8)
    # Same ring-buffer discipline as _forward_push: tail = (head + count).
    head = 0
    tail = 1 % n
    count = 1
    queue[0] = target
    in_queue[target] = 1
    pushes = 0
    while count > 0:
        node = queue[head]
        head += 1
        if head == n:
            head = 0
        count -= 1
        in_queue[node] = 0
        mass = residual[node]
        if mass <= rmax:
            continue
        pushes += 1
        if pushes > max_pushes:
            return -1
        estimate[node] += c * mass
        residual[node] = 0.0
        lo = indptr[node]
        hi = indptr[node + 1]
        for j in range(lo, hi):
            residual[indices[j]] += (1.0 - c) * mass * weights[j]
        for j in range(lo, hi):
            source = indices[j]
            if residual[source] > rmax and in_queue[source] == 0:
                queue[tail] = source
                tail += 1
                if tail == n:
                    tail = 0
                count += 1
                in_queue[source] = 1
    return pushes


def forward_push_loop(indptr, indices, threshold, c, seed, max_pushes,
                      estimate, residual) -> int:
    return int(_forward_push(indptr, indices, threshold, float(c),
                             np.int64(seed), np.int64(max_pushes),
                             estimate, residual))


def backward_push_loop(indptr, indices, weights, rmax, c, target, max_pushes,
                       estimate, residual) -> int:
    return int(_backward_push(indptr, indices, weights, float(rmax), float(c),
                              np.int64(target), np.int64(max_pushes),
                              estimate, residual))
