"""SlashBurn row reordering — the cache-locality fast path for blocked SpMM.

The CSR kernels stream ``x[indices[j]]`` gathers whose locality is set by
the node numbering.  Real random-walk graphs are hub-and-spoke shaped, and
SlashBurn (:mod:`repro.graph.slashburn`) exploits exactly that: hubs move
to the front and the remainder becomes near-block-diagonal, so a row's
column indices cluster into (a) a short hot hub prefix that stays
cache-resident and (b) the row's own community block.  For the blocked
``(n, B)`` SpMM of the batched online phase, each gathered ``x`` row is
``B`` doubles wide — locality in the column indices is worth ``B`` times
more than in the SpMV case, which is why the batched engine opts in
(``Engine(..., reorder="slashburn")``).

The reordering is a pure relabeling: the permuted graph's operator is the
same linear map conjugated by a permutation, so scores computed in the
reordered space map back exactly through the permutation (the engine does
this transparently; results agree with the unordered path to solver
tolerance — bitwise equality is *not* preserved because row order changes
the SpMM's accumulation schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.kernels.tiling import RowTiling, row_tiling

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at call time: repro.graph.graph itself imports the
    # kernel layer, so a module-level import here would be circular.
    from repro.graph.graph import Graph

__all__ = ["LocalityReordering", "locality_reordering"]


@dataclass(frozen=True)
class LocalityReordering:
    """A relabeled graph plus the maps between the two id spaces.

    Attributes
    ----------
    graph:
        The reordered graph (SlashBurn order: hubs first, then the
        near-block-diagonal remainder).
    to_reordered:
        ``to_reordered[old_id] == new_id``.
    to_original:
        ``to_original[new_id] == old_id`` (the SlashBurn permutation).
    num_hubs:
        Size of the hub prefix (rows ``0..num_hubs-1`` of the reordered
        operator are the hot band).
    block_starts:
        First reordered id of every non-hub community block, ascending
        (empty when unknown) — the natural tile cut points for
        :meth:`spmm_tiling`.
    """

    graph: Graph
    to_reordered: np.ndarray
    to_original: np.ndarray
    num_hubs: int
    block_starts: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    def scores_to_original(self, scores: np.ndarray) -> np.ndarray:
        """Map a score vector (or ``(n, B)`` column stack) computed on the
        reordered graph back to original node ids along axis 0."""
        return scores[self.to_reordered]

    def ids_to_original(self, ids: np.ndarray) -> np.ndarray:
        """Map reordered node ids back to original ids; negative entries
        (the engine's ``-1`` ranking padding) pass through unchanged."""
        ids = np.asarray(ids)
        result = np.where(ids >= 0, self.to_original[np.clip(ids, 0, None)], ids)
        return result.astype(np.int64, copy=False)

    def spmm_tiling(self, tile_height: int | None = None) -> RowTiling:
        """A :class:`~repro.kernels.tiling.RowTiling` tuned to this
        ordering: the hub band is chunked separately and spoke tiles
        close on community-block frontiers, so each tile's gathers stay
        within the hot hub prefix plus its own blocks.  ``tile_height``
        defaults to the configured :func:`repro.kernels.tile_rows`."""
        return row_tiling(
            self.graph.num_nodes,
            num_hubs=self.num_hubs,
            tile_height=tile_height,
            block_starts=self.block_starts,
        )


def locality_reordering(graph: Graph, k: int | None = None) -> LocalityReordering:
    """Relabel ``graph`` into SlashBurn order for cache-friendly SpMM.

    ``k`` is the per-round hub count forwarded to
    :func:`~repro.graph.slashburn.slashburn` (its 0.5 % default when
    ``None``).
    """
    from repro.graph.slashburn import slashburn

    ordering = slashburn(graph, k=k)
    permutation = ordering.permutation
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(permutation.size)
    return LocalityReordering(
        graph=graph.permute(permutation),
        to_reordered=inverse,
        to_original=permutation,
        num_hubs=ordering.num_hubs,
        block_starts=ordering.block_starts(),
    )
