"""Structural statistics of directed graphs.

The paper's argument rests on two structural properties of real-world
graphs — skewed degree distributions (stranger approximation, Section
III-A) and block-wise community structure plus reciprocity (neighbor
approximation, Section III-B).  This module quantifies both so the
synthetic analogs can be checked against the properties they are supposed
to plant, and so users can judge whether *their* graph is TPA-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["GraphStats", "graph_stats", "reciprocity", "gini_coefficient",
           "intra_community_fraction"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one digraph.

    Attributes
    ----------
    num_nodes, num_edges:
        Basic size.
    mean_degree:
        ``m / n``.
    max_in_degree, max_out_degree:
        Hub sizes.
    in_degree_gini, out_degree_gini:
        Gini coefficients of the degree distributions; near 0 is flat
        (ER-like), toward 1 is heavy-tailed (power-law-like).
    reciprocity:
        Fraction of edges whose reverse edge also exists.
    dangling_nodes:
        Count of zero-out-degree nodes (before policy repair).
    """

    num_nodes: int
    num_edges: int
    mean_degree: float
    max_in_degree: int
    max_out_degree: int
    in_degree_gini: float
    out_degree_gini: float
    reciprocity: float
    dangling_nodes: int


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ParameterError("gini_coefficient needs a non-empty sample")
    if (values < 0).any():
        raise ParameterError("gini_coefficient needs non-negative values")
    total = values.sum()
    if total == 0.0:
        return 0.0
    sorted_values = np.sort(values)
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * sorted_values).sum()) / (n * total) - (n + 1) / n)


def reciprocity(graph: Graph) -> float:
    """Fraction of directed edges with a reverse counterpart."""
    adjacency = graph.adjacency
    if adjacency.nnz == 0:
        return 0.0
    mutual = adjacency.multiply(adjacency.T).sum()
    return float(mutual / adjacency.nnz)


def intra_community_fraction(graph: Graph, labels: np.ndarray) -> float:
    """Fraction of edges that stay within their source's community.

    High values on a given partition indicate the block-wise structure
    the neighbor approximation relies on (paper Figure 5).
    """
    labels = np.asarray(labels)
    if labels.shape != (graph.num_nodes,):
        raise ParameterError("labels must have one entry per node")
    src, dst = graph.edges()
    if src.size == 0:
        return 0.0
    return float((labels[src] == labels[dst]).mean())


def graph_stats(graph: Graph) -> GraphStats:
    """Compute the full :class:`GraphStats` summary for ``graph``."""
    in_degree = graph.in_degree
    out_degree = graph.out_degree
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        mean_degree=graph.num_edges / graph.num_nodes,
        max_in_degree=int(in_degree.max()),
        max_out_degree=int(out_degree.max()),
        in_degree_gini=gini_coefficient(in_degree),
        out_degree_gini=gini_coefficient(out_degree),
        reciprocity=reciprocity(graph),
        dangling_nodes=int(graph.dangling_nodes.size),
    )
