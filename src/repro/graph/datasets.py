"""Registry of scaled analogs of the paper's seven evaluation graphs.

The paper's Table II lists seven KONECT graphs from Slashdot (82 K nodes,
549 K edges) to Friendster (68 M nodes, 2.6 B edges).  Those graphs are not
available offline and the billion-edge ones do not fit this environment, so
each dataset here is a *deterministic synthetic analog*: a community-
structured power-law digraph (see :func:`~repro.graph.generators.
community_graph`) whose node count, edge density ordering (``m/n``), and
per-dataset ``S``/``T`` parameters mirror Table II at roughly 1/40 – 1/3400
linear scale.  The substitution rationale is recorded in DESIGN.md §4.

Analog sizes can be scaled with the ``REPRO_SCALE`` environment variable or
the ``scale`` argument of :func:`load_dataset` (e.g. ``scale=4.0`` makes
every analog 4× larger).  Generated graphs are cached per process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ParameterError
from repro.graph.generators import community_graph
from repro.graph.graph import Graph

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names", "clear_cache"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one analog dataset.

    Attributes
    ----------
    name:
        Lower-case dataset key (e.g. ``"slashdot"``).
    paper_nodes, paper_edges:
        Sizes of the original KONECT graph from Table II, kept for
        reporting.
    analog_nodes:
        Node count of the synthetic analog at ``scale=1``.
    avg_degree:
        Target mean out-degree of the analog; chosen so the ``m/n`` ratio
        ordering matches the original datasets.
    s_iteration, t_iteration:
        The per-dataset ``S`` and ``T`` parameters of Table II.
    kind:
        ``"social"`` or ``"hyperlink"`` — hyperlink analogs use a higher
        intra-community probability (web graphs are more modular).
    seed:
        Base RNG seed; combined with the scale so different scales give
        different but deterministic graphs.
    """

    name: str
    paper_nodes: int
    paper_edges: int
    analog_nodes: int
    avg_degree: float
    s_iteration: int
    t_iteration: int
    kind: str
    seed: int

    def num_communities(self) -> int:
        """Community count grows slowly with analog size."""
        return max(8, self.analog_nodes // 125)

    def p_in(self) -> float:
        return 0.92 if self.kind == "hyperlink" else 0.88

    def reciprocity(self) -> float:
        """Edge mirroring rate: social graphs are strongly reciprocal,
        hyperlink graphs less so."""
        return 0.2 if self.kind == "hyperlink" else 0.4


# Ordered smallest to largest, exactly as in the paper's Table II footprint.
_SPECS = [
    DatasetSpec("slashdot", 82_144, 549_202, 2_000, 7.0, 5, 15, "social", 101),
    DatasetSpec("google", 875_713, 5_105_039, 4_000, 6.0, 5, 20, "hyperlink", 102),
    DatasetSpec("pokec", 1_632_803, 30_622_564, 5_000, 19.0, 5, 10, "social", 103),
    DatasetSpec("livejournal", 4_847_571, 68_475_391, 8_000, 14.0, 5, 10, "social", 104),
    DatasetSpec("wikilink", 12_150_976, 378_142_420, 10_000, 31.0, 5, 6, "hyperlink", 105),
    DatasetSpec("twitter", 41_652_230, 1_468_365_182, 14_000, 35.0, 4, 6, "social", 106),
    DatasetSpec("friendster", 68_349_466, 2_586_147_869, 20_000, 38.0, 4, 20, "social", 107),
]

DATASETS: dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}

_CACHE: dict[tuple[str, float], Graph] = {}


def dataset_names() -> list[str]:
    """Dataset keys ordered smallest to largest, as the paper plots them."""
    return [spec.name for spec in _SPECS]


def _env_scale() -> float:
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ParameterError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ParameterError("REPRO_SCALE must be positive")
    return value


def load_dataset(name: str, scale: float | None = None) -> Graph:
    """Generate (or fetch from cache) the analog graph for ``name``.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    scale:
        Linear scale multiplier for the node count; defaults to the
        ``REPRO_SCALE`` environment variable (itself defaulting to 1.0).
    """
    key = name.lower()
    if key not in DATASETS:
        raise ParameterError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    spec = DATASETS[key]
    factor = _env_scale() if scale is None else float(scale)
    if factor <= 0:
        raise ParameterError("scale must be positive")

    cache_key = (key, factor)
    if cache_key not in _CACHE:
        n = max(64, int(round(spec.analog_nodes * factor)))
        _CACHE[cache_key] = community_graph(
            n,
            avg_degree=spec.avg_degree,
            num_communities=max(8, n // 125),
            p_in=spec.p_in(),
            reciprocity=spec.reciprocity(),
            seed=spec.seed,
        )
    return _CACHE[cache_key]


def clear_cache() -> None:
    """Drop all cached analog graphs (mainly for tests)."""
    _CACHE.clear()


def iter_datasets(scale: float | None = None) -> Iterator[tuple[DatasetSpec, Graph]]:
    """Yield ``(spec, graph)`` for every dataset, smallest first."""
    for spec in _SPECS:
        yield spec, load_dataset(spec.name, scale=scale)
