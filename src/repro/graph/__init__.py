"""Graph substrate: CSR-backed directed graphs, IO, generators, datasets.

This subpackage provides everything the RWR algorithms need from a graph:

* :class:`~repro.graph.graph.Graph` — an immutable directed graph backed by
  ``scipy.sparse`` CSR storage, exposing the column-stochastic transition
  operator ``Ã^T`` used by every method in the paper.
* :mod:`~repro.graph.io` — KONECT-style edge-list reading and writing.
* :mod:`~repro.graph.generators` — synthetic generators (community-structured
  directed SBM, R-MAT, Erdős–Rényi ``G(n, m)``, and small deterministic
  topologies for tests).
* :mod:`~repro.graph.datasets` — the registry of scaled analogs of the
  paper's seven evaluation graphs (Table II).
* :mod:`~repro.graph.slashburn` — SlashBurn hub/spoke ordering (needed by
  BEAR-APPROX and BePI).
* :mod:`~repro.graph.partition` — community partitioning (needed by NB-LIN).
"""

from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.generators import (
    community_graph,
    rmat_graph,
    gnm_random_graph,
    rewire_random,
    ring_graph,
    star_graph,
    complete_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset, dataset_names
from repro.graph.slashburn import slashburn, SlashBurnOrdering
from repro.graph.partition import partition_graph
from repro.graph.diskgraph import DiskGraph
from repro.graph.stats import (
    GraphStats,
    graph_stats,
    reciprocity,
    gini_coefficient,
    intra_community_fraction,
)

__all__ = [
    "Graph",
    "read_edge_list",
    "write_edge_list",
    "community_graph",
    "rmat_graph",
    "gnm_random_graph",
    "rewire_random",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "slashburn",
    "SlashBurnOrdering",
    "partition_graph",
    "DiskGraph",
    "GraphStats",
    "graph_stats",
    "reciprocity",
    "gini_coefficient",
    "intra_community_fraction",
]
