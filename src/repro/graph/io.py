"""Edge-list IO in the KONECT / SNAP style used by the paper's datasets.

The paper's seven graphs are distributed as whitespace-separated edge lists
with ``%`` (KONECT) or ``#`` (SNAP) comment lines.  :func:`read_edge_list`
accepts both, optionally relabels arbitrary integer ids to the compact range
``0..n-1``, and returns a :class:`~repro.graph.graph.Graph` plus the id
mapping so results can be reported in the original id space.
"""

from __future__ import annotations

import os
from typing import IO, Iterable

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.graph import DanglingPolicy, Graph

__all__ = ["read_edge_list", "write_edge_list"]

_COMMENT_PREFIXES = ("#", "%")


def _parse_lines(lines: Iterable[str]) -> tuple[list[int], list[int]]:
    src: list[int] = []
    dst: list[int] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"line {lineno}: expected at least two columns, got {line!r}"
            )
        try:
            u = int(parts[0])
            v = int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {lineno}: non-integer node id in {line!r}"
            ) from exc
        src.append(u)
        dst.append(v)
    return src, dst


def read_edge_list(
    path_or_file: str | os.PathLike | IO[str],
    n: int | None = None,
    relabel: bool = True,
    dangling: DanglingPolicy = "selfloop",
) -> tuple[Graph, np.ndarray]:
    """Read a directed edge list and return ``(graph, original_ids)``.

    Parameters
    ----------
    path_or_file:
        Path to a text file, or an open text file object.
    n:
        Number of nodes.  Required when ``relabel`` is false and ids are
        already compact; inferred otherwise.
    relabel:
        When true (default), arbitrary integer ids are mapped onto
        ``0..n-1`` in sorted order; ``original_ids[i]`` recovers the
        original id of compact node ``i``.
    dangling:
        Dangling-node policy for the resulting graph.  Real edge lists
        routinely contain sink pages/users, so the default is
        ``"selfloop"`` rather than ``"error"``.

    Returns
    -------
    graph:
        The parsed :class:`Graph`.
    original_ids:
        Length-``n`` array mapping compact node ids back to input ids.
    """
    if hasattr(path_or_file, "read"):
        src_list, dst_list = _parse_lines(path_or_file)  # type: ignore[arg-type]
    else:
        with open(path_or_file, "r", encoding="utf-8") as handle:
            src_list, dst_list = _parse_lines(handle)

    if not src_list:
        raise GraphFormatError("edge list contains no edges")

    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)

    if relabel:
        original_ids, inverse = np.unique(
            np.concatenate([src, dst]), return_inverse=True
        )
        src = inverse[: src.size]
        dst = inverse[src.size :]
        node_count = original_ids.size
        if n is not None and n > node_count:
            # Caller wants isolated trailing nodes; extend the id map.
            extra = np.arange(node_count, n, dtype=np.int64)
            original_ids = np.concatenate([original_ids, extra])
            node_count = n
    else:
        node_count = n if n is not None else int(max(src.max(), dst.max())) + 1
        original_ids = np.arange(node_count, dtype=np.int64)

    graph = Graph(node_count, src, dst, dangling=dangling)
    return graph, original_ids


def write_edge_list(
    graph: Graph,
    path_or_file: str | os.PathLike | IO[str],
    header: str | None = None,
) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Parameters
    ----------
    graph:
        The graph to serialize.
    path_or_file:
        Destination path or open text file object.
    header:
        Optional comment emitted as a ``%`` line, KONECT style.
    """
    src, dst = graph.edges()

    def _write(handle: IO[str]) -> None:
        if header:
            handle.write(f"% {header}\n")
        handle.write(f"% nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            handle.write(f"{u}\t{v}\n")

    if hasattr(path_or_file, "write"):
        _write(path_or_file)  # type: ignore[arg-type]
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write(handle)
