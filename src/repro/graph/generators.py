"""Synthetic graph generators.

The paper evaluates on seven real-world graphs whose two structural
properties TPA's approximations depend on are (Section III):

1. **block-wise, community-like structure** — the neighbor approximation
   assumes scores re-circulate inside the seed's community, and
2. **skewed (power-law) degree distributions** — the stranger approximation
   benefits from ``(Ã^T)^i`` densifying quickly, which hub nodes drive.

:func:`community_graph` plants both properties: it is a degree-corrected
directed stochastic block model with Zipf-distributed out-degrees and
community-biased targets, matching the block-diagonal-plus-noise shape the
paper illustrates in Figures 3 and 5.  :func:`gnm_random_graph` provides the
structure-free null model the paper compares against in Figure 6, and
:func:`rmat_graph` provides a classic Kronecker-style power-law generator as
an alternative workload.

All generators take an explicit seed / :class:`numpy.random.Generator` and
are deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = [
    "community_graph",
    "rmat_graph",
    "gnm_random_graph",
    "rewire_random",
    "ring_graph",
    "star_graph",
    "complete_graph",
]


def _rng_of(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _deduplicate(n: int, src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Remove self-loops and duplicate directed edges."""
    mask = src != dst
    src, dst = src[mask], dst[mask]
    keys = src.astype(np.int64) * n + dst.astype(np.int64)
    keys = np.unique(keys)
    return (keys // n).astype(np.int64), (keys % n).astype(np.int64)


def _ensure_no_dangling(
    n: int, src: np.ndarray, dst: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Give every node at least one out-edge by adding random edges."""
    present = np.zeros(n, dtype=bool)
    present[src] = True
    missing = np.flatnonzero(~present)
    if missing.size:
        targets = rng.integers(0, n, size=missing.size)
        collision = targets == missing
        targets[collision] = (targets[collision] + 1) % n
        src = np.concatenate([src, missing])
        dst = np.concatenate([dst, targets])
    return src, dst


def _zipf_degrees(
    n: int, mean_degree: float, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw power-law-ish out-degrees with a given mean, each at least 1."""
    raw = rng.zipf(exponent, size=n).astype(np.float64)
    raw = np.minimum(raw, np.sqrt(n))  # clip extreme hubs
    raw *= mean_degree / raw.mean()
    degrees = np.maximum(1, np.round(raw)).astype(np.int64)
    return degrees


def community_graph(
    n: int,
    avg_degree: float,
    num_communities: int = 16,
    p_in: float = 0.8,
    degree_exponent: float = 2.2,
    reciprocity: float = 0.3,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Directed degree-corrected SBM with planted block-wise structure.

    Parameters
    ----------
    n:
        Number of nodes.
    avg_degree:
        Target mean out-degree (``m ≈ n * avg_degree`` after reciprocation
        and dedup).
    num_communities:
        Number of planted communities; sizes follow a mild power law so the
        graph has both large and small blocks, as real social networks do.
    p_in:
        Probability that an edge stays inside its source's community.  The
        complement is routed to a random community, creating the sparse
        off-diagonal blocks visible in the paper's Figure 3.
    degree_exponent:
        Zipf exponent for out-degrees; in-degree skew arises from power-law
        target weights inside each community.
    reciprocity:
        Fraction of edges mirrored in the opposite direction.  Real social
        networks are strongly reciprocal, which is part of what keeps RWR
        mass circulating near the seed (the block-wise property behind the
        neighbor approximation).  Degrees are pre-scaled so the final edge
        count still matches ``avg_degree``.
    seed:
        RNG seed or generator.

    Returns
    -------
    Graph
        A simple directed graph with no dangling nodes.
    """
    if n < 2:
        raise ParameterError("community_graph requires n >= 2")
    if not 0.0 <= p_in <= 1.0:
        raise ParameterError("p_in must lie in [0, 1]")
    if not 0.0 <= reciprocity <= 1.0:
        raise ParameterError("reciprocity must lie in [0, 1]")
    if num_communities < 1 or num_communities > n:
        raise ParameterError("num_communities must lie in [1, n]")
    rng = _rng_of(seed)

    # Community sizes: mild power law, then normalize to sum to n.
    raw_sizes = rng.pareto(1.5, size=num_communities) + 1.0
    sizes = np.maximum(1, np.round(raw_sizes / raw_sizes.sum() * n)).astype(np.int64)
    while sizes.sum() > n:
        sizes[np.argmax(sizes)] -= 1
    sizes[np.argmax(sizes)] += n - sizes.sum()
    community_of = np.repeat(np.arange(num_communities), sizes)
    rng.shuffle(community_of)

    members = [np.flatnonzero(community_of == k) for k in range(num_communities)]

    # Power-law target attractiveness within each community gives skewed
    # in-degrees; hubs attract proportionally more incoming edges.
    attractiveness = rng.pareto(1.8, size=n) + 0.5

    # Mirroring roughly multiplies the edge count by (1 + reciprocity);
    # pre-scale so the final mean degree lands on avg_degree.
    base_degree = avg_degree / (1.0 + reciprocity)
    out_degree = _zipf_degrees(n, max(base_degree, 1.0), degree_exponent, rng)
    src = np.repeat(np.arange(n, dtype=np.int64), out_degree)
    total = src.size

    intra = rng.random(total) < p_in
    dst = np.empty(total, dtype=np.int64)

    # Intra-community targets, community by community (communities are few).
    for k in range(num_communities):
        mask = intra & (community_of[src] == k)
        count = int(mask.sum())
        if count == 0:
            continue
        pool = members[k]
        if pool.size == 1:
            # Degenerate community: route globally instead.
            intra[mask] = False
            continue
        weights = attractiveness[pool]
        weights = weights / weights.sum()
        dst[mask] = rng.choice(pool, size=count, p=weights)

    # Inter-community targets: global attractiveness-weighted choice.
    mask = ~intra
    count = int(mask.sum())
    if count:
        weights = attractiveness / attractiveness.sum()
        dst[mask] = rng.choice(n, size=count, p=weights)

    if reciprocity > 0.0:
        mirror = rng.random(src.size) < reciprocity
        mirrored_src = dst[mirror]
        mirrored_dst = src[mirror]
        src = np.concatenate([src, mirrored_src])
        dst = np.concatenate([dst, mirrored_dst])
    src, dst = _deduplicate(n, src, dst)
    src, dst = _ensure_no_dangling(n, src, dst, rng)
    return Graph(n, src, dst, dangling="error")


def rmat_graph(
    n: int,
    m: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """R-MAT / Kronecker-style power-law digraph with ``~m`` distinct edges.

    ``n`` is rounded up to the next power of two internally and the extra
    ids are folded back into range, following the usual practice.  The
    fourth quadrant probability is ``d = 1 - a - b - c``.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ParameterError("R-MAT probabilities must be non-negative")
    if n < 2:
        raise ParameterError("rmat_graph requires n >= 2")
    rng = _rng_of(seed)

    scale = int(np.ceil(np.log2(n)))
    probs = np.array([a, b, c, d])
    # Over-sample to survive dedup of the heavy diagonal blocks.
    sample = int(m * 1.3) + 16
    quadrants = rng.choice(4, size=(sample, scale), p=probs)
    row_bits = (quadrants >> 1) & 1
    col_bits = quadrants & 1
    powers = 1 << np.arange(scale - 1, -1, -1, dtype=np.int64)
    src = (row_bits * powers).sum(axis=1) % n
    dst = (col_bits * powers).sum(axis=1) % n

    src, dst = _deduplicate(n, src, dst)
    if src.size > m:
        keep = rng.choice(src.size, size=m, replace=False)
        src, dst = src[keep], dst[keep]
    src, dst = _ensure_no_dangling(n, src, dst, rng)
    return Graph(n, src, dst, dangling="error")


def gnm_random_graph(
    n: int, m: int, seed: int | np.random.Generator | None = None
) -> Graph:
    """Directed Erdős–Rényi ``G(n, m)``: exactly ``~m`` distinct random edges.

    This is the "random graph with the same numbers of nodes and edges"
    null model of the paper's Figure 6: no community structure, flat degree
    distribution.
    """
    if n < 2:
        raise ParameterError("gnm_random_graph requires n >= 2")
    if m < n:
        raise ParameterError("need m >= n so every node can have an out-edge")
    max_edges = n * (n - 1)
    if m > max_edges:
        raise ParameterError(f"m={m} exceeds the maximum {max_edges}")
    rng = _rng_of(seed)

    # Rejection-sample in batches until we have m distinct non-loop edges.
    keys = np.empty(0, dtype=np.int64)
    while keys.size < m:
        need = m - keys.size
        batch = int(need * 1.2) + 16
        src = rng.integers(0, n, size=batch, dtype=np.int64)
        dst = rng.integers(0, n, size=batch, dtype=np.int64)
        ok = src != dst
        new = src[ok] * n + dst[ok]
        keys = np.unique(np.concatenate([keys, new]))
    if keys.size > m:
        keys = rng.choice(keys, size=m, replace=False)
    src = (keys // n).astype(np.int64)
    dst = (keys % n).astype(np.int64)
    src, dst = _ensure_no_dangling(n, src, dst, rng)
    return Graph(n, src, dst, dangling="error")


def rewire_random(
    graph: Graph, seed: int | np.random.Generator | None = None
) -> Graph:
    """Return a random graph with the same node and edge counts as ``graph``.

    Used by the Figure 6 experiment: the rewired graph destroys block-wise
    structure while preserving ``n`` and ``m``.
    """
    return gnm_random_graph(graph.num_nodes, graph.num_edges, seed=seed)


def ring_graph(n: int) -> Graph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (deterministic)."""
    if n < 2:
        raise ParameterError("ring_graph requires n >= 2")
    nodes = np.arange(n, dtype=np.int64)
    return Graph(n, nodes, (nodes + 1) % n, dangling="error")


def star_graph(n: int) -> Graph:
    """Hub node 0 linked both ways with every spoke (deterministic)."""
    if n < 2:
        raise ParameterError("star_graph requires n >= 2")
    spokes = np.arange(1, n, dtype=np.int64)
    src = np.concatenate([np.zeros(n - 1, dtype=np.int64), spokes])
    dst = np.concatenate([spokes, np.zeros(n - 1, dtype=np.int64)])
    return Graph(n, src, dst, dangling="error")


def complete_graph(n: int) -> Graph:
    """Complete digraph without self-loops (deterministic)."""
    if n < 2:
        raise ParameterError("complete_graph requires n >= 2")
    src, dst = np.divmod(np.arange(n * n, dtype=np.int64), n)
    mask = src != dst
    return Graph(n, src[mask], dst[mask], dangling="error")
