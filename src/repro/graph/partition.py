"""Community partitioning used by NB-LIN's block / low-rank split.

NB-LIN (Tong et al., 2008) partitions the graph into communities, keeps the
within-partition adjacency ``A1`` exact (block diagonal), and low-rank
approximates the cross-partition part ``A2``.  The original work uses METIS;
this module provides a dependency-free substitute: size-capped label
propagation on the symmetrized graph with a deterministic tie-break,
followed by a merge/split pass that enforces minimum and maximum partition
sizes so the dense per-block inverses stay tractable.

Determinism contract
--------------------
Every random choice — the initial label assignment, the sweep order, and
the member selection of the merge/split pass — draws from one
:class:`numpy.random.Generator` seeded by the ``seed`` argument, and no
step consults process-dependent state (global NumPy RNG, hash order,
address order).  Two processes given the same graph and seed therefore
produce identical labels, which is what lets
:mod:`repro.sharding` cut shard boundaries on partition frontiers and
have every worker process agree on them (the test suite runs the
cross-process regression).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["partition_graph", "partition_order"]


def partition_graph(
    graph: Graph,
    num_partitions: int,
    iterations: int = 8,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Partition nodes into roughly balanced communities.

    Parameters
    ----------
    graph:
        Input digraph; partitioning runs on its symmetrized view.
    num_partitions:
        Target number of partitions (the result has exactly this many
        non-empty labels when ``num_partitions <= n``).
    iterations:
        Label-propagation sweeps before balancing.
    seed:
        Seed (or an explicit :class:`numpy.random.Generator`) for every
        random choice the pass makes — the initial labels, the sweep
        order, *and* the merge/split rebalancing.  Equal seeds yield
        identical labels in any process (see the module docstring).

    Returns
    -------
    numpy.ndarray
        Length-``n`` integer array of partition labels in
        ``0..num_partitions-1``.
    """
    n = graph.num_nodes
    if num_partitions < 1:
        raise ParameterError("num_partitions must be >= 1")
    if num_partitions > n:
        raise ParameterError("num_partitions cannot exceed the node count")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    if num_partitions == 1:
        return np.zeros(n, dtype=np.int64)

    sym = graph.undirected_view()
    indptr, indices = sym.indptr, sym.indices

    labels = rng.integers(0, num_partitions, size=n, dtype=np.int64)

    # Label propagation: each node adopts the most common label among its
    # neighbours; ties break toward the smallest label for determinism.
    for _ in range(iterations):
        changed = False
        order = rng.permutation(n)
        for node in order:
            start, end = indptr[node], indptr[node + 1]
            if start == end:
                continue
            neighbor_labels = labels[indices[start:end]]
            counts = np.bincount(neighbor_labels, minlength=num_partitions)
            best = int(np.argmax(counts))
            if counts[best] > 0 and best != labels[node]:
                labels[node] = best
                changed = True
        if not changed:
            break

    return _rebalance(labels, num_partitions, n, rng)


def _rebalance(
    labels: np.ndarray,
    num_partitions: int,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Enforce bounded partition sizes and exactly ``num_partitions`` labels.

    Label propagation tends to collapse into few giant labels; this pass
    splits any partition larger than ``2 * ceil(n / num_partitions)`` and
    refills empty labels so downstream dense block inverses stay small.
    Which members of an oversized partition move is drawn from ``rng`` —
    the same generator that seeded the propagation — so the whole pass
    stays a pure function of ``(graph, seed)``.
    """
    target = int(np.ceil(n / num_partitions))
    max_size = max(1, 2 * target)
    labels = labels.copy()

    counts = np.bincount(labels, minlength=num_partitions)
    empty = [p for p in range(num_partitions) if counts[p] == 0]

    for part in range(num_partitions):
        while counts[part] > max_size:
            members = rng.permutation(np.flatnonzero(labels == part))
            move = members[: counts[part] - max_size]
            if empty:
                dest = empty.pop()
            else:
                dest = int(np.argmin(counts))
                if dest == part:
                    break
            take = move[: max(1, min(move.size, max_size - counts[dest]))]
            labels[take] = dest
            counts = np.bincount(labels, minlength=num_partitions)

    # Fill any remaining empty labels with singletons from the largest part.
    counts = np.bincount(labels, minlength=num_partitions)
    for part in range(num_partitions):
        if counts[part] == 0:
            donor = int(np.argmax(counts))
            victim = np.flatnonzero(labels == donor)[0]
            labels[victim] = part
            counts[donor] -= 1
            counts[part] += 1
    return labels


def partition_order(labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Node ordering that makes each partition a contiguous row range.

    Parameters
    ----------
    labels:
        Length-``n`` partition labels (e.g. from :func:`partition_graph`).

    Returns
    -------
    tuple
        ``(permutation, starts)``: ``permutation`` lists old node ids in
        their new order (nodes sorted stably by label, so relabeling a
        graph with :meth:`~repro.graph.graph.Graph.permute` groups each
        community into one block), and ``starts`` holds the first new id
        of every non-empty partition, ascending — the natural cut points
        for community-aligned row shards and tiles.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1 or labels.size == 0:
        raise ParameterError("labels must be a non-empty 1-D array")
    permutation = np.argsort(labels, kind="stable").astype(np.int64)
    ordered = labels[permutation]
    firsts = np.flatnonzero(np.diff(ordered) != 0) + 1
    starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), firsts.astype(np.int64)]
    )
    return permutation, starts
