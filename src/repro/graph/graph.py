"""Immutable directed graph backed by ``scipy.sparse`` CSR storage.

The algorithms in this package all operate on the *row-normalized* adjacency
matrix ``Ã`` of a directed graph ``G`` and, more specifically, on its
transpose ``Ã^T`` which is column stochastic when every node has at least one
out-edge (Section II of the paper).  :class:`Graph` owns both the raw
adjacency structure and the normalized transition operator, and centralizes
the treatment of *dangling* nodes (zero out-degree) so that the stochasticity
assumptions behind Lemmas 1–3 hold for every policy.
"""

from __future__ import annotations

from typing import Iterable, Literal, Sequence

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.exceptions import DanglingNodeError, GraphFormatError

DanglingPolicy = Literal["error", "selfloop", "uniform"]

__all__ = ["Graph", "DanglingPolicy"]


def _as_index_array(values: Iterable[int]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise GraphFormatError("edge endpoint arrays must be one-dimensional")
    return arr


class Graph:
    """A directed graph with CSR adjacency and a normalized transition operator.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are the integers ``0..n-1``.
    src, dst:
        Parallel arrays of edge endpoints.  Duplicate edges are collapsed and
        self-loops are kept only if ``keep_self_loops`` is true.
    dangling:
        How to make ``Ã^T`` column stochastic when some nodes have no
        out-edges:

        ``"error"``
            raise :class:`~repro.exceptions.DanglingNodeError` (default —
            the paper's generators never produce dangling nodes);
        ``"selfloop"``
            add a self-loop to each dangling node;
        ``"uniform"``
            treat a dangling node as linking to every node uniformly.  The
            rank-one correction is applied inside :meth:`propagate`, so the
            sparse matrix itself stays sparse.
    keep_self_loops:
        Whether self-loops present in the input are preserved.

    Notes
    -----
    The instance is logically immutable: all mutating operations return new
    :class:`Graph` objects.
    """

    def __init__(
        self,
        n: int,
        src: Iterable[int],
        dst: Iterable[int],
        dangling: DanglingPolicy = "error",
        keep_self_loops: bool = False,
    ):
        if n <= 0:
            raise GraphFormatError("graph must have at least one node")
        src_arr = _as_index_array(src)
        dst_arr = _as_index_array(dst)
        if src_arr.shape != dst_arr.shape:
            raise GraphFormatError("src and dst arrays must have equal length")
        if src_arr.size:
            lo = min(src_arr.min(), dst_arr.min())
            hi = max(src_arr.max(), dst_arr.max())
            if lo < 0 or hi >= n:
                raise GraphFormatError(
                    f"edge endpoints must lie in [0, {n - 1}]; got [{lo}, {hi}]"
                )
        if not keep_self_loops and src_arr.size:
            mask = src_arr != dst_arr
            src_arr, dst_arr = src_arr[mask], dst_arr[mask]

        adjacency = sp.csr_array(
            (np.ones(src_arr.size, dtype=np.float64), (src_arr, dst_arr)),
            shape=(n, n),
        )
        # Collapse duplicate edges to weight 1 (unweighted simple digraph).
        adjacency.sum_duplicates()
        adjacency.data[:] = 1.0

        self._n = n
        self._dangling_policy: DanglingPolicy = dangling
        self._finalize(adjacency)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Sequence[tuple[int, int]],
        dangling: DanglingPolicy = "error",
    ) -> "Graph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        if len(edges):
            src, dst = zip(*edges)
        else:
            src, dst = (), ()
        return cls(n, src, dst, dangling=dangling)

    @classmethod
    def from_scipy(
        cls, adjacency: sp.sparray | sp.spmatrix, dangling: DanglingPolicy = "error"
    ) -> "Graph":
        """Build a graph from a square scipy sparse adjacency matrix.

        Nonzero entries become edges; weights are discarded (the paper's
        graphs are unweighted).
        """
        coo = sp.coo_array(adjacency)
        if coo.shape[0] != coo.shape[1]:
            raise GraphFormatError("adjacency matrix must be square")
        return cls(coo.shape[0], coo.row, coo.col, dangling=dangling)

    def _finalize(self, adjacency: sp.csr_array) -> None:
        out_degree = np.asarray(adjacency.sum(axis=1)).ravel()
        dangling_nodes = np.flatnonzero(out_degree == 0)

        if dangling_nodes.size and self._dangling_policy == "error":
            raise DanglingNodeError(
                f"{dangling_nodes.size} nodes have zero out-degree "
                f"(first few: {dangling_nodes[:5].tolist()}); choose the "
                "'selfloop' or 'uniform' dangling policy to handle them"
            )
        if dangling_nodes.size and self._dangling_policy == "selfloop":
            loops = sp.csr_array(
                (
                    np.ones(dangling_nodes.size),
                    (dangling_nodes, dangling_nodes),
                ),
                shape=adjacency.shape,
            )
            adjacency = (adjacency + loops).tocsr()
            out_degree = np.asarray(adjacency.sum(axis=1)).ravel()
            dangling_nodes = np.flatnonzero(out_degree == 0)

        self._adjacency = adjacency
        self._out_degree = out_degree
        self._in_degree = np.asarray(adjacency.sum(axis=0)).ravel()
        self._dangling = dangling_nodes

        # Row-normalize: each non-dangling row sums to 1.
        inv = np.zeros(self._n)
        nonzero = out_degree > 0
        inv[nonzero] = 1.0 / out_degree[nonzero]
        scale = sp.dia_array((inv[np.newaxis, :], [0]), shape=(self._n, self._n))
        transition = (scale @ adjacency).tocsr()
        self._transition = transition
        self._transition_t = transition.T.tocsr()
        # Pre-scaled / pre-cast copies of Ã^T, keyed by (decay, dtype name);
        # decay None is the plain operator in a non-default dtype.  Index
        # arrays are shared with the base operator — each entry costs one
        # data-array copy.
        self._operator_cache: dict[tuple[float | None, str], sp.csr_array] = {}
        # Optional row tiling for the blocked (n, B) products; attached by
        # the Engine when a SlashBurn reordering makes tiled execution
        # cache friendly.  Bitwise neutral: tiled == untiled by contract.
        self._spmm_tiling: "kernels.RowTiling | None" = None

    # -- basic properties ------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (after dedup / self-loop policy)."""
        return int(self._adjacency.nnz)

    @property
    def out_degree(self) -> np.ndarray:
        """Out-degree of every node as a length-``n`` float array."""
        return self._out_degree

    @property
    def in_degree(self) -> np.ndarray:
        """In-degree of every node as a length-``n`` float array."""
        return self._in_degree

    @property
    def dangling_nodes(self) -> np.ndarray:
        """Indices of nodes whose out-degree is zero under the chosen policy.

        Non-empty only for the ``"uniform"`` policy, where the correction is
        applied on the fly by :meth:`propagate`.
        """
        return self._dangling

    @property
    def dangling_policy(self) -> DanglingPolicy:
        """The dangling-node policy this graph was built with."""
        return self._dangling_policy

    @property
    def adjacency(self) -> sp.csr_array:
        """The binary adjacency matrix ``A`` in CSR form."""
        return self._adjacency

    @property
    def transition(self) -> sp.csr_array:
        """The row-normalized adjacency ``Ã`` in CSR form."""
        return self._transition

    @property
    def transition_transpose(self) -> sp.csr_array:
        """``Ã^T`` in CSR form — the operator applied at every CPI step.

        Column stochastic except for columns of dangling nodes under the
        ``"uniform"`` policy (whose correction lives in :meth:`propagate`).
        """
        return self._transition_t

    def nbytes(self) -> int:
        """Bytes consumed by the adjacency and transition structures."""
        total = 0
        for mat in (self._adjacency, self._transition, self._transition_t):
            total += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
        return total

    # -- the stochastic propagation operator -----------------------------------

    @property
    def spmm_tiling(self) -> "kernels.RowTiling | None":
        """The row tiling blocked products execute under, if any."""
        return self._spmm_tiling

    def set_spmm_tiling(self, tiling: "kernels.RowTiling | None") -> None:
        """Attach (or clear) the execution tiling for blocked products.

        Every subsequent ``(n, B)`` :meth:`propagate` /
        :meth:`propagate_decayed` runs through
        :func:`repro.kernels.spmm_tiled` with this schedule.  Results are
        bitwise identical to the untiled path — this is an execution-
        schedule hint, not a numeric setting — which is why the logically
        immutable graph may carry it.  ``Engine(..., reorder="slashburn")``
        attaches a hub-aligned tiling automatically.
        """
        if tiling is not None and tiling.num_rows != self._n:
            raise GraphFormatError(
                f"tiling covers {tiling.num_rows} rows but the graph has "
                f"{self._n} nodes"
            )
        self._spmm_tiling = tiling

    def propagate(self, x: np.ndarray) -> np.ndarray:
        """Apply the column-stochastic operator: return ``Ã^T x`` (plus the
        uniform dangling correction when the policy is ``"uniform"``).

        ``x`` may be a single length-``n`` vector or an ``(n, B)`` matrix
        whose columns are propagated independently — the batched query
        engine pushes a whole seed batch through the iteration with one
        sparse matmul per step.

        This is the single SpMV/SpMM at the heart of every CPI iteration
        (Algorithm 1, line 4 — without the ``1-c`` decay, which the callers
        apply so the operator itself stays exactly stochastic).  The
        product runs on the active :mod:`repro.kernels` backend; the
        NumPy fallback is bitwise identical to ``Ã^T @ x``.  A float32
        operand is multiplied against a cached float32 cast of the
        operator, keeping the whole product in single precision.
        """
        operator = self._operator_for(None, x.dtype)
        if x.ndim == 1:
            y = kernels.spmv(operator, x)
        elif self._spmm_tiling is not None:
            y = kernels.spmm_tiled(operator, x, tiling=self._spmm_tiling)
        else:
            y = kernels.spmm(operator, x)
        if self._dangling.size and self._dangling_policy == "uniform":
            # Per-column leaked mass; a scalar for 1-D input, a length-B
            # row for matrix input (broadcast over every node).
            leaked = x[self._dangling].sum(axis=0)
            if np.any(leaked != 0.0):
                y += leaked / self._n
        return y

    def _operator_for(self, decay: float | None, dtype) -> sp.csr_array:
        """``Ã^T``, optionally pre-scaled by ``decay`` and cast to ``dtype``.

        The base float64 un-decayed operator is returned as-is; every
        other combination is built once and cached (index arrays shared,
        one data-array copy each).
        """
        dtype = np.dtype(dtype)
        if dtype not in (np.float32, np.float64):
            dtype = np.dtype(np.float64)
        if decay is None and dtype == np.float64:
            return self._transition_t
        key = (decay, dtype.name)
        operator = self._operator_cache.get(key)
        if operator is None:
            base = self._transition_t
            operator = sp.csr_array(
                (kernels.scaled_values(base.data, decay, dtype),
                 base.indices, base.indptr),
                shape=base.shape,
            )
            self._operator_cache[key] = operator
        return operator

    def decayed_operator(self, decay: float, dtype=np.float64) -> sp.csr_array:
        """The cached pre-scaled operator ``decay · Ã^T`` in CSR form.

        The value array is scaled once (scaled-then-cast for float32) and
        cached per ``(decay, dtype)``; the index structure is shared with
        :attr:`transition_transpose`, so an extra entry costs only one
        data-array copy.
        """
        return self._operator_for(decay, dtype)

    def operator_cache_nbytes(self) -> int:
        """Bytes held by the cached pre-scaled/pre-cast operator copies
        (data arrays only — index arrays are shared with the base)."""
        return int(
            sum(op.data.nbytes for op in self._operator_cache.values())
        )

    def propagate_decayed(
        self, x: np.ndarray, decay: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Apply the decayed operator: return ``decay · Ã^T x``.

        Functionally ``decay * propagate(x)``, but the decay is folded into
        a cached copy of the operator's value array
        (:meth:`decayed_operator`), fusing the post-multiply pass into the
        SpMV/SpMM itself.  This is the step CPI performs every iteration,
        so both the single and the batched online phases call it — keeping
        their floating-point operations, and therefore their results,
        identical.

        ``out`` optionally supplies a preallocated result buffer matching
        ``x`` in shape and dtype (a vector for SpMV, an ``(n, B)`` matrix
        for SpMM); reusing one across iterations avoids the allocation
        and page-fault churn of a fresh buffer per step.  The returned
        array is the result either way (it is ``out`` only when the
        buffer was usable).
        """
        operator = self._operator_for(decay, x.dtype)
        if out is not None and (
            out.shape != x.shape
            or out.dtype != operator.data.dtype
            or not out.flags.c_contiguous
            or out is x
        ):
            out = None  # unusable buffer: fall back to allocating
        if x.ndim == 1:
            y = kernels.spmv(operator, x, out=out)
        elif self._spmm_tiling is not None:
            # CPI/TPA batched iterate loops land here: every (n, B) step
            # of the online phase runs the tiled schedule once a
            # reordering has attached one.
            y = kernels.spmm_tiled(operator, x, out=out, tiling=self._spmm_tiling)
        else:
            y = kernels.spmm(operator, x, out=out)
        if self._dangling.size and self._dangling_policy == "uniform":
            leaked = x[self._dangling].sum(axis=0)
            if np.any(leaked != 0.0):
                y += (decay / self._n) * leaked
        return y

    # -- structural helpers -----------------------------------------------------

    def out_neighbors(self, node: int) -> np.ndarray:
        """Targets of the out-edges of ``node``."""
        row = self._adjacency
        return row.indices[row.indptr[node] : row.indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Sources of the in-edges of ``node``."""
        col = self._transition_t
        return col.indices[col.indptr[node] : col.indptr[node + 1]]

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the edge list as ``(src, dst)`` arrays."""
        coo = self._adjacency.tocoo()
        return coo.row.astype(np.int64), coo.col.astype(np.int64)

    def undirected_view(self) -> sp.csr_array:
        """Symmetrized binary adjacency (used by SlashBurn and partitioning)."""
        sym = self._adjacency + self._adjacency.T
        sym = sym.tocsr()
        sym.data[:] = 1.0
        return sym

    def permute(self, perm: np.ndarray) -> "Graph":
        """Return a graph with nodes relabeled so old node ``perm[i]`` becomes
        new node ``i`` (i.e. ``perm`` lists old ids in their new order)."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self._n,) or not np.array_equal(
            np.sort(perm), np.arange(self._n)
        ):
            raise GraphFormatError("perm must be a permutation of 0..n-1")
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(self._n)
        src, dst = self.edges()
        return Graph(
            self._n,
            inverse[src],
            inverse[dst],
            dangling=self._dangling_policy,
            keep_self_loops=True,
        )

    def subgraph(self, nodes: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Return the induced subgraph on ``nodes`` plus the node mapping.

        The result's node ``i`` corresponds to original node ``nodes[i]``.
        Induced subgraphs may contain dangling nodes even when the parent
        does not, so the subgraph always uses the ``"selfloop"`` policy.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        sub = self._adjacency[nodes][:, nodes]
        coo = sp.coo_array(sub)
        graph = Graph(
            nodes.size, coo.row, coo.col, dangling="selfloop", keep_self_loops=True
        )
        return graph, nodes

    def reverse(self) -> "Graph":
        """Return the graph with every edge reversed."""
        src, dst = self.edges()
        return Graph(self._n, dst, src, dangling=self._dangling_policy,
                     keep_self_loops=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(n={self._n}, m={self.num_edges}, "
            f"dangling={self._dangling.size}, policy={self._dangling_policy!r})"
        )
