"""SlashBurn hub/spoke node ordering (Kang & Faloutsos, ICDM 2011).

Real-world graphs are not "caveman" graphs: removing a handful of hub nodes
shatters them into a giant connected component plus many tiny "spokes".
SlashBurn exploits this by repeatedly

1. removing the ``k`` highest-degree nodes (*hubs*) and placing them at the
   front of the ordering,
2. placing the nodes of all non-giant connected components (*spokes*) at the
   back, and
3. recursing on the giant connected component,

which concentrates the nonzeros of the permuted adjacency matrix into a
thin hub band plus a block-diagonal remainder.  BEAR and BePI both rely on
this ordering to make their ``H11`` block (the non-hub part) block diagonal
with small blocks, so block-wise LU inversion is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["SlashBurnOrdering", "slashburn"]


@dataclass(frozen=True)
class SlashBurnOrdering:
    """Result of a SlashBurn run.

    Attributes
    ----------
    permutation:
        Old node ids in new order: hubs first (in removal order), then the
        final giant-component remainder, then spokes (in reverse discovery
        order, matching the original algorithm's back-filling).
    num_hubs:
        Total number of hub nodes across all iterations.  In the permuted
        matrix, rows/cols ``num_hubs..n-1`` form the block-diagonal
        non-hub part.
    blocks:
        List of arrays of *new* node ids (each ``>= num_hubs``), one per
        connected component of the non-hub subgraph.  Concatenated they
        cover ``num_hubs..n-1``.
    iterations:
        Number of hub-removal rounds performed.
    """

    permutation: np.ndarray
    num_hubs: int
    blocks: list[np.ndarray]
    iterations: int

    def block_starts(self) -> np.ndarray:
        """First new node id of every non-hub block, ascending.

        These are the natural cut points of the permuted operator: a row
        tile closed on a block start gathers only from its own blocks
        plus the hub band, which is what makes the blocked SpMM
        (:func:`repro.kernels.row_tiling` with ``block_starts``) cache
        friendly.  Empty when the graph is all hubs.
        """
        if not self.blocks:
            return np.empty(0, dtype=np.int64)
        return np.asarray(
            [int(block[0]) for block in self.blocks], dtype=np.int64
        )

    def block_boundaries(self) -> np.ndarray:
        """Every natural cut point of the permuted operator, ascending:
        the hub/spoke frontier, each non-hub block start, and ``n``.

        This is the candidate set row shards and tiles may close on —
        cutting anywhere else would split a community block across two
        stripes.  :func:`repro.sharding.ShardPlan.from_slashburn` packs
        shard boundaries from exactly this set.
        """
        n = int(self.permutation.size)
        cuts = np.concatenate(
            [
                np.asarray([self.num_hubs], dtype=np.int64),
                self.block_starts(),
                np.asarray([n], dtype=np.int64),
            ]
        )
        return np.unique(cuts[(cuts >= 0) & (cuts <= n)])


def slashburn(graph: Graph, k: int | None = None, max_block: int | None = None) -> SlashBurnOrdering:
    """Compute a SlashBurn ordering of ``graph``.

    Parameters
    ----------
    graph:
        Input digraph; hub selection uses total (in+out) degree on the
        symmetrized adjacency, as in the original paper.
    k:
        Hubs removed per iteration.  Defaults to ``max(1, round(0.005 n))``,
        the 0.5 % used by BEAR.
    max_block:
        Stop recursing once the giant component is at most this size
        (defaults to ``k``); the remainder is kept as one final block.

    Returns
    -------
    SlashBurnOrdering
    """
    n = graph.num_nodes
    if n == 0:
        raise ParameterError("slashburn needs a non-empty graph")
    if k is None:
        k = max(1, int(round(0.005 * n)))
    if k < 1:
        raise ParameterError("k must be at least 1")
    if max_block is None:
        max_block = max(k, 2)

    sym = graph.undirected_view().tocsr()

    # `alive` tracks nodes still in the shrinking giant component.
    alive = np.arange(n, dtype=np.int64)
    hubs: list[np.ndarray] = []
    spoke_groups: list[np.ndarray] = []  # appended front-to-back of the tail
    iterations = 0

    while alive.size > max_block:
        iterations += 1
        sub = sym[alive][:, alive]
        degree = np.asarray(sub.sum(axis=1)).ravel()

        take = min(k, alive.size)
        # Highest-degree nodes first; stable tie-break on node id.
        order = np.lexsort((alive, -degree))
        hub_local = order[:take]
        hubs.append(alive[hub_local])

        remain_local = np.setdiff1d(
            np.arange(alive.size, dtype=np.int64), hub_local, assume_unique=False
        )
        if remain_local.size == 0:
            alive = np.empty(0, dtype=np.int64)
            break

        remainder = sub[remain_local][:, remain_local]
        count, labels = connected_components(remainder, directed=False)
        sizes = np.bincount(labels, minlength=count)
        giant = int(np.argmax(sizes))

        spokes_local = remain_local[labels != giant]
        if spokes_local.size:
            # Spokes go to the back; order by component then id so the
            # permuted matrix keeps components contiguous.
            spoke_labels = labels[labels != giant]
            order_sp = np.lexsort((alive[spokes_local], spoke_labels))
            spoke_groups.append(alive[spokes_local[order_sp]])
        alive = alive[remain_local[labels == giant]]

    hub_ids = (
        np.concatenate(hubs) if hubs else np.empty(0, dtype=np.int64)
    )
    # Tail: final giant remainder first, then spoke groups in reverse
    # discovery order (later-discovered spokes sit closer to the middle).
    tail_parts = [alive] + spoke_groups[::-1]
    tail = (
        np.concatenate([part for part in tail_parts if part.size])
        if any(part.size for part in tail_parts)
        else np.empty(0, dtype=np.int64)
    )
    permutation = np.concatenate([hub_ids, tail])
    num_hubs = int(hub_ids.size)

    blocks = _nonhub_blocks(sym, permutation, num_hubs)
    return SlashBurnOrdering(
        permutation=permutation,
        num_hubs=num_hubs,
        blocks=blocks,
        iterations=iterations,
    )


def _nonhub_blocks(
    sym: sp.csr_array, permutation: np.ndarray, num_hubs: int
) -> list[np.ndarray]:
    """Connected components of the non-hub subgraph, as new-id arrays."""
    n = permutation.size
    if num_hubs >= n:
        return []
    nonhub_old = permutation[num_hubs:]
    sub = sym[nonhub_old][:, nonhub_old]
    count, labels = connected_components(sub, directed=False)
    blocks: list[np.ndarray] = []
    for comp in range(count):
        local = np.flatnonzero(labels == comp)
        blocks.append(local + num_hubs)
    # Order blocks by their first new id so they are contiguous in the
    # permuted matrix ordering.
    blocks.sort(key=lambda b: int(b[0]))
    return blocks
