"""Disk-resident graph storage — the paper's stated future work.

The conclusion of the paper lists "extending TPA into a disk-based RWR
method to handle huge, disk-resident graphs" as future work.  This module
provides that extension: :class:`DiskGraph` stores the transition operator
``Ã^T`` as row stripes on disk and streams them through memory one stripe
at a time during :meth:`propagate`.

Because CPI (and therefore TPA and PageRank) touches the graph *only*
through ``num_nodes`` and ``propagate``, a :class:`DiskGraph` can be
passed anywhere a :class:`~repro.graph.graph.Graph` is used for CPI-based
computation — ``TPA.preprocess(disk_graph)`` and ``TPA.query`` work
unchanged.  Resident memory is ``O(n)`` for the iteration vectors plus one
stripe of edges, instead of ``O(n + m)``.

Each stripe is applied through :func:`repro.kernels.spmv` /
:func:`repro.kernels.spmm` (the PR 2 rule: no iterate loop lives outside
the kernel layer), so the disk-backed substrate computes every output row
with exactly the arithmetic the in-memory :class:`Graph` uses — including
the pre-scaled decayed operator — and the two substrates agree bitwise.
Iteration vectors come from a retained :class:`~repro.kernels.Workspace`
(two alternating buffers), so a CPI sweep over a disk graph allocates
nothing per step beyond the streamed stripe itself.

Example
-------
>>> from repro.graph import community_graph
>>> from repro.graph.diskgraph import DiskGraph
>>> from repro.core import TPA
>>> graph = community_graph(500, avg_degree=6, seed=1)
>>> disk = DiskGraph.build(graph, "/tmp/disk_demo", rows_per_stripe=100)
>>> method = TPA(s_iteration=5, t_iteration=10)
>>> method.preprocess(disk)
>>> scores = method.query(0)
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.exceptions import GraphFormatError, ParameterError
from repro.graph.graph import Graph

__all__ = ["DiskGraph"]

_META_FILE = "meta.json"


class DiskGraph:
    """A column-stochastic propagation operator streamed from disk.

    Build one with :meth:`build` (from an in-memory graph) or open an
    existing directory with the constructor.

    Parameters
    ----------
    directory:
        Directory containing ``meta.json`` and the stripe files written by
        :meth:`build`.
    """

    def __init__(self, directory: str | os.PathLike):
        self._dir = Path(directory)
        meta_path = self._dir / _META_FILE
        if not meta_path.exists():
            raise GraphFormatError(f"{meta_path} not found; run DiskGraph.build first")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != "repro-diskgraph-v1":
            raise GraphFormatError(f"unrecognized disk graph format in {meta_path}")
        self._n = int(meta["num_nodes"])
        self._m = int(meta["num_edges"])
        self._rows_per_stripe = int(meta["rows_per_stripe"])
        self._num_stripes = int(meta["num_stripes"])
        self._dangling_policy = meta["dangling_policy"]
        dangling_path = self._dir / "dangling.npy"
        self._dangling = (
            np.load(dangling_path) if dangling_path.exists() else np.empty(0, np.int64)
        )
        # Retained iteration vectors: propagate() alternates between the
        # two buffers of this pair so repeated sweeps (CPI, PageRank)
        # reuse memory instead of allocating one (n,)/(n, B) result per
        # step.  Streamed stripes stay transient by design.
        self._workspace = kernels.Workspace()

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: Graph,
        directory: str | os.PathLike,
        rows_per_stripe: int = 65_536,
    ) -> "DiskGraph":
        """Serialize ``graph``'s transition operator into stripe files.

        Parameters
        ----------
        graph:
            Source in-memory graph.
        directory:
            Destination directory (created if missing).
        rows_per_stripe:
            Rows of ``Ã^T`` per stripe file; smaller stripes mean a lower
            resident-memory peak during :meth:`propagate`.
        """
        if rows_per_stripe < 1:
            raise ParameterError("rows_per_stripe must be at least 1")
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)

        operator = graph.transition_transpose
        n = graph.num_nodes
        num_stripes = (n + rows_per_stripe - 1) // rows_per_stripe

        for stripe in range(num_stripes):
            begin = stripe * rows_per_stripe
            end = min(begin + rows_per_stripe, n)
            block = operator[begin:end]
            np.save(path / f"stripe_{stripe}_indptr.npy", block.indptr)
            np.save(path / f"stripe_{stripe}_indices.npy", block.indices)
            np.save(path / f"stripe_{stripe}_data.npy", block.data)

        if graph.dangling_nodes.size:
            np.save(path / "dangling.npy", graph.dangling_nodes)

        meta = {
            "format": "repro-diskgraph-v1",
            "num_nodes": n,
            "num_edges": graph.num_edges,
            "rows_per_stripe": rows_per_stripe,
            "num_stripes": num_stripes,
            "dangling_policy": graph.dangling_policy,
        }
        with open(path / _META_FILE, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        return cls(path)

    # -- Graph protocol used by CPI --------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    @property
    def num_stripes(self) -> int:
        return self._num_stripes

    @property
    def dangling_nodes(self) -> np.ndarray:
        return self._dangling

    @property
    def dangling_policy(self) -> str:
        return self._dangling_policy

    def stripe_rows(self, stripe: int) -> tuple[int, int]:
        """Row range ``[begin, end)`` of ``Ã^T`` covered by ``stripe``."""
        if not 0 <= stripe < self._num_stripes:
            raise ParameterError(
                f"stripe index must lie in [0, {self._num_stripes - 1}]"
            )
        begin = stripe * self._rows_per_stripe
        return begin, min(begin + self._rows_per_stripe, self._n)

    def stripe_operator(self, stripe: int) -> sp.csr_array:
        """Load one stripe of ``Ã^T`` as a ``(rows, n)`` CSR matrix.

        The arrays come straight from the stripe files (row data in
        stored order, float64), so applying the stripe with
        :func:`repro.kernels.spmv`/``spmm`` reproduces the in-memory
        operator's rows bit for bit.  :meth:`propagate` streams these;
        :class:`repro.sharding.ShardStore` re-slices them into
        shard-aligned row stripes for worker processes.
        """
        begin, end = self.stripe_rows(stripe)
        indptr = np.load(self._dir / f"stripe_{stripe}_indptr.npy")
        indices = np.load(self._dir / f"stripe_{stripe}_indices.npy")
        data = np.load(self._dir / f"stripe_{stripe}_data.npy")
        return sp.csr_array(
            (data, indices, indptr), shape=(end - begin, self._n)
        )

    def _output_buffer(
        self, x: np.ndarray, out: np.ndarray | None, dtype: np.dtype
    ) -> np.ndarray:
        """The result buffer for one propagate pass.

        Honors a caller-supplied ``out`` when it is usable (right shape
        and dtype, C-contiguous, not aliasing the operand — the same
        contract :meth:`Graph.propagate_decayed` applies), otherwise
        draws one of the two retained workspace buffers, picking
        whichever does not alias ``x`` so back-to-back sweeps can feed
        each result into the next call.
        """
        if out is not None and (
            out.shape == x.shape
            and out.dtype == dtype
            and out.flags.c_contiguous
            and not np.shares_memory(out, x)
        ):
            return out
        first, second = self._workspace.pair("propagate.out", x.shape, dtype)
        return second if np.shares_memory(first, x) else first

    def _stripe_apply(
        self,
        x: np.ndarray,
        decay: float | None,
        out: np.ndarray | None,
    ) -> np.ndarray:
        """``(decay ·) Ã^T x`` with one stripe of edges resident at a time.

        Each stripe is one :func:`repro.kernels.spmv`/``spmm`` call into
        the matching row slice of the output buffer.  ``decay`` is folded
        into the stripe's value array before the product — scaled (then
        cast, under the float32 policy) exactly as
        :meth:`Graph._operator_for` pre-scales the in-memory operator —
        so disk-backed and in-memory propagation agree bitwise.
        """
        if x.shape[0] != self._n or x.ndim not in (1, 2):
            raise ParameterError(
                f"operand shape {x.shape} does not match n={self._n}"
            )
        dtype = np.dtype(
            np.float32 if x.dtype == np.float32 else np.float64
        )
        if x.dtype != dtype:
            x = x.astype(dtype)
        x = np.ascontiguousarray(x)
        y = self._output_buffer(x, out, dtype)
        apply_stripe = kernels.spmv if x.ndim == 1 else kernels.spmm
        for stripe in range(self._num_stripes):
            begin, end = self.stripe_rows(stripe)
            block = self.stripe_operator(stripe)
            scaled = sp.csr_array(
                (kernels.scaled_values(block.data, decay, dtype),
                 block.indices, block.indptr),
                shape=block.shape,
            )
            apply_stripe(scaled, x, out=y[begin:end])
        if self._dangling.size and self._dangling_policy == "uniform":
            leaked = x[self._dangling].sum(axis=0)
            if np.any(leaked != 0.0):
                if decay is None:
                    y += leaked / self._n
                else:
                    y += (decay / self._n) * leaked
        return y

    def propagate(self, x: np.ndarray) -> np.ndarray:
        """``Ã^T x`` with one stripe of edges resident at a time.

        ``x`` may be a length-``n`` vector or an ``(n, B)`` matrix whose
        columns propagate independently (the batched online phase).  The
        result lives in a retained workspace buffer — alternating between
        two, so passing a previous result back in is safe — and is
        overwritten by a later call; copy it to keep it.
        """
        return self._stripe_apply(x, None, None)

    def propagate_decayed(
        self, x: np.ndarray, decay: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``decay · Ã^T x`` — the fused step in-memory graphs provide.

        The decay is folded into each streamed stripe's value array
        before the product, matching :meth:`Graph.propagate_decayed`'s
        pre-scaled operator bit for bit.  ``out`` optionally supplies the
        result buffer (same contract as the in-memory graph); without
        one, a retained workspace buffer is used.
        """
        return self._stripe_apply(x, float(decay), out)

    def resident_bytes(self) -> int:
        """Peak extra memory a propagate call needs beyond the vectors:
        one stripe of (indptr, indices, data) plus the retained
        iteration buffers."""
        peak = 0
        for stripe in range(self._num_stripes):
            total = 0
            for part in ("indptr", "indices", "data"):
                file = self._dir / f"stripe_{stripe}_{part}.npy"
                total += file.stat().st_size
            peak = max(peak, total)
        return peak + self._workspace.nbytes()

    def disk_bytes(self) -> int:
        """Total on-disk footprint of all stripe files."""
        return sum(
            file.stat().st_size for file in self._dir.glob("stripe_*.npy")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskGraph(n={self._n}, m={self._m}, stripes={self._num_stripes}, "
            f"dir={str(self._dir)!r})"
        )
