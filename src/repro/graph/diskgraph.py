"""Disk-resident graph storage — the paper's stated future work.

The conclusion of the paper lists "extending TPA into a disk-based RWR
method to handle huge, disk-resident graphs" as future work.  This module
provides that extension: :class:`DiskGraph` stores the transition operator
``Ã^T`` as row stripes on disk and streams them through memory one stripe
at a time during :meth:`propagate`.

Because CPI (and therefore TPA and PageRank) touches the graph *only*
through ``num_nodes`` and ``propagate``, a :class:`DiskGraph` can be
passed anywhere a :class:`~repro.graph.graph.Graph` is used for CPI-based
computation — ``TPA.preprocess(disk_graph)`` and ``TPA.query`` work
unchanged.  Resident memory is ``O(n)`` for the iteration vectors plus one
stripe of edges, instead of ``O(n + m)``.

Example
-------
>>> from repro.graph import community_graph
>>> from repro.graph.diskgraph import DiskGraph
>>> from repro.core import TPA
>>> graph = community_graph(500, avg_degree=6, seed=1)
>>> disk = DiskGraph.build(graph, "/tmp/disk_demo", rows_per_stripe=100)
>>> method = TPA(s_iteration=5, t_iteration=10)
>>> method.preprocess(disk)
>>> scores = method.query(0)
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.exceptions import GraphFormatError, ParameterError
from repro.graph.graph import Graph

__all__ = ["DiskGraph"]

_META_FILE = "meta.json"


class DiskGraph:
    """A column-stochastic propagation operator streamed from disk.

    Build one with :meth:`build` (from an in-memory graph) or open an
    existing directory with the constructor.

    Parameters
    ----------
    directory:
        Directory containing ``meta.json`` and the stripe files written by
        :meth:`build`.
    """

    def __init__(self, directory: str | os.PathLike):
        self._dir = Path(directory)
        meta_path = self._dir / _META_FILE
        if not meta_path.exists():
            raise GraphFormatError(f"{meta_path} not found; run DiskGraph.build first")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != "repro-diskgraph-v1":
            raise GraphFormatError(f"unrecognized disk graph format in {meta_path}")
        self._n = int(meta["num_nodes"])
        self._m = int(meta["num_edges"])
        self._rows_per_stripe = int(meta["rows_per_stripe"])
        self._num_stripes = int(meta["num_stripes"])
        self._dangling_policy = meta["dangling_policy"]
        dangling_path = self._dir / "dangling.npy"
        self._dangling = (
            np.load(dangling_path) if dangling_path.exists() else np.empty(0, np.int64)
        )

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: Graph,
        directory: str | os.PathLike,
        rows_per_stripe: int = 65_536,
    ) -> "DiskGraph":
        """Serialize ``graph``'s transition operator into stripe files.

        Parameters
        ----------
        graph:
            Source in-memory graph.
        directory:
            Destination directory (created if missing).
        rows_per_stripe:
            Rows of ``Ã^T`` per stripe file; smaller stripes mean a lower
            resident-memory peak during :meth:`propagate`.
        """
        if rows_per_stripe < 1:
            raise ParameterError("rows_per_stripe must be at least 1")
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)

        operator = graph.transition_transpose
        n = graph.num_nodes
        num_stripes = (n + rows_per_stripe - 1) // rows_per_stripe

        for stripe in range(num_stripes):
            begin = stripe * rows_per_stripe
            end = min(begin + rows_per_stripe, n)
            block = operator[begin:end]
            np.save(path / f"stripe_{stripe}_indptr.npy", block.indptr)
            np.save(path / f"stripe_{stripe}_indices.npy", block.indices)
            np.save(path / f"stripe_{stripe}_data.npy", block.data)

        if graph.dangling_nodes.size:
            np.save(path / "dangling.npy", graph.dangling_nodes)

        meta = {
            "format": "repro-diskgraph-v1",
            "num_nodes": n,
            "num_edges": graph.num_edges,
            "rows_per_stripe": rows_per_stripe,
            "num_stripes": num_stripes,
            "dangling_policy": graph.dangling_policy,
        }
        with open(path / _META_FILE, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        return cls(path)

    # -- Graph protocol used by CPI --------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    @property
    def num_stripes(self) -> int:
        return self._num_stripes

    @property
    def dangling_nodes(self) -> np.ndarray:
        return self._dangling

    @property
    def dangling_policy(self) -> str:
        return self._dangling_policy

    def propagate(self, x: np.ndarray) -> np.ndarray:
        """``Ã^T x`` with one stripe of edges resident at a time.

        ``x`` may be a length-``n`` vector or an ``(n, B)`` matrix whose
        columns propagate independently (the batched online phase).
        """
        if x.shape[0] != self._n or x.ndim not in (1, 2):
            raise ParameterError(
                f"operand shape {x.shape} does not match n={self._n}"
            )
        y = np.empty(x.shape, dtype=np.float64)
        for stripe in range(self._num_stripes):
            begin = stripe * self._rows_per_stripe
            end = min(begin + self._rows_per_stripe, self._n)
            indptr = np.load(self._dir / f"stripe_{stripe}_indptr.npy")
            indices = np.load(self._dir / f"stripe_{stripe}_indices.npy")
            data = np.load(self._dir / f"stripe_{stripe}_data.npy")
            # Row-stripe SpMV without building a scipy matrix: segment sums
            # of data * x[indices] over the indptr boundaries.
            if x.ndim == 1:
                products = data * x[indices]
                pad = np.zeros(1)
            else:
                products = data[:, np.newaxis] * x[indices]
                pad = np.zeros((1, x.shape[1]))
            segment = np.zeros((end - begin,) + x.shape[1:])
            if products.size:
                # reduceat quirks: an empty segment repeats a neighbouring
                # value, and a start index == len(products) (trailing empty
                # rows) is out of bounds.  Padding one zero row keeps every
                # start index valid without disturbing any real segment
                # boundary; empty segments are masked out afterwards.
                padded = np.concatenate([products, pad], axis=0)
                sums = np.add.reduceat(padded, indptr[:-1], axis=0)
                nonempty = np.diff(indptr) > 0
                segment[nonempty] = sums[nonempty]
            y[begin:end] = segment
        if self._dangling.size and self._dangling_policy == "uniform":
            leaked = x[self._dangling].sum(axis=0)
            if np.any(leaked != 0.0):
                y += leaked / self._n
        return y

    def propagate_decayed(
        self, x: np.ndarray, decay: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``decay · Ã^T x`` — the fused step in-memory graphs provide.

        The disk-backed substrate has no cached pre-scaled operator (its
        data lives in stripes on disk), so this simply post-scales
        :meth:`propagate`; ``out`` is accepted for interface compatibility
        and ignored.
        """
        y = self.propagate(x)
        y *= decay
        return y

    def resident_bytes(self) -> int:
        """Peak extra memory a propagate call needs beyond the vectors:
        one stripe of (indptr, indices, data)."""
        peak = 0
        for stripe in range(self._num_stripes):
            total = 0
            for part in ("indptr", "indices", "data"):
                file = self._dir / f"stripe_{stripe}_{part}.npy"
                total += file.stat().st_size
            peak = max(peak, total)
        return peak

    def disk_bytes(self) -> int:
        """Total on-disk footprint of all stripe files."""
        return sum(
            file.stat().st_size for file in self._dir.glob("stripe_*.npy")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskGraph(n={self._n}, m={self._m}, stripes={self._num_stripes}, "
            f"dir={str(self._dir)!r})"
        )
