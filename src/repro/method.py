"""Common interface for all RWR / personalized-PageRank methods.

Every method in the paper's evaluation — TPA itself and the six baselines —
follows the same two-phase protocol: an optional per-graph *preprocessing*
phase, then a per-seed *online* phase.  :class:`PPRMethod` captures that
protocol so the experiment harness can time, size, and score every method
uniformly (Figures 1, 7, 10).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import NotPreprocessedError
from repro.graph.graph import Graph

__all__ = ["PPRMethod"]


class PPRMethod(ABC):
    """Abstract base class for single-source RWR estimators.

    Subclasses set :attr:`name` and implement :meth:`_preprocess`,
    :meth:`_query`, and :meth:`preprocessed_bytes`.

    The public wrappers enforce the protocol: :meth:`query` raises
    :class:`~repro.exceptions.NotPreprocessedError` if the method has not
    been bound to a graph, and validates the seed range.
    """

    #: Human-readable method name used in reports (e.g. ``"TPA"``).
    name: str = "abstract"

    def __init__(self) -> None:
        self._graph: Graph | None = None

    # -- public protocol -------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The graph this method was preprocessed for."""
        if self._graph is None:
            raise NotPreprocessedError(
                f"{self.name}: preprocess() must run before the online phase"
            )
        return self._graph

    @property
    def is_preprocessed(self) -> bool:
        """Whether :meth:`preprocess` has completed."""
        return self._graph is not None

    def preprocess(self, graph: Graph) -> None:
        """Run the per-graph preprocessing phase.

        Methods without a preprocessing phase (e.g. BRPPR) still bind the
        graph here so the online phase can run.
        """
        self._graph = graph
        self._preprocess(graph)

    def query(self, seed: int) -> np.ndarray:
        """Return the length-``n`` approximate RWR score vector for ``seed``."""
        graph = self.graph
        if not 0 <= seed < graph.num_nodes:
            raise ValueError(
                f"seed {seed} out of range for graph with {graph.num_nodes} nodes"
            )
        return self._query(int(seed))

    def top_k(self, seed: int, k: int, exclude_seed: bool = True,
              exclude_neighbors: bool = False) -> np.ndarray:
        """Top-``k`` nodes by approximate RWR score from ``seed``.

        This is the ranking primitive behind the paper's application
        examples (e.g. Twitter's top-500 "Who to Follow").

        Parameters
        ----------
        seed:
            Query node.
        k:
            Result size.
        exclude_seed:
            Drop the seed itself from the ranking (it always carries at
            least mass ``c``).
        exclude_neighbors:
            Also drop the seed's existing out-neighbors — the standard
            recommendation setting where known links are not re-suggested.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        scores = self.query(seed)
        banned = set()
        if exclude_seed:
            banned.add(int(seed))
        if exclude_neighbors and hasattr(self.graph, "out_neighbors"):
            banned.update(int(v) for v in self.graph.out_neighbors(seed))
        order = np.argsort(-scores, kind="stable")
        picks = [int(node) for node in order if int(node) not in banned]
        return np.asarray(picks[:k], dtype=np.int64)

    @abstractmethod
    def preprocessed_bytes(self) -> int:
        """Size in bytes of the preprocessed data this method must keep
        resident for the online phase (Figure 1(a) / 10(a)).

        Excludes the graph itself, which every method shares.
        """

    # -- subclass hooks ----------------------------------------------------------

    @abstractmethod
    def _preprocess(self, graph: Graph) -> None:
        """Method-specific preprocessing; ``graph`` is already bound."""

    @abstractmethod
    def _query(self, seed: int) -> np.ndarray:
        """Method-specific online phase for a validated seed."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "preprocessed" if self.is_preprocessed else "unbound"
        return f"{type(self).__name__}({state})"
