"""Common interface for all RWR / personalized-PageRank methods.

Every method in the paper's evaluation — TPA itself and the six baselines —
follows the same two-phase protocol: an optional per-graph *preprocessing*
phase, then a per-seed *online* phase.  :class:`PPRMethod` captures that
protocol so the experiment harness can time, size, and score every method
uniformly (Figures 1, 7, 10).

The serving workload the paper motivates TPA with (Twitter-scale
"Who to Follow" — top-500 RWR for millions of users) is *many seeds against
one preprocessed graph*, so the protocol is batched: :meth:`PPRMethod.query_many`
answers a whole seed batch in one call, and methods whose online phase is a
power iteration override :meth:`PPRMethod._query_many` to push the entire
seed *matrix* through the iteration — one sparse matmul per step for the
whole batch instead of one Python-level query per seed.  The higher-level
request/result machinery lives in :mod:`repro.engine`.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.exceptions import NotPreprocessedError, ParameterError
from repro.graph.graph import Graph
from repro.kernels import Workspace, select_top_k, select_top_k_many

__all__ = ["PPRMethod", "select_top_k", "banned_mask", "banned_mask_many"]

#: Largest (B, n) exclusion-mask entry count drawn from the retained
#: workspace (64 Mi entries = 64 MB of bool).  Serving loops stay under
#: it (Engine blocks are stream_block wide), so they reuse one buffer;
#: a one-off huge direct top_k_many call allocates transiently instead
#: of pinning batch-proportional memory — and inflating
#: preprocessed_bytes — for the method's lifetime.
_RANK_MASK_RETAIN_LIMIT = 1 << 26


def banned_mask(
    graph: Graph,
    seed: int,
    exclude_seed: bool,
    exclude_neighbors: bool,
    out: np.ndarray | None = None,
) -> np.ndarray | None:
    """Boolean mask of nodes excluded from a top-k ranking for ``seed``.

    Returns ``None`` when nothing is excluded (the common fast path).
    ``out`` optionally supplies a length-``n`` boolean buffer that is
    cleared and reused — serving loops pass a retained workspace buffer
    instead of allocating a fresh mask per request.
    """
    if not (exclude_seed or exclude_neighbors):
        return None
    n = graph.num_nodes
    if out is not None and out.shape == (n,) and out.dtype == np.bool_:
        banned = out
        banned[:] = False
    else:
        banned = np.zeros(n, dtype=bool)
    if exclude_seed:
        banned[seed] = True
    if exclude_neighbors and hasattr(graph, "out_neighbors"):
        neighbors = np.asarray(graph.out_neighbors(seed), dtype=np.int64)
        if neighbors.size:
            banned[neighbors] = True
    return banned


def banned_mask_many(
    graph: Graph,
    seeds: np.ndarray,
    exclude_seeds: bool,
    exclude_neighbors: bool,
    out: np.ndarray | None = None,
) -> np.ndarray | None:
    """Per-row exclusion masks for a seed batch: the ``(B, n)`` analog of
    :func:`banned_mask` (row ``j`` masks the ranking of ``seeds[j]``).

    Returns ``None`` when nothing is excluded.  Neighbor rows are filled
    with one vectorized CSR gather when the graph exposes its adjacency;
    duck-typed substrates fall back to per-row ``out_neighbors`` calls.
    ``out`` has the same reuse contract as in :func:`banned_mask`.
    """
    if not (exclude_seeds or exclude_neighbors):
        return None
    n = graph.num_nodes
    batch = seeds.size
    if out is not None and out.shape == (batch, n) and out.dtype == np.bool_:
        banned = out
        banned[:] = False
    else:
        banned = np.zeros((batch, n), dtype=bool)
    if exclude_seeds:
        banned[np.arange(batch), seeds] = True
    if exclude_neighbors:
        adjacency = getattr(graph, "adjacency", None)
        if adjacency is not None:
            indptr = adjacency.indptr
            lengths = (indptr[seeds + 1] - indptr[seeds]).astype(np.int64)
            total = int(lengths.sum())
            if total:
                starts = np.repeat(indptr[seeds].astype(np.int64), lengths)
                resets = np.repeat(np.cumsum(lengths) - lengths, lengths)
                positions = np.arange(total, dtype=np.int64) - resets + starts
                rows = np.repeat(np.arange(batch), lengths)
                banned[rows, adjacency.indices[positions]] = True
        elif hasattr(graph, "out_neighbors"):
            for row, seed in enumerate(seeds.tolist()):
                neighbors = np.asarray(
                    graph.out_neighbors(seed), dtype=np.int64
                )
                if neighbors.size:
                    banned[row, neighbors] = True
    return banned


class PPRMethod(ABC):
    """Abstract base class for single-source RWR estimators.

    Subclasses set :attr:`name` and implement :meth:`_preprocess`,
    :meth:`_query`, and :meth:`preprocessed_bytes`.  Methods whose online
    phase vectorizes over seeds additionally override :meth:`_query_many`.

    The public wrappers enforce the protocol: :meth:`query` and
    :meth:`query_many` raise
    :class:`~repro.exceptions.NotPreprocessedError` if the method has not
    been bound to a graph, and validate every seed's type and range in one
    place (:meth:`validate_seed` / :meth:`validate_seeds`).
    """

    #: Human-readable method name used in reports (e.g. ``"TPA"``).
    name: str = "abstract"

    #: Whether the online phase accepts ``x0=`` fixed-point guesses
    #: (see :meth:`query_many`).  Methods whose online phase iterates to
    #: a convergence tolerance (CPI) opt in; truncated-series methods
    #: (TPA's fixed-length family sweep) cannot — their warm restart
    #: lives in re-preprocessing instead.
    supports_warm_start: bool = False

    def __init__(self) -> None:
        self._graph: Graph | None = None
        # Retained scratch shared by the online phase: iterate ping-pong
        # buffers (CPI/TPA), seed matrices (NB_LIN), and the ranking
        # masks of the top-k paths all draw from it, so repeat queries at
        # a stable batch shape allocate nothing.  Subclasses count it in
        # preprocessed_bytes — retained buffers are resident serving
        # state.
        self._workspace = Workspace()

    # -- public protocol -------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The graph this method was preprocessed for."""
        if self._graph is None:
            raise NotPreprocessedError(
                f"{self.name}: preprocess() must run before the online phase"
            )
        return self._graph

    @property
    def is_preprocessed(self) -> bool:
        """Whether :meth:`preprocess` has completed."""
        return self._graph is not None

    def preprocess(self, graph: Graph) -> None:
        """Run the per-graph preprocessing phase.

        Methods without a preprocessing phase (e.g. BRPPR) still bind the
        graph here so the online phase can run.
        """
        self._graph = graph
        self._preprocess(graph)

    def replicate(self) -> "PPRMethod":
        """An online-phase replica for concurrent serving.

        The replica shares every read-only attribute with the original —
        the graph and the (potentially huge) preprocessed arrays are
        *not* copied — but owns fresh :class:`~repro.kernels.Workspace`
        scratch, because retained iterate buffers are exactly the state
        two threads must never share mid-query.  Every
        ``Workspace``-typed instance attribute is replaced, and every
        :class:`numpy.random.Generator` attribute is spawned into an
        independent child stream (Monte-Carlo baselines mutate their RNG
        per query), so subclasses that keep such state are covered
        without overriding; a subclass with *other* per-query mutable
        state must override and reset it too.

        This is the unit :class:`repro.serving.Server` hands each worker
        thread (via :meth:`repro.engine.Engine.replicate`).
        """
        if not self.is_preprocessed:
            raise NotPreprocessedError(
                f"{self.name}: preprocess() must run before replicate()"
            )
        clone = copy.copy(self)
        for name, value in vars(self).items():
            if isinstance(value, Workspace):
                setattr(clone, name, Workspace())
            elif isinstance(value, np.random.Generator):
                setattr(clone, name, value.spawn(1)[0])
        # Replicas of one method form a family rooted at the original
        # instance — shared score caches key their bind identity on it.
        clone._replica_root = getattr(self, "_replica_root", self)
        return clone

    # -- seed validation (shared by every entry point) -------------------------

    def validate_seed(self, seed: int | np.integer) -> int:
        """Normalize one seed to a plain ``int`` and check its range.

        Accepts Python ints and any NumPy integer scalar; rejects bools,
        floats and other types with :class:`TypeError` (a truncated float
        seed is almost always a bug) and out-of-range ids with
        :class:`ValueError`.
        """
        if isinstance(seed, (bool, np.bool_)) or not isinstance(
            seed, (int, np.integer)
        ):
            raise TypeError(
                f"seed must be an integer node id, got {type(seed).__name__}"
            )
        seed = int(seed)
        n = self.graph.num_nodes
        if not 0 <= seed < n:
            raise ValueError(f"seed {seed} out of range for graph with {n} nodes")
        return seed

    def validate_seeds(self, seeds: Sequence[int] | np.ndarray) -> np.ndarray:
        """Normalize a seed batch to a 1-D ``int64`` array, checked in bulk.

        The dtype rules of :meth:`validate_seed` apply to the whole batch;
        an empty batch is allowed and yields an empty array.
        """
        arr = np.asarray(seeds)
        if arr.ndim != 1:
            raise ValueError(f"seeds must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            return np.empty(0, dtype=np.int64)
        if arr.dtype == bool or not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(
                f"seeds must be integer node ids, got dtype {arr.dtype}"
            )
        arr = arr.astype(np.int64, copy=False)
        n = self.graph.num_nodes
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi >= n:
            raise ValueError(
                f"seed ids must lie in [0, {n - 1}]; got range [{lo}, {hi}]"
            )
        return arr

    # -- online phase -----------------------------------------------------------

    def query(self, seed: int) -> np.ndarray:
        """Return the length-``n`` approximate RWR score vector for ``seed``."""
        return self._query(self.validate_seed(seed))

    def query_many(
        self,
        seeds: Sequence[int] | np.ndarray,
        x0: np.ndarray | None = None,
    ) -> np.ndarray:
        """Score a whole seed batch: returns a ``(len(seeds), n)`` matrix.

        Row ``i`` equals ``query(seeds[i])``.  The base implementation
        loops over :meth:`_query`; power-iteration methods (TPA, CPI,
        BRPPR/RPPR, NB_LIN, BEAR, BePI) override :meth:`_query_many` to
        propagate the whole seed matrix at once, which is the batched
        engine's headline speedup.

        ``x0`` optionally warm-starts the batch from per-seed guesses of
        the converged vectors (row ``i`` seeds ``seeds[i]``; an all-zero
        row means a cold start for that seed).  Only methods with
        :attr:`supports_warm_start` accept it — passing it to any other
        method raises :class:`~repro.exceptions.ParameterError` rather
        than silently ignoring the guess.
        """
        seeds_arr = self.validate_seeds(seeds)
        if seeds_arr.size == 0:
            return np.zeros((0, self.graph.num_nodes), dtype=np.float64)
        if x0 is not None:
            if not self.supports_warm_start:
                raise ParameterError(
                    f"{self.name} does not support x0 warm starts"
                )
            x0 = np.asarray(x0)
            if x0.shape != (seeds_arr.size, self.graph.num_nodes):
                raise ParameterError(
                    f"x0 must have shape ({seeds_arr.size}, "
                    f"{self.graph.num_nodes}); got {x0.shape}"
                )
            return self._query_many(seeds_arr, x0=x0)
        return self._query_many(seeds_arr)

    def top_k(self, seed: int, k: int, exclude_seed: bool = True,
              exclude_neighbors: bool = False) -> np.ndarray:
        """Top-``k`` nodes by approximate RWR score from ``seed``.

        This is the ranking primitive behind the paper's application
        examples (e.g. Twitter's top-500 "Who to Follow").

        Parameters
        ----------
        seed:
            Query node.
        k:
            Result size.
        exclude_seed:
            Drop the seed itself from the ranking (it always carries at
            least mass ``c``).
        exclude_neighbors:
            Also drop the seed's existing out-neighbors — the standard
            recommendation setting where known links are not re-suggested.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        seed = self.validate_seed(seed)
        scores = self._query(seed)
        if not (exclude_seed or exclude_neighbors):
            return select_top_k(scores, k)
        n = self.graph.num_nodes
        banned = banned_mask(
            self.graph, seed, exclude_seed, exclude_neighbors,
            out=self._workspace.request("rank.banned", (n,), np.bool_),
        )
        return select_top_k(
            scores, k, banned,
            scratch=self._workspace.request("rank.masked", (n,), np.float64),
        )

    def top_k_many(self, seeds: Sequence[int] | np.ndarray, k: int,
                   exclude_seeds: bool = True,
                   exclude_neighbors: bool = False) -> np.ndarray:
        """Top-``k`` rankings for a whole seed batch.

        Returns a ``(len(seeds), k)`` ``int64`` matrix; row ``i`` holds the
        ranking of ``seeds[i]`` best-first, padded with ``-1`` when fewer
        than ``k`` nodes remain after exclusion.  Scoring goes through
        :meth:`query_many`, so vectorized methods answer the whole batch
        with one pass over the graph, and selection goes through the
        batch-parallel :func:`repro.kernels.select_top_k_many` kernel —
        one call for the whole matrix, no per-row Python loop.  The
        exclusion masks are built vectorized into a retained workspace
        buffer, so a steady serving load allocates nothing here beyond
        the ``(B, k)`` result.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        seeds_arr = self.validate_seeds(seeds)
        scores = self.query_many(seeds_arr)
        if seeds_arr.size == 0:
            return np.empty((0, int(k)), dtype=np.int64)
        banned = None
        if exclude_seeds or exclude_neighbors:
            shape = (seeds_arr.size, self.graph.num_nodes)
            out = None
            if shape[0] * shape[1] <= _RANK_MASK_RETAIN_LIMIT:
                out = self._workspace.request(
                    "rank.banned_many", shape, np.bool_
                )
            banned = banned_mask_many(
                self.graph, seeds_arr, exclude_seeds, exclude_neighbors,
                out=out,
            )
        return select_top_k_many(scores, int(k), banned=banned)

    @abstractmethod
    def preprocessed_bytes(self) -> int:
        """Size in bytes of the preprocessed data this method must keep
        resident for the online phase (Figure 1(a) / 10(a)).

        Excludes the graph itself, which every method shares.
        """

    # -- subclass hooks ----------------------------------------------------------

    @abstractmethod
    def _preprocess(self, graph: Graph) -> None:
        """Method-specific preprocessing; ``graph`` is already bound."""

    @abstractmethod
    def _query(self, seed: int) -> np.ndarray:
        """Method-specific online phase for a validated seed."""

    def _query_many(self, seeds: np.ndarray) -> np.ndarray:
        """Method-specific batched online phase for validated seeds.

        ``seeds`` is a non-empty 1-D ``int64`` array.  The default loops
        over :meth:`_query`; vectorized methods override it.
        """
        return np.stack([self._query(int(seed)) for seed in seeds])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "preprocessed" if self.is_preprocessed else "unbound"
        return f"{type(self).__name__}({state})"
