"""Common interface for all RWR / personalized-PageRank methods.

Every method in the paper's evaluation — TPA itself and the six baselines —
follows the same two-phase protocol: an optional per-graph *preprocessing*
phase, then a per-seed *online* phase.  :class:`PPRMethod` captures that
protocol so the experiment harness can time, size, and score every method
uniformly (Figures 1, 7, 10).

The serving workload the paper motivates TPA with (Twitter-scale
"Who to Follow" — top-500 RWR for millions of users) is *many seeds against
one preprocessed graph*, so the protocol is batched: :meth:`PPRMethod.query_many`
answers a whole seed batch in one call, and methods whose online phase is a
power iteration override :meth:`PPRMethod._query_many` to push the entire
seed *matrix* through the iteration — one sparse matmul per step for the
whole batch instead of one Python-level query per seed.  The higher-level
request/result machinery lives in :mod:`repro.engine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.exceptions import NotPreprocessedError
from repro.graph.graph import Graph

__all__ = ["PPRMethod", "select_top_k", "banned_mask"]


def select_top_k(
    scores: np.ndarray, k: int, banned: np.ndarray | None = None
) -> np.ndarray:
    """Indices of the ``k`` largest entries of ``scores``, best first.

    Equivalent to ``np.argsort(-scores, kind="stable")`` filtered by
    ``banned`` and truncated to ``k`` — ties broken by ascending node id —
    but runs in ``O(n + k' log k')`` via :func:`np.argpartition` instead of
    sorting all ``n`` nodes (``k'`` is ``k`` plus boundary ties).

    Parameters
    ----------
    scores:
        Length-``n`` score vector.
    k:
        Result size; fewer indices are returned when ``banned`` leaves
        fewer than ``k`` nodes.
    banned:
        Optional boolean mask of nodes excluded from the ranking.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.size
    if banned is not None and banned.any():
        masked = scores.copy()
        masked[banned] = -np.inf
        available = n - int(np.count_nonzero(banned))
    else:
        masked = scores
        available = n
    kk = min(int(k), available)
    if kk <= 0:
        return np.empty(0, dtype=np.int64)
    if kk < n:
        # Value of the kk-th largest entry; every banned entry is -inf and
        # therefore below it, so the candidate set never contains one.
        kth = np.partition(masked, n - kk)[n - kk]
        candidates = np.flatnonzero(masked >= kth)
    else:
        candidates = np.flatnonzero(masked > -np.inf)
    # Primary key: score descending; secondary: node id ascending — the
    # exact order of a stable argsort over the negated scores.
    order = np.lexsort((candidates, -masked[candidates]))
    return candidates[order[:kk]].astype(np.int64, copy=False)


def banned_mask(
    graph: Graph, seed: int, exclude_seed: bool, exclude_neighbors: bool
) -> np.ndarray | None:
    """Boolean mask of nodes excluded from a top-k ranking for ``seed``.

    Returns ``None`` when nothing is excluded (the common fast path).
    """
    if not (exclude_seed or exclude_neighbors):
        return None
    banned = np.zeros(graph.num_nodes, dtype=bool)
    if exclude_seed:
        banned[seed] = True
    if exclude_neighbors and hasattr(graph, "out_neighbors"):
        neighbors = np.asarray(graph.out_neighbors(seed), dtype=np.int64)
        if neighbors.size:
            banned[neighbors] = True
    return banned


class PPRMethod(ABC):
    """Abstract base class for single-source RWR estimators.

    Subclasses set :attr:`name` and implement :meth:`_preprocess`,
    :meth:`_query`, and :meth:`preprocessed_bytes`.  Methods whose online
    phase vectorizes over seeds additionally override :meth:`_query_many`.

    The public wrappers enforce the protocol: :meth:`query` and
    :meth:`query_many` raise
    :class:`~repro.exceptions.NotPreprocessedError` if the method has not
    been bound to a graph, and validate every seed's type and range in one
    place (:meth:`validate_seed` / :meth:`validate_seeds`).
    """

    #: Human-readable method name used in reports (e.g. ``"TPA"``).
    name: str = "abstract"

    def __init__(self) -> None:
        self._graph: Graph | None = None

    # -- public protocol -------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The graph this method was preprocessed for."""
        if self._graph is None:
            raise NotPreprocessedError(
                f"{self.name}: preprocess() must run before the online phase"
            )
        return self._graph

    @property
    def is_preprocessed(self) -> bool:
        """Whether :meth:`preprocess` has completed."""
        return self._graph is not None

    def preprocess(self, graph: Graph) -> None:
        """Run the per-graph preprocessing phase.

        Methods without a preprocessing phase (e.g. BRPPR) still bind the
        graph here so the online phase can run.
        """
        self._graph = graph
        self._preprocess(graph)

    # -- seed validation (shared by every entry point) -------------------------

    def validate_seed(self, seed: int | np.integer) -> int:
        """Normalize one seed to a plain ``int`` and check its range.

        Accepts Python ints and any NumPy integer scalar; rejects bools,
        floats and other types with :class:`TypeError` (a truncated float
        seed is almost always a bug) and out-of-range ids with
        :class:`ValueError`.
        """
        if isinstance(seed, (bool, np.bool_)) or not isinstance(
            seed, (int, np.integer)
        ):
            raise TypeError(
                f"seed must be an integer node id, got {type(seed).__name__}"
            )
        seed = int(seed)
        n = self.graph.num_nodes
        if not 0 <= seed < n:
            raise ValueError(f"seed {seed} out of range for graph with {n} nodes")
        return seed

    def validate_seeds(self, seeds: Sequence[int] | np.ndarray) -> np.ndarray:
        """Normalize a seed batch to a 1-D ``int64`` array, checked in bulk.

        The dtype rules of :meth:`validate_seed` apply to the whole batch;
        an empty batch is allowed and yields an empty array.
        """
        arr = np.asarray(seeds)
        if arr.ndim != 1:
            raise ValueError(f"seeds must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            return np.empty(0, dtype=np.int64)
        if arr.dtype == bool or not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(
                f"seeds must be integer node ids, got dtype {arr.dtype}"
            )
        arr = arr.astype(np.int64, copy=False)
        n = self.graph.num_nodes
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi >= n:
            raise ValueError(
                f"seed ids must lie in [0, {n - 1}]; got range [{lo}, {hi}]"
            )
        return arr

    # -- online phase -----------------------------------------------------------

    def query(self, seed: int) -> np.ndarray:
        """Return the length-``n`` approximate RWR score vector for ``seed``."""
        return self._query(self.validate_seed(seed))

    def query_many(self, seeds: Sequence[int] | np.ndarray) -> np.ndarray:
        """Score a whole seed batch: returns a ``(len(seeds), n)`` matrix.

        Row ``i`` equals ``query(seeds[i])``.  The base implementation
        loops over :meth:`_query`; power-iteration methods (TPA, CPI,
        BRPPR/RPPR, NB_LIN, BEAR, BePI) override :meth:`_query_many` to
        propagate the whole seed matrix at once, which is the batched
        engine's headline speedup.
        """
        seeds_arr = self.validate_seeds(seeds)
        if seeds_arr.size == 0:
            return np.zeros((0, self.graph.num_nodes), dtype=np.float64)
        return self._query_many(seeds_arr)

    def top_k(self, seed: int, k: int, exclude_seed: bool = True,
              exclude_neighbors: bool = False) -> np.ndarray:
        """Top-``k`` nodes by approximate RWR score from ``seed``.

        This is the ranking primitive behind the paper's application
        examples (e.g. Twitter's top-500 "Who to Follow").

        Parameters
        ----------
        seed:
            Query node.
        k:
            Result size.
        exclude_seed:
            Drop the seed itself from the ranking (it always carries at
            least mass ``c``).
        exclude_neighbors:
            Also drop the seed's existing out-neighbors — the standard
            recommendation setting where known links are not re-suggested.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        seed = self.validate_seed(seed)
        scores = self._query(seed)
        banned = banned_mask(self.graph, seed, exclude_seed, exclude_neighbors)
        return select_top_k(scores, k, banned)

    def top_k_many(self, seeds: Sequence[int] | np.ndarray, k: int,
                   exclude_seeds: bool = True,
                   exclude_neighbors: bool = False) -> np.ndarray:
        """Top-``k`` rankings for a whole seed batch.

        Returns a ``(len(seeds), k)`` ``int64`` matrix; row ``i`` holds the
        ranking of ``seeds[i]`` best-first, padded with ``-1`` when fewer
        than ``k`` nodes remain after exclusion.  Scoring goes through
        :meth:`query_many`, so vectorized methods answer the whole batch
        with one pass over the graph.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        seeds_arr = self.validate_seeds(seeds)
        scores = self.query_many(seeds_arr)
        result = np.full((seeds_arr.size, int(k)), -1, dtype=np.int64)
        for i, seed in enumerate(seeds_arr.tolist()):
            banned = banned_mask(self.graph, seed, exclude_seeds,
                                 exclude_neighbors)
            picks = select_top_k(scores[i], k, banned)
            result[i, : picks.size] = picks
        return result

    @abstractmethod
    def preprocessed_bytes(self) -> int:
        """Size in bytes of the preprocessed data this method must keep
        resident for the online phase (Figure 1(a) / 10(a)).

        Excludes the graph itself, which every method shares.
        """

    # -- subclass hooks ----------------------------------------------------------

    @abstractmethod
    def _preprocess(self, graph: Graph) -> None:
        """Method-specific preprocessing; ``graph`` is already bound."""

    @abstractmethod
    def _query(self, seed: int) -> np.ndarray:
        """Method-specific online phase for a validated seed."""

    def _query_many(self, seeds: np.ndarray) -> np.ndarray:
        """Method-specific batched online phase for validated seeds.

        ``seeds`` is a non-empty 1-D ``int64`` array.  The default loops
        over :meth:`_query`; vectorized methods override it.
        """
        return np.stack([self._query(int(seed)) for seed in seeds])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "preprocessed" if self.is_preprocessed else "unbound"
        return f"{type(self).__name__}({state})"
