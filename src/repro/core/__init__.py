"""The paper's primary contribution: CPI and the two-phase TPA method.

* :mod:`~repro.core.cpi` — Cumulative Power Iteration (Algorithm 1), the
  score-propagation interpretation of RWR/PageRank.
* :mod:`~repro.core.tpa` — the TPA method: stranger approximation in the
  preprocessing phase (Algorithm 2) and family computation plus neighbor
  approximation in the online phase (Algorithm 3).
* :mod:`~repro.core.bounds` — the closed-form accuracy bounds of Lemmas
  1–3 and Theorem 2, and the exact part norms of Lemma 2.
* :mod:`~repro.core.parameters` — helpers for choosing ``S`` and ``T``
  (Section III-C).
"""

from repro.core.cpi import (
    CPIManyResult,
    CPIMethod,
    CPIResult,
    cpi,
    cpi_many,
    cpi_parts,
    seed_matrix,
    seed_vector,
)
from repro.core.tpa import TPA, TPAParts
from repro.core.bounds import (
    family_norm,
    neighbor_norm,
    stranger_norm,
    neighbor_bound,
    stranger_bound,
    total_bound,
    convergence_iterations,
    neighbor_scale,
)
from repro.core.parameters import select_parameters, ParameterSweepPoint, sweep_s, sweep_t

__all__ = [
    "CPIResult",
    "CPIManyResult",
    "CPIMethod",
    "cpi",
    "cpi_many",
    "cpi_parts",
    "seed_matrix",
    "seed_vector",
    "TPA",
    "TPAParts",
    "family_norm",
    "neighbor_norm",
    "stranger_norm",
    "neighbor_bound",
    "stranger_bound",
    "total_bound",
    "convergence_iterations",
    "neighbor_scale",
    "select_parameters",
    "ParameterSweepPoint",
    "sweep_s",
    "sweep_t",
]
