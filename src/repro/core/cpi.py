r"""Cumulative Power Iteration (CPI) — Algorithm 1 of the paper.

CPI interprets RWR as propagation of scores: a mass of ``c`` starts on the
seed node(s); each step propagates the current interim vector through the
column-stochastic operator ``Ã^T`` with decay ``1-c``:

.. math::

    x^{(0)} = c\,q, \qquad
    x^{(i)} = (1-c)\,\tilde{A}^\top x^{(i-1)}, \qquad
    r_{CPI} = \sum_{i=0}^{\infty} x^{(i)}.

With the seed vector ``q = e_s`` this converges to the RWR vector of seed
``s``; with ``q = 1/n`` it converges to PageRank (Theorem 1).  The
``start_iteration`` / ``terminal_iteration`` window sums only the requested
slice of the series, which is exactly what TPA needs to separate the family,
neighbor, and stranger parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import ConvergenceError, ParameterError
from repro.graph.graph import Graph

__all__ = ["CPIResult", "cpi", "cpi_parts", "cpi_iterates", "seed_vector"]

#: Hard cap on iterations; at c=0.15, tol=1e-9 convergence needs ~116.
_MAX_ITERATIONS_DEFAULT = 100_000


@dataclass(frozen=True)
class CPIResult:
    """Outcome of a CPI run.

    Attributes
    ----------
    scores:
        The accumulated score vector over the requested iteration window.
    iterations:
        Index of the last interim vector computed (``0`` means only
        ``x(0)`` was formed).
    converged:
        True when the run stopped because ``‖x(i)‖₁ < tol`` rather than by
        hitting ``terminal_iteration``.
    residual_norm:
        ``‖x(i)‖₁`` of the last interim vector — the geometric tail bound
        on everything not yet accumulated.
    """

    scores: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float


def seed_vector(graph: Graph, seeds: int | Sequence[int] | None) -> np.ndarray:
    """Build the seed distribution ``q`` (Algorithm 1, line 1).

    ``seeds`` may be a single node (RWR), a sequence of nodes (personalized
    PageRank with uniform mass over them), or ``None`` for all nodes
    (global PageRank).
    """
    n = graph.num_nodes
    q = np.zeros(n, dtype=np.float64)
    if seeds is None:
        q[:] = 1.0 / n
        return q
    if isinstance(seeds, (int, np.integer)):
        seeds_arr = np.asarray([int(seeds)], dtype=np.int64)
    else:
        seeds_arr = np.asarray(list(seeds), dtype=np.int64)
        if seeds_arr.size == 0:
            raise ParameterError("seed set must not be empty")
    if seeds_arr.min() < 0 or seeds_arr.max() >= n:
        raise ParameterError(
            f"seed ids must lie in [0, {n - 1}]; got {seeds_arr.tolist()[:5]}"
        )
    q[seeds_arr] = 1.0 / seeds_arr.size
    return q


def _validate(c: float, tol: float, start_iteration: int) -> None:
    if not 0.0 < c < 1.0:
        raise ParameterError(f"restart probability c must be in (0, 1); got {c}")
    if tol <= 0.0:
        raise ParameterError(f"convergence tolerance must be positive; got {tol}")
    if start_iteration < 0:
        raise ParameterError("start_iteration must be non-negative")


def cpi(
    graph: Graph,
    seeds: int | Sequence[int] | None,
    c: float = 0.15,
    tol: float = 1e-9,
    start_iteration: int = 0,
    terminal_iteration: int | None = None,
    max_iterations: int = _MAX_ITERATIONS_DEFAULT,
) -> CPIResult:
    """Run CPI and accumulate iterations ``start_iteration..terminal_iteration``.

    Parameters
    ----------
    graph:
        Input graph supplying the stochastic operator.
    seeds:
        Seed node, seed set, or ``None`` for PageRank.
    c:
        Restart probability (paper default 0.15).
    tol:
        Convergence tolerance ``ε``: stop once ``‖x(i)‖₁ < ε``.
    start_iteration:
        First iteration index accumulated into the result (``siter``).
    terminal_iteration:
        Last iteration index accumulated (``titer``); ``None`` means run to
        convergence (the paper's ``∞``).
    max_iterations:
        Safety cap; exceeding it raises
        :class:`~repro.exceptions.ConvergenceError`.

    Returns
    -------
    CPIResult

    Notes
    -----
    Exact RWR is ``cpi(graph, s)``; exact PageRank is ``cpi(graph, None)``.
    The family part of TPA is ``cpi(graph, s, start_iteration=0,
    terminal_iteration=S - 1)`` and the stranger part of PageRank is
    ``cpi(graph, None, start_iteration=T)``.
    """
    _validate(c, tol, start_iteration)
    if terminal_iteration is not None and terminal_iteration < start_iteration:
        raise ParameterError(
            "terminal_iteration must be >= start_iteration "
            f"({terminal_iteration} < {start_iteration})"
        )

    q = seed_vector(graph, seeds)
    x = c * q
    scores = np.zeros_like(x)
    if start_iteration == 0:
        scores += x

    iteration = 0
    converged = False
    residual = float(np.abs(x).sum())
    if residual < tol:
        converged = True

    while not converged:
        if terminal_iteration is not None and iteration >= terminal_iteration:
            break
        if iteration >= max_iterations:
            raise ConvergenceError(
                f"CPI did not converge within {max_iterations} iterations "
                f"(residual {residual:.3e}, tol {tol:.3e})"
            )
        iteration += 1
        x = (1.0 - c) * graph.propagate(x)
        if iteration >= start_iteration:
            scores += x
        residual = float(np.abs(x).sum())
        if residual < tol:
            converged = True

    return CPIResult(
        scores=scores,
        iterations=iteration,
        converged=converged,
        residual_norm=residual,
    )


def cpi_parts(
    graph: Graph,
    seeds: int | Sequence[int] | None,
    s_iteration: int,
    t_iteration: int,
    c: float = 0.15,
    tol: float = 1e-9,
    max_iterations: int = _MAX_ITERATIONS_DEFAULT,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the family / neighbor / stranger parts in a single pass.

    Returns the triple ``(r_family, r_neighbor, r_stranger)`` where

    * family   accumulates ``x(0) .. x(S-1)``,
    * neighbor accumulates ``x(S) .. x(T-1)``,
    * stranger accumulates ``x(T) ..`` until convergence.

    One propagation sweep serves all three, so experiments that need exact
    per-part errors (Table III, Figure 9) avoid three separate CPI runs.
    """
    if s_iteration < 1:
        raise ParameterError("S must be at least 1 so the family part is non-empty")
    if t_iteration < s_iteration:
        raise ParameterError(
            "T must be at least S (T == S means an empty neighbor part)"
        )
    _validate(c, tol, 0)

    q = seed_vector(graph, seeds)
    x = c * q
    family = x.copy()
    neighbor = np.zeros_like(x)
    stranger = np.zeros_like(x)

    iteration = 0
    residual = float(np.abs(x).sum())
    while residual >= tol:
        if iteration >= max_iterations:
            raise ConvergenceError(
                f"cpi_parts did not converge within {max_iterations} iterations"
            )
        iteration += 1
        x = (1.0 - c) * graph.propagate(x)
        if iteration < s_iteration:
            family += x
        elif iteration < t_iteration:
            neighbor += x
        else:
            stranger += x
        residual = float(np.abs(x).sum())

    return family, neighbor, stranger


def cpi_iterates(
    graph: Graph,
    seeds: int | Sequence[int] | None,
    c: float = 0.15,
    max_iterations: int = 64,
) -> Iterator[np.ndarray]:
    """Yield the interim vectors ``x(0), x(1), ...`` (at most
    ``max_iterations + 1`` of them).

    Used by the matrix-power analyses behind Figures 3, 4 and 6.
    """
    _validate(c, 1e-300, 0)
    x = c * seed_vector(graph, seeds)
    yield x.copy()
    for _ in range(max_iterations):
        x = (1.0 - c) * graph.propagate(x)
        yield x.copy()
