r"""Cumulative Power Iteration (CPI) — Algorithm 1 of the paper.

CPI interprets RWR as propagation of scores: a mass of ``c`` starts on the
seed node(s); each step propagates the current interim vector through the
column-stochastic operator ``Ã^T`` with decay ``1-c``:

.. math::

    x^{(0)} = c\,q, \qquad
    x^{(i)} = (1-c)\,\tilde{A}^\top x^{(i-1)}, \qquad
    r_{CPI} = \sum_{i=0}^{\infty} x^{(i)}.

With the seed vector ``q = e_s`` this converges to the RWR vector of seed
``s``; with ``q = 1/n`` it converges to PageRank (Theorem 1).  The
``start_iteration`` / ``terminal_iteration`` window sums only the requested
slice of the series, which is exactly what TPA needs to separate the family,
neighbor, and stranger parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import kernels
from repro.exceptions import ConvergenceError, ParameterError
from repro.graph.graph import Graph
from repro.kernels import Workspace
from repro.method import PPRMethod

__all__ = [
    "CPIResult",
    "CPIManyResult",
    "CPIMethod",
    "cpi",
    "cpi_many",
    "cpi_parts",
    "cpi_iterates",
    "seed_vector",
    "seed_matrix",
]

#: Hard cap on iterations; at c=0.15, tol=1e-9 convergence needs ~116.
_MAX_ITERATIONS_DEFAULT = 100_000


@dataclass(frozen=True)
class CPIResult:
    """Outcome of a CPI run.

    Attributes
    ----------
    scores:
        The accumulated score vector over the requested iteration window.
    iterations:
        Index of the last interim vector computed (``0`` means only
        ``x(0)`` was formed).
    converged:
        True when the run stopped because ``‖x(i)‖₁ < tol`` rather than by
        hitting ``terminal_iteration``.
    residual_norm:
        ``‖x(i)‖₁`` of the last interim vector — the geometric tail bound
        on everything not yet accumulated.
    """

    scores: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float


def seed_vector(graph: Graph, seeds: int | Sequence[int] | None) -> np.ndarray:
    """Build the seed distribution ``q`` (Algorithm 1, line 1).

    ``seeds`` may be a single node (RWR), a sequence of nodes (personalized
    PageRank with uniform mass over them), or ``None`` for all nodes
    (global PageRank).  The vector is allocated in the kernel layer's
    compute dtype (float64 unless the float32 policy is active).
    """
    n = graph.num_nodes
    q = np.zeros(n, dtype=kernels.compute_dtype())
    if seeds is None:
        q[:] = 1.0 / n
        return q
    if isinstance(seeds, (int, np.integer)):
        seeds_arr = np.asarray([int(seeds)], dtype=np.int64)
    else:
        seeds_arr = np.asarray(list(seeds), dtype=np.int64)
        if seeds_arr.size == 0:
            raise ParameterError("seed set must not be empty")
    if seeds_arr.min() < 0 or seeds_arr.max() >= n:
        raise ParameterError(
            f"seed ids must lie in [0, {n - 1}]; got {seeds_arr.tolist()[:5]}"
        )
    q[seeds_arr] = 1.0 / seeds_arr.size
    return q


def _validate_seed_batch(graph: Graph, seeds: Sequence[int] | np.ndarray) -> np.ndarray:
    seeds_arr = np.asarray(seeds)
    if seeds_arr.ndim != 1 or seeds_arr.size == 0:
        raise ParameterError("seed batch must be a non-empty 1-D array")
    if seeds_arr.dtype == bool or not np.issubdtype(seeds_arr.dtype, np.integer):
        # Mirror PPRMethod.validate_seeds: a silently truncated float seed
        # is almost always a bug.
        raise ParameterError(
            f"seed ids must be integers, got dtype {seeds_arr.dtype}"
        )
    seeds_arr = seeds_arr.astype(np.int64, copy=False)
    n = graph.num_nodes
    if seeds_arr.min() < 0 or seeds_arr.max() >= n:
        raise ParameterError(
            f"seed ids must lie in [0, {n - 1}]; got {seeds_arr.tolist()[:5]}"
        )
    return seeds_arr


def seed_matrix(graph: Graph, seeds: Sequence[int] | np.ndarray) -> np.ndarray:
    """Column-stacked unit seed vectors: column ``j`` is ``e_{seeds[j]}``.

    This is the batched counterpart of :func:`seed_vector` for single-seed
    queries: each column is one independent RWR start distribution (the
    batch analog of Algorithm 1, line 1), so propagating the matrix runs
    every query simultaneously.
    """
    seeds_arr = _validate_seed_batch(graph, seeds)
    q = np.zeros(
        (graph.num_nodes, seeds_arr.size), dtype=kernels.compute_dtype()
    )
    q[seeds_arr, np.arange(seeds_arr.size)] = 1.0
    return q


def _validate(c: float, tol: float, start_iteration: int) -> None:
    if not 0.0 < c < 1.0:
        raise ParameterError(f"restart probability c must be in (0, 1); got {c}")
    if tol <= 0.0:
        raise ParameterError(f"convergence tolerance must be positive; got {tol}")
    if start_iteration < 0:
        raise ParameterError("start_iteration must be non-negative")


def cpi(
    graph: Graph,
    seeds: int | Sequence[int] | None,
    c: float = 0.15,
    tol: float = 1e-9,
    start_iteration: int = 0,
    terminal_iteration: int | None = None,
    max_iterations: int = _MAX_ITERATIONS_DEFAULT,
    workspace: Workspace | None = None,
    x0: np.ndarray | None = None,
) -> CPIResult:
    """Run CPI and accumulate iterations ``start_iteration..terminal_iteration``.

    Parameters
    ----------
    graph:
        Input graph supplying the stochastic operator.
    seeds:
        Seed node, seed set, or ``None`` for PageRank.
    c:
        Restart probability (paper default 0.15).
    tol:
        Convergence tolerance ``ε``: stop once ``‖x(i)‖₁ < ε``.
    start_iteration:
        First iteration index accumulated into the result (``siter``).
    terminal_iteration:
        Last iteration index accumulated (``titer``); ``None`` means run to
        convergence (the paper's ``∞``).
    max_iterations:
        Safety cap; exceeding it raises
        :class:`~repro.exceptions.ConvergenceError`.
    workspace:
        Optional :class:`~repro.kernels.Workspace` the iterate ping-pong
        buffers are drawn from (and retained in between calls); ``None``
        allocates per call.
    x0:
        Optional warm-start guess of the *converged* score vector (e.g.
        the pre-update vector after a graph mutation).  Only valid for
        full-series runs (``start_iteration == 0`` and
        ``terminal_iteration is None``).  See Notes.

    Returns
    -------
    CPIResult

    Notes
    -----
    Exact RWR is ``cpi(graph, s)``; exact PageRank is ``cpi(graph, None)``.
    The family part of TPA is ``cpi(graph, s, start_iteration=0,
    terminal_iteration=S - 1)`` and the stranger part of PageRank is
    ``cpi(graph, None, start_iteration=T)``.

    **Warm starts.**  The converged series satisfies the fixed point
    ``s = c·q + (1-c)·Ã^T s``, so with a guess ``x0`` the run restarts
    from the Richardson residual ``r = c·q + (1-c)·Ã^T x0 - x0`` and
    accumulates ``scores = x0 + r + (1-c)Ã^T r + ...`` — the same fixed
    point, reached in iterations proportional to ``log(‖r‖₁)`` instead
    of ``log(c)``.  Warm iterates are *signed*, so residual norms use
    true absolute sums and a zero ``x0`` reproduces the cold run
    exactly.  A warm and a cold run agree within ``2·tol/c`` in L1 (each
    stops with a geometric tail below ``tol·(1-c)/c``) — the documented
    warm-start agreement tolerance.
    """
    _validate(c, tol, start_iteration)
    if terminal_iteration is not None and terminal_iteration < start_iteration:
        raise ParameterError(
            "terminal_iteration must be >= start_iteration "
            f"({terminal_iteration} < {start_iteration})"
        )
    if x0 is not None and (start_iteration != 0 or terminal_iteration is not None):
        raise ParameterError(
            "x0 warm starts apply only to full-series runs "
            "(start_iteration == 0 and terminal_iteration is None)"
        )

    q = seed_vector(graph, seeds)
    use_decayed = hasattr(graph, "propagate_decayed")
    if x0 is None:
        x = c * q
        scores = np.zeros_like(x)
    else:
        x0 = np.ascontiguousarray(x0, dtype=q.dtype)
        if x0.shape != q.shape:
            raise ParameterError(
                f"x0 must have shape {q.shape}, got {x0.shape}"
            )
        if use_decayed:
            x = graph.propagate_decayed(x0, 1.0 - c)
        else:
            x = (1.0 - c) * graph.propagate(x0)
        x += c * q
        x -= x0
        scores = x0.copy()
    if start_iteration == 0:
        scores += x

    iteration = 0
    converged = False
    residual = float(np.abs(x).sum())
    if residual < tol:
        converged = True

    buffers = (
        workspace.pair("cpi.vec", x.shape, x.dtype)
        if workspace is not None and use_decayed
        else None
    )

    while not converged:
        if terminal_iteration is not None and iteration >= terminal_iteration:
            break
        if iteration >= max_iterations:
            raise ConvergenceError(
                f"CPI did not converge within {max_iterations} iterations "
                f"(residual {residual:.3e}, tol {tol:.3e})"
            )
        iteration += 1
        if use_decayed:
            # Alternating workspace buffers: `out` is never the buffer `x`
            # currently occupies (x starts outside the pair and then hops
            # between the two).
            out = buffers[iteration % 2] if buffers is not None else None
            x = graph.propagate_decayed(x, 1.0 - c, out=out)
        else:  # duck-typed substrates that only offer the plain operator
            x = (1.0 - c) * graph.propagate(x)
        if iteration >= start_iteration:
            scores += x
        residual = float(np.abs(x).sum())
        if residual < tol:
            converged = True

    return CPIResult(
        scores=scores,
        iterations=iteration,
        converged=converged,
        residual_norm=residual,
    )


@dataclass(frozen=True)
class CPIManyResult:
    """Outcome of a batched CPI run over ``B`` seeds.

    Attributes
    ----------
    scores:
        ``(B, n)`` matrix; row ``j`` is the accumulated score vector of
        seed ``j`` over the requested iteration window.  May be a
        transposed view of the iteration buffer (rows not contiguous);
        copy if contiguity matters.
    iterations:
        Index of the last interim vector computed for any still-active
        seed (the batch runs until every column converges or the window
        closes).
    converged:
        Length-``B`` boolean array; entry ``j`` is True when column ``j``
        stopped because ``‖x_j(i)‖₁ < tol``.
    residual_norms:
        Length-``B`` array of each column's last interim norm.
    """

    scores: np.ndarray
    iterations: int
    converged: np.ndarray
    residual_norms: np.ndarray


def cpi_many(
    graph: Graph,
    seeds: Sequence[int] | np.ndarray,
    c: float = 0.15,
    tol: float = 1e-9,
    start_iteration: int = 0,
    terminal_iteration: int | None = None,
    max_iterations: int = _MAX_ITERATIONS_DEFAULT,
    workspace: Workspace | None = None,
    x0: np.ndarray | None = None,
) -> CPIManyResult:
    """Batched CPI: run Algorithm 1 for every seed in one propagation loop.

    Semantically equivalent to calling :func:`cpi` once per seed, but each
    iteration applies ``Ã^T`` to the whole ``(n, B)`` interim matrix — one
    blocked SpMM for the batch (via :mod:`repro.kernels`) instead of ``B``
    SpMVs plus Python overhead.  Columns that converge early are frozen
    (zeroed) so their accumulated scores match the single-seed run exactly.

    Parameters are as in :func:`cpi` (including the optional retained
    ``workspace`` for the SpMM ping-pong buffers); ``seeds`` must be a
    non-empty batch of node ids (batched PageRank seeding makes no sense —
    every column would be identical).

    ``x0`` optionally warm-starts the batch from an ``(n, B)`` matrix of
    per-column guesses (see the warm-start notes on :func:`cpi`); an
    all-zero column behaves exactly as a cold start, so mixed warm/cold
    batches are fine.
    """
    _validate(c, tol, start_iteration)
    if terminal_iteration is not None and terminal_iteration < start_iteration:
        raise ParameterError(
            "terminal_iteration must be >= start_iteration "
            f"({terminal_iteration} < {start_iteration})"
        )

    decay = 1.0 - c
    dtype = kernels.compute_dtype()
    seeds_arr = _validate_seed_batch(graph, seeds)
    if x0 is not None:
        if start_iteration != 0 or terminal_iteration is not None:
            raise ParameterError(
                "x0 warm starts apply only to full-series runs "
                "(start_iteration == 0 and terminal_iteration is None)"
            )
        return _cpi_many_warm(
            graph, seeds_arr, c, tol, max_iterations, workspace, x0
        )
    # The scaled seed matrix c·Q, scattered directly (c·1 == c exactly, so
    # this matches seed_matrix() followed by a full *= c pass, minus the
    # pass over the whole (n, B) buffer).
    x = np.zeros((graph.num_nodes, seeds_arr.size), dtype=dtype)
    x[seeds_arr, np.arange(seeds_arr.size)] = c

    # Interim vectors are nonnegative (nonnegative operator applied to a
    # nonnegative start), so the columnwise L1 norm is a plain sum — this
    # matches np.abs(x).sum() in the single-seed path bit for bit while
    # skipping one full pass over the (n, B) matrix per iteration.
    iteration = 0
    residual = x.sum(axis=0)
    converged = residual < tol
    if start_iteration == 0:
        # Alias the start matrix as the accumulator: x is rebound to a
        # fresh SpMM output on the first iteration, so the buffer is never
        # mutated again — except by the freeze below, which forces a copy.
        scores = x.copy() if converged.any() else x
    else:
        scores = np.zeros_like(x)
    # The unit-column shortcut below requires the pristine seed matrix and
    # an in-memory CSR transition (duck-typed substrates like DiskGraph
    # only expose propagate/propagate_decayed).  It also requires float64:
    # the gather computes in the transition's native precision, and its
    # bitwise-match argument against the SpMM kernel only holds when the
    # iterate shares it.
    gather_first = (
        not converged.any()
        and hasattr(graph, "transition")
        and dtype == np.float64
    )
    if converged.any():
        x[:, converged] = 0.0

    # The operator is column stochastic under every dangling policy, so in
    # exact arithmetic every live column's L1 norm is exactly c·(1-c)^i.
    # While that analytic value sits far above tol (three orders: float
    # roundoff cannot bridge it) no column can converge, and the per-
    # iteration column sums are provably dead code — skip them.
    analytic_norm = c
    check_floor = tol * 1e3

    # Ping-pong output buffer for the SpMM; never the scores alias.  With
    # a retained workspace, at most two (n, B) buffers are drawn from it
    # and reused across calls; otherwise they are allocated here.
    spare: np.ndarray | None = None
    spare_slot = 0
    # Sparse (rows, cols, vals) triplet of the current iterate while it is
    # still provably sparse (early iterations of unit seeds); lets the
    # next iterate come from a gather instead of a full SpMM.  While it is
    # live, the dense matrix ``x`` may be deferred entirely (``None``) —
    # its score contribution is a scatter-add and the next iterate comes
    # from the triplet, so the (n, B) materialization never happens.
    sparse_iterate: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    while not converged.all():
        if terminal_iteration is not None and iteration >= terminal_iteration:
            break
        if iteration >= max_iterations:
            raise ConvergenceError(
                f"batched CPI did not converge within {max_iterations} "
                f"iterations (max residual {float(residual.max()):.3e}, "
                f"tol {tol:.3e})"
            )
        iteration += 1
        gathered = False
        if iteration == 1 and gather_first:
            # The seed columns are unit vectors, so the first iterate is a
            # plain gather of scaled Ã rows — no SpMM needed.
            try:
                triplet = _first_iterate_triplet(graph, seeds_arr, c, decay)
                profitable = (
                    (terminal_iteration is None or terminal_iteration >= 2)
                    and c * decay > check_floor
                    and _gather_profitable(graph, triplet, seeds_arr.size)
                )
            except AttributeError:
                # A mutable substrate revoked its CSR surface between the
                # hasattr gate and the gather (a DynamicGraph mutated
                # under this call): fall through to the SpMM path, whose
                # propagate always serves a consistent generation.
                triplet = None
                profitable = False
            if triplet is not None and profitable:
                # The next iterate will come from the triplet and no
                # residual check can fire this iteration, so the dense
                # matrix is never needed: scatter the score contribution
                # (unique positions; identical adds to the dense +=, the
                # skipped entries being exact +0.0 no-ops) and move on.
                rows1, cols1, vals1 = triplet
                if 1 >= start_iteration and rows1.size:
                    scores[rows1, cols1] += vals1
                sparse_iterate = triplet
                x = None
                analytic_norm *= decay
                continue
            if triplet is not None:
                x, sparse_iterate = _densify_first_iterate(
                    graph, triplet, seeds_arr, c, decay
                )
                gathered = True
        if not gathered:
            advanced = None
            if sparse_iterate is not None:
                # The iterate is still provably sparse; a gather/segment-
                # sum beats the SpMM while its support stays small.
                try:
                    advanced = _gathered_iterate(
                        graph, sparse_iterate, seeds_arr.size, decay
                    )
                except AttributeError:
                    advanced = None  # CSR surface revoked mid-stream
            if advanced is not None:
                x, sparse_iterate = advanced
            else:
                if x is None:
                    # Deferred first iterate, but the gather fell through:
                    # materialize it for the SpMM after all.
                    x, _ = _densify_first_iterate(
                        graph, sparse_iterate, seeds_arr, c, decay
                    )
                sparse_iterate = None
                if spare is None or spare is scores:
                    if workspace is not None:
                        spare = workspace.request(
                            f"cpi.iterate.{spare_slot}", x.shape, x.dtype
                        )
                        spare_slot = 1 - spare_slot
                        if spare is x:  # pragma: no cover - defensive
                            spare = workspace.request(
                                f"cpi.iterate.{spare_slot}", x.shape, x.dtype
                            )
                            spare_slot = 1 - spare_slot
                    else:
                        spare = np.empty_like(x)
                y = graph.propagate_decayed(x, decay, out=spare)
                # Recycle the previous interim matrix as the next output
                # buffer (unless it doubles as the accumulator).
                spare = x if x is not scores else None
                x = y
        if iteration >= start_iteration:
            scores += x
        analytic_norm *= decay
        if analytic_norm > check_floor:
            continue
        live = x.sum(axis=0)
        residual = np.where(converged, residual, live)
        newly = (~converged) & (live < tol)
        if newly.any():
            converged = converged | newly
            # Freeze finished columns: their future interim vectors would
            # keep shrinking but the single-seed run never accumulates
            # them, so zero the column to preserve exact equivalence.
            x[:, converged] = 0.0
            # The frozen dense matrix no longer matches the triplet.
            sparse_iterate = None

    if analytic_norm > check_floor and iteration > 0:
        # Residual checks were skipped; report the final interim norms.
        if x is None:  # pragma: no cover - defensive; lazy mode always advances
            x, _ = _densify_first_iterate(
                graph, sparse_iterate, seeds_arr, c, decay
            )
        residual = np.where(converged, residual, x.sum(axis=0))

    return CPIManyResult(
        scores=scores.T,
        iterations=iteration,
        converged=converged,
        residual_norms=residual,
    )


def _row_positions(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat CSR positions of every nonzero in ``rows`` (with repeats),
    emitted row-block by row-block, plus the per-row lengths."""
    lengths = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    starts = np.repeat(indptr[rows].astype(np.int64), lengths)
    resets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    positions = np.arange(total, dtype=np.int64) - resets + starts
    return positions, lengths


#: A gathered iterate must touch this many times fewer nnz-column pairs
#: than the full SpMM to be worth its per-entry overhead.
_GATHER_ADVANTAGE = 16

_SparseIterate = tuple[np.ndarray, np.ndarray, np.ndarray]


def _first_iterate_triplet(
    graph: Graph, seeds: np.ndarray, c: float, decay: float
) -> _SparseIterate:
    """Sparse ``(rows, cols, vals)`` of ``x(1)`` for unit seed columns.

    For ``q = e_s`` the first CPI iterate is ``c · decay · Ã^T e_s`` —
    column ``s`` of the decayed operator, i.e. row ``s`` of ``Ã`` scaled.
    Gathering those rows costs ``O(Σ out-degree(s_j))`` instead of the
    ``O(nnz · B)`` of a full SpMM, and reproduces the SpMM bit for bit:
    each entry is the identical two-factor product, and the SpMM's
    remaining terms are exact zeros.  (The uniform-dangling correction is
    dense and NOT included here; :func:`_densify_first_iterate` applies
    it.)
    """
    transition = graph.transition
    indptr, indices, data = (
        transition.indptr, transition.indices, transition.data,
    )
    positions, lengths = _row_positions(indptr, seeds)
    if not positions.size:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0),
        )
    rows = indices[positions]
    cols = np.repeat(np.arange(seeds.size), lengths)
    values = data[positions] * decay
    values *= c
    return rows, cols, values


def _densify_first_iterate(
    graph: Graph,
    triplet: _SparseIterate,
    seeds: np.ndarray,
    c: float,
    decay: float,
) -> tuple[np.ndarray, _SparseIterate | None]:
    """Materialize ``x(1)`` as a dense ``(n, B)`` matrix.

    Applies the uniform-dangling correction when needed; in that case the
    triplet no longer represents the matrix and ``None`` is returned for
    it.
    """
    rows, cols, values = triplet
    n = graph.num_nodes
    x = np.zeros((n, seeds.size))
    if rows.size:
        x[rows, cols] = values
    if graph.dangling_nodes.size and graph.dangling_policy == "uniform":
        leaked = np.where(np.isin(seeds, graph.dangling_nodes), c, 0.0)
        if np.any(leaked != 0.0):
            x += (decay / n) * leaked
            return x, None  # dense correction: the triplet is stale
    return x, triplet


def _gather_profitable(
    graph: Graph, iterate: _SparseIterate, num_columns: int
) -> bool:
    """Whether advancing ``iterate`` by a gather beats the full SpMM."""
    if graph.dangling_nodes.size and graph.dangling_policy == "uniform":
        return False  # the dangling correction is dense
    if not graph.transition_transpose.has_sorted_indices:
        # The SpMM kernel accumulates in its stored index order; the
        # gather's bitwise-match argument assumes that order is ascending.
        return False
    rows = iterate[0]
    indptr = graph.transition.indptr
    total = int((indptr[rows + 1] - indptr[rows]).sum())
    return total * _GATHER_ADVANTAGE <= graph.transition.nnz * num_columns


def _gathered_iterate(
    graph: Graph, iterate: _SparseIterate, num_columns: int, decay: float
) -> tuple[np.ndarray, _SparseIterate | None] | None:
    """Advance a still-sparse iterate by one step without an SpMM.

    With ``x`` holding nonzeros ``(k, j, v)``, the next iterate is
    ``Σ v · (decayed Ã^T)[:, k]`` per column — a gather of ``Ã`` rows and
    a segment sum (``np.bincount``).  Emission is ordered by column then
    source ``k``, and each contribution is the identical ``a·v`` product,
    so the per-entry accumulation order — and therefore the result —
    matches the SpMM kernel bit for bit (its extra terms are exact zeros).

    Returns ``None`` when the support has grown too dense for the gather
    to beat the SpMM (the caller falls back), and never re-derives a
    triplet — after two sparse steps the support is effectively dense.
    Skipped for graphs with a uniform dangling correction, which is dense.
    """
    if not _gather_profitable(graph, iterate, num_columns):
        return None
    rows, cols, vals = iterate
    transition = graph.transition
    indptr, indices, data = (
        transition.indptr, transition.indices, transition.data,
    )
    n = graph.num_nodes
    if rows.size == 0:
        return np.zeros((n, num_columns)), None
    # Emit contributions ordered by (column, source k ascending): within
    # any output bin that is exactly the SpMM kernel's accumulation order,
    # so the segment sums below reproduce it bit for bit.
    order = np.lexsort((rows, cols))
    rows, cols, vals = rows[order], cols[order], vals[order]
    positions, lengths = _row_positions(indptr, rows)
    if positions.size == 0:
        return np.zeros((n, num_columns)), None
    contributions = data[positions] * decay
    contributions *= np.repeat(vals, lengths)
    bins = indices[positions] * num_columns + np.repeat(cols, lengths)
    x = np.bincount(
        bins, weights=contributions, minlength=n * num_columns
    ).reshape(n, num_columns)
    return x, None


def _cpi_many_warm(
    graph: Graph,
    seeds_arr: np.ndarray,
    c: float,
    tol: float,
    max_iterations: int,
    workspace: Workspace | None,
    x0: np.ndarray,
) -> CPIManyResult:
    """Warm-started batched CPI (the ``x0`` route of :func:`cpi_many`).

    A separate loop from the cold path on purpose: warm iterates are
    *signed* residual corrections, so none of the cold path's
    nonnegativity shortcuts apply (plain-sum norms, analytic-norm check
    skipping, sparse first iterates) — and keeping the paths apart
    leaves the cold path's bitwise contracts untouched.  An all-zero
    column degenerates to the cold recurrence exactly (``r = c·q``), so
    mixed warm/cold batches are sound.
    """
    decay = 1.0 - c
    dtype = kernels.compute_dtype()
    n, batch = graph.num_nodes, seeds_arr.size
    x0 = np.asarray(x0)
    if x0.shape != (n, batch):
        raise ParameterError(
            f"x0 must have shape ({n}, {batch}) to match the seed batch; "
            f"got {x0.shape}"
        )
    x0 = np.ascontiguousarray(x0, dtype=dtype)
    use_decayed = hasattr(graph, "propagate_decayed")
    # Richardson residual r = c·Q + (1-c)·Ã^T x0 - x0 (see cpi's notes).
    if use_decayed:
        x = graph.propagate_decayed(x0, decay)
    else:
        x = decay * graph.propagate(x0)
    x[seeds_arr, np.arange(batch)] += c
    x -= x0
    scores = x0.copy()
    scores += x

    iteration = 0
    residual = np.abs(x).sum(axis=0)
    converged = residual < tol
    if converged.any():
        x[:, converged] = 0.0
    buffers = (
        workspace.pair("cpi.warm", x.shape, x.dtype)
        if workspace is not None and use_decayed
        else None
    )
    while not converged.all():
        if iteration >= max_iterations:
            raise ConvergenceError(
                f"warm-started batched CPI did not converge within "
                f"{max_iterations} iterations (max residual "
                f"{float(residual.max()):.3e}, tol {tol:.3e})"
            )
        iteration += 1
        if use_decayed:
            out = buffers[iteration % 2] if buffers is not None else None
            if out is x:  # pragma: no cover - defensive
                out = None
            x = graph.propagate_decayed(x, decay, out=out)
        else:
            x = decay * graph.propagate(x)
        scores += x
        live = np.abs(x).sum(axis=0)
        residual = np.where(converged, residual, live)
        newly = (~converged) & (live < tol)
        if newly.any():
            converged = converged | newly
            # Freeze finished columns, mirroring the cold path's exact
            # single-seed equivalence argument.
            x[:, converged] = 0.0

    return CPIManyResult(
        scores=scores.T,
        iterations=iteration,
        converged=converged,
        residual_norms=residual,
    )


class CPIMethod(PPRMethod):
    """Exact RWR via Cumulative Power Iteration, as a :class:`PPRMethod`.

    This wraps Algorithm 1 in the two-phase protocol so the plain
    power-iteration solver participates in the method registry, the
    batched engine, and the experiment harness like every other method.
    It has no preprocessing phase and no approximation error — queries
    run the full series to ``tol`` — making it a convenient exact
    reference that still benefits from the batched online phase
    (:func:`cpi_many`: one SpMM per iteration for the whole seed batch).

    Parameters
    ----------
    c:
        Restart probability (paper default 0.15).
    tol:
        Convergence tolerance ``ε``: stop once ``‖x(i)‖₁ < ε``.
    """

    name = "CPI"
    #: CPI accepts ``x0`` fixed-point guesses (see ``cpi``'s warm-start
    #: notes) — the Engine feeds it retained pre-epoch vectors after a
    #: graph mutation instead of recomputing from zero.
    supports_warm_start = True

    def __init__(self, c: float = 0.15, tol: float = 1e-9):
        super().__init__()
        _validate(c, tol, 0)
        self.c = float(c)
        self.tol = float(tol)
        # Iterate buffers are drawn from the base class's retained
        # workspace (shared with the ranking masks) and counted in
        # preprocessed_bytes — they are resident serving state.

    def _preprocess(self, graph: Graph) -> None:
        pass  # online-only: CPI needs nothing beyond the graph itself.

    def preprocessed_bytes(self) -> int:
        """CPI keeps no index — only the iterate buffers retained by the
        online phase (zero until the first query)."""
        return self._workspace.nbytes()

    def error_bound(self) -> float:
        """CPI runs the series to ``tol``; the unaccumulated tail is below it."""
        return self.tol

    def _query(self, seed: int) -> np.ndarray:
        return cpi(
            self.graph, seeds=seed, c=self.c, tol=self.tol,
            workspace=self._workspace,
        ).scores

    def _query_many(
        self, seeds: np.ndarray, x0: np.ndarray | None = None
    ) -> np.ndarray:
        if x0 is not None:
            # The protocol hands per-seed row guesses (B, n); the batched
            # loop iterates column-major (n, B).
            x0 = np.ascontiguousarray(
                np.asarray(x0).T, dtype=kernels.compute_dtype()
            )
        return cpi_many(
            self.graph, seeds, c=self.c, tol=self.tol,
            workspace=self._workspace, x0=x0,
        ).scores


def cpi_parts(
    graph: Graph,
    seeds: int | Sequence[int] | None,
    s_iteration: int,
    t_iteration: int,
    c: float = 0.15,
    tol: float = 1e-9,
    max_iterations: int = _MAX_ITERATIONS_DEFAULT,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the family / neighbor / stranger parts in a single pass.

    Returns the triple ``(r_family, r_neighbor, r_stranger)`` where

    * family   accumulates ``x(0) .. x(S-1)``,
    * neighbor accumulates ``x(S) .. x(T-1)``,
    * stranger accumulates ``x(T) ..`` until convergence.

    One propagation sweep serves all three, so experiments that need exact
    per-part errors (Table III, Figure 9) avoid three separate CPI runs.
    """
    if s_iteration < 1:
        raise ParameterError("S must be at least 1 so the family part is non-empty")
    if t_iteration < s_iteration:
        raise ParameterError(
            "T must be at least S (T == S means an empty neighbor part)"
        )
    _validate(c, tol, 0)

    q = seed_vector(graph, seeds)
    x = c * q
    family = x.copy()
    neighbor = np.zeros_like(x)
    stranger = np.zeros_like(x)

    use_decayed = hasattr(graph, "propagate_decayed")
    buffers = (
        workspace.pair("cpi.parts", x.shape, x.dtype)
        if workspace is not None and use_decayed
        else None
    )

    iteration = 0
    residual = float(np.abs(x).sum())
    while residual >= tol:
        if iteration >= max_iterations:
            raise ConvergenceError(
                f"cpi_parts did not converge within {max_iterations} iterations"
            )
        iteration += 1
        if use_decayed:
            out = buffers[iteration % 2] if buffers is not None else None
            x = graph.propagate_decayed(x, 1.0 - c, out=out)
        else:
            x = (1.0 - c) * graph.propagate(x)
        if iteration < s_iteration:
            family += x
        elif iteration < t_iteration:
            neighbor += x
        else:
            stranger += x
        residual = float(np.abs(x).sum())

    return family, neighbor, stranger


def cpi_iterates(
    graph: Graph,
    seeds: int | Sequence[int] | None,
    c: float = 0.15,
    max_iterations: int = 64,
) -> Iterator[np.ndarray]:
    """Yield the interim vectors ``x(0), x(1), ...`` (at most
    ``max_iterations + 1`` of them).

    Used by the matrix-power analyses behind Figures 3, 4 and 6.
    """
    _validate(c, 1e-300, 0)
    x = c * seed_vector(graph, seeds)
    yield x.copy()
    use_decayed = hasattr(graph, "propagate_decayed")
    buffers = (x.copy(), np.empty_like(x)) if use_decayed else None
    for index in range(max_iterations):
        if use_decayed:
            # The yielded copies decouple consumers from the two
            # alternating iterate buffers reused here.
            x = graph.propagate_decayed(x, 1.0 - c, out=buffers[index % 2])
        else:
            x = (1.0 - c) * graph.propagate(x)
        yield x.copy()
