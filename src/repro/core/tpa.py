"""TPA: Two-Phase Approximation for RWR (Algorithms 2 and 3).

**Preprocessing phase** (Algorithm 2, once per graph): run PageRank-seeded
CPI and keep only the tail from iteration ``T`` onward — the *stranger*
vector ``r̃_stranger = p_stranger``.  Because PageRank is seed independent,
this single length-``n`` vector serves every future query, which is why
TPA's preprocessed data is the smallest among all methods (Figure 1(a)).

**Online phase** (Algorithm 3, once per seed): compute only the *family*
part — the first ``S`` CPI iterations from the seed — then

* estimate the neighbor part by rescaling the family part with the exact
  norm ratio ``((1-c)^S − (1-c)^T) / (1 − (1-c)^S)`` (Lemma 2), and
* add the precomputed stranger vector.

Total L1 error is bounded by ``2 (1-c)^S`` (Theorem 2) and is much smaller
in practice on graphs with block-wise structure (Table III).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.bounds import neighbor_scale, total_bound
from repro.core.cpi import cpi, cpi_many
from repro.exceptions import NotPreprocessedError, ParameterError
from repro.graph.graph import Graph
from repro.method import PPRMethod

__all__ = ["TPA", "TPAParts"]


@dataclass(frozen=True)
class TPAParts:
    """Decomposition of one TPA query (used by the error experiments).

    Attributes
    ----------
    family:
        Exactly computed ``r_family = x(0) + ... + x(S-1)``.
    neighbor:
        The neighbor approximation ``r̃_neighbor`` (scaled family part).
    stranger:
        The precomputed stranger approximation ``r̃_stranger``
        (PageRank tail).
    scores:
        The full TPA estimate, ``family + neighbor + stranger``.
    """

    family: np.ndarray
    neighbor: np.ndarray
    stranger: np.ndarray

    @property
    def scores(self) -> np.ndarray:
        return self.family + self.neighbor + self.stranger


class TPA(PPRMethod):
    """The proposed method.

    Parameters
    ----------
    s_iteration:
        ``S`` — first iteration of the neighbor part; the online phase
        computes exactly ``S`` interim vectors.  Larger ``S`` means slower
        but more accurate queries (Figure 8).
    t_iteration:
        ``T`` — first iteration of the stranger part.  Governs the split
        between the neighbor and stranger approximations; the total error
        is U-shaped in ``T`` (Figure 9).
    c:
        Restart probability (paper default 0.15).
    tol:
        Convergence tolerance for the preprocessing PageRank run.

    Examples
    --------
    >>> from repro.graph import community_graph
    >>> from repro.core import TPA
    >>> graph = community_graph(500, avg_degree=8, seed=7)
    >>> method = TPA(s_iteration=5, t_iteration=10)
    >>> method.preprocess(graph)
    >>> scores = method.query(0)
    >>> scores.shape
    (500,)
    """

    name = "TPA"

    def __init__(
        self,
        s_iteration: int = 5,
        t_iteration: int = 10,
        c: float = 0.15,
        tol: float = 1e-9,
    ):
        super().__init__()
        if s_iteration < 1:
            raise ParameterError("S must be at least 1")
        if t_iteration < s_iteration:
            raise ParameterError(
                f"T must be at least S (T == S disables the neighbor part); "
                f"got S={s_iteration}, T={t_iteration}"
            )
        if not 0.0 < c < 1.0:
            raise ParameterError("restart probability c must be in (0, 1)")
        self.s_iteration = int(s_iteration)
        self.t_iteration = int(t_iteration)
        self.c = float(c)
        self.tol = float(tol)
        self._stranger: np.ndarray | None = None
        # Retained full-PageRank iterate for warm re-preprocessing on
        # mutable graphs (see _preprocess); None on static graphs, whose
        # single preprocessing run keeps the minimal footprint.
        self._pagerank: np.ndarray | None = None
        self._scale = neighbor_scale(self.c, self.s_iteration, self.t_iteration)
        # Online-phase iterate buffers come from the base class's
        # retained workspace, counted in preprocessed_bytes.
        # Preprocessing (Algorithm 2) runs once and uses throwaway
        # buffers so the post-preprocess footprint stays exactly one
        # stranger vector.

    # -- Algorithm 2: preprocessing phase ---------------------------------------

    def _preprocess(self, graph: Graph) -> None:
        """Compute (or warm-restart) the stranger vector.

        On a static graph this is exactly Algorithm 2: one PageRank-seeded
        CPI keeping only iterations ``T..∞``.  On a mutable substrate
        (anything exposing ``epoch_token()``, i.e.
        :class:`repro.dynamic.DynamicGraph`) the previous full PageRank
        iterate is retained and re-preprocessing *warm-restarts* from it:
        the converged pre-update PageRank is an excellent ``x0`` for the
        post-update fixed point, so the dominant cost — the unbounded
        PageRank tail — shrinks to a handful of iterations after small
        edits.  The stranger vector is then recovered as
        ``pagerank − head`` where ``head`` is the exact truncated sum of
        iterations ``0..T-1`` (a fixed ``T``-step run, cheap).

        TPA's *online* phase is a fixed-length truncated sum — there is
        no sound per-query warm start (``supports_warm_start`` stays
        ``False``); warm restart for TPA lives entirely here, in
        re-preprocessing.
        """
        dynamic = callable(getattr(graph, "epoch_token", None))
        warm = self._pagerank
        if (
            warm is not None
            and warm.shape == (graph.num_nodes,)
        ):
            # Warm path: full PageRank restarted from the retained
            # iterate, then split into head (iterations 0..T-1, exact
            # truncated run) and tail (the stranger vector).
            pagerank = cpi(
                graph,
                seeds=None,
                c=self.c,
                tol=self.tol,
                x0=np.ascontiguousarray(warm, dtype=warm.dtype),
            ).scores
            head = cpi(
                graph,
                seeds=None,
                c=self.c,
                tol=self.tol,
                start_iteration=0,
                terminal_iteration=self.t_iteration - 1,
            ).scores
            self._stranger = pagerank - head
            self._pagerank = pagerank
            return
        result = cpi(
            graph,
            seeds=None,  # PageRank seeding: q = 1/n
            c=self.c,
            tol=self.tol,
            start_iteration=self.t_iteration,
            terminal_iteration=None,
        )
        self._stranger = result.scores
        if dynamic:
            # Retain the full PageRank for the next (warm) re-preprocess.
            # Derived as head + stranger: one extra fixed-length truncated
            # run, paid only on mutable graphs — static preprocessing
            # stays byte-identical to Algorithm 2.
            head = cpi(
                graph,
                seeds=None,
                c=self.c,
                tol=self.tol,
                start_iteration=0,
                terminal_iteration=self.t_iteration - 1,
            ).scores
            self._pagerank = head + self._stranger

    @property
    def stranger_vector(self) -> np.ndarray:
        """The precomputed ``r̃_stranger`` (PageRank iterations ``T..∞``)."""
        if self._stranger is None:
            raise NotPreprocessedError("TPA: preprocess() has not run")
        return self._stranger

    def preprocessed_bytes(self) -> int:
        """Resident bytes the online phase depends on: the stranger vector
        (``8n`` — TPA's entire index, the smallest of any method in
        Figure 1(a)) plus the iterate buffers the online phase retains
        between queries (zero until the first query runs)."""
        if self._stranger is None:
            return 0
        return int(self._stranger.nbytes) + self._workspace.nbytes()

    # -- Algorithm 3: online phase -----------------------------------------------

    def query_parts(self, seed: int) -> TPAParts:
        """Run the online phase and return the three-part decomposition."""
        stranger = self.stranger_vector
        family = cpi(
            self.graph,
            seeds=seed,
            c=self.c,
            tol=self.tol,
            start_iteration=0,
            terminal_iteration=self.s_iteration - 1,
            workspace=self._workspace,
        ).scores
        neighbor = self._scale * family
        return TPAParts(family=family, neighbor=neighbor, stranger=stranger)

    def _query(self, seed: int) -> np.ndarray:
        parts = self.query_parts(seed)
        return parts.scores

    def _query_many(self, seeds: np.ndarray) -> np.ndarray:
        """Vectorized online phase: one batched CPI for the whole batch.

        The family parts of all ``B`` seeds propagate as one ``(n, B)``
        matrix — ``S`` sparse matmuls total instead of ``S`` SpMVs per
        seed — and the neighbor scaling plus the shared stranger vector
        are applied with two broadcasts.  Row ``j`` equals
        ``query(seeds[j])`` exactly.
        """
        stranger = self.stranger_vector
        family = cpi_many(
            self.graph,
            seeds,
            c=self.c,
            tol=self.tol,
            start_iteration=0,
            terminal_iteration=self.s_iteration - 1,
            workspace=self._workspace,
        ).scores.T  # back to the (n, B) iteration layout: contiguous passes
        # (scale·family + family) + stranger — float addition commutes, so
        # this matches the single-seed family + neighbor + stranger bit for
        # bit while allocating one matrix instead of three.
        result = self._scale * family
        result += family
        result += stranger[:, np.newaxis]
        return result.T

    def query_seed_set(self, seeds: "list[int] | np.ndarray") -> np.ndarray:
        """Personalized PageRank over a seed *set* (uniform restart mass).

        CPI accepts any seed distribution (Algorithm 1, line 1), so the
        online phase generalizes unchanged: the family part is computed
        from the set's uniform seed vector and the same neighbor scaling
        and stranger tail apply.  The Theorem 2 bound holds verbatim —
        its proof never uses that ``q`` is a unit vector, only
        ``‖q‖₁ = 1``.
        """
        stranger = self.stranger_vector
        family = cpi(
            self.graph,
            seeds=list(seeds),
            c=self.c,
            tol=self.tol,
            start_iteration=0,
            terminal_iteration=self.s_iteration - 1,
            workspace=self._workspace,
        ).scores
        return family + self._scale * family + stranger

    def error_bound(self) -> float:
        """Theorem 2 upper bound on the L1 error of any query."""
        return total_bound(self.c, self.s_iteration)

    # -- persistence ---------------------------------------------------------------

    def save(self, directory: str | os.PathLike) -> None:
        """Persist the preprocessed state (the stranger vector + parameters).

        The preprocessing phase runs once per graph (Algorithm 2); saving
        its output lets a serving process :meth:`load` it and answer
        queries without redoing the PageRank run — the deployment pattern
        the paper's preprocessing/online split is designed for.
        """
        stranger = self.stranger_vector  # raises if not preprocessed
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        np.save(path / "stranger.npy", stranger)
        meta = {
            "format": "repro-tpa-v1",
            "s_iteration": self.s_iteration,
            "t_iteration": self.t_iteration,
            "c": self.c,
            "tol": self.tol,
            "num_nodes": int(stranger.size),
        }
        with open(path / "tpa.json", "w", encoding="utf-8") as handle:
            json.dump(meta, handle)

    @classmethod
    def load(cls, directory: str | os.PathLike, graph: Graph) -> "TPA":
        """Rebuild a ready-to-query TPA from :meth:`save` output.

        ``graph`` must be the graph the state was preprocessed for (the
        node count is verified; deeper mismatches are the caller's
        responsibility, as with any index file).
        """
        path = Path(directory)
        meta_file = path / "tpa.json"
        if not meta_file.exists():
            raise ParameterError(f"{meta_file} not found; call save() first")
        with open(meta_file, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("format") != "repro-tpa-v1":
            raise ParameterError(f"unrecognized TPA state format in {meta_file}")
        if meta["num_nodes"] != graph.num_nodes:
            raise ParameterError(
                f"saved state is for a {meta['num_nodes']}-node graph, "
                f"got one with {graph.num_nodes} nodes"
            )
        method = cls(
            s_iteration=meta["s_iteration"],
            t_iteration=meta["t_iteration"],
            c=meta["c"],
            tol=meta["tol"],
        )
        method._graph = graph
        method._stranger = np.load(path / "stranger.npy")
        return method

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TPA(S={self.s_iteration}, T={self.t_iteration}, c={self.c}, "
            f"preprocessed={self.is_preprocessed})"
        )
