"""Closed-form norms and accuracy bounds from Section III of the paper.

All quantities are exact consequences of column stochasticity:
``‖x(i)‖₁ = c (1-c)^i`` for any seed vector, hence the part norms of
Lemma 2 and the geometric error bounds of Lemmas 1 and 3 and Theorem 2.
These functions feed Table III (actual error vs theoretical bound) and the
property-based tests that assert the bounds hold on every generated graph.
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError

__all__ = [
    "family_norm",
    "neighbor_norm",
    "stranger_norm",
    "neighbor_scale",
    "stranger_bound",
    "neighbor_bound",
    "total_bound",
    "convergence_iterations",
]


def _check_c(c: float) -> None:
    if not 0.0 < c < 1.0:
        raise ParameterError(f"restart probability c must be in (0, 1); got {c}")


def _check_st(s_iteration: int, t_iteration: int) -> None:
    if s_iteration < 1:
        raise ParameterError("S must be at least 1")
    if t_iteration < s_iteration:
        raise ParameterError("T must be at least S (T == S means an empty neighbor part)")


def family_norm(c: float, s_iteration: int) -> float:
    """``‖r_family‖₁ = 1 − (1−c)^S`` (Lemma 2)."""
    _check_c(c)
    if s_iteration < 1:
        raise ParameterError("S must be at least 1")
    return 1.0 - (1.0 - c) ** s_iteration


def neighbor_norm(c: float, s_iteration: int, t_iteration: int) -> float:
    """``‖r_neighbor‖₁ = (1−c)^S − (1−c)^T`` (Lemma 2)."""
    _check_c(c)
    _check_st(s_iteration, t_iteration)
    return (1.0 - c) ** s_iteration - (1.0 - c) ** t_iteration


def stranger_norm(c: float, t_iteration: int) -> float:
    """``‖r_stranger‖₁ = (1−c)^T`` (geometric tail of Lemma 2)."""
    _check_c(c)
    if t_iteration < 1:
        raise ParameterError("T must be at least 1")
    return (1.0 - c) ** t_iteration


def neighbor_scale(c: float, s_iteration: int, t_iteration: int) -> float:
    """The neighbor-approximation scaling factor
    ``‖r_neighbor‖₁ / ‖r_family‖₁`` (Algorithm 3, line 3)."""
    return neighbor_norm(c, s_iteration, t_iteration) / family_norm(c, s_iteration)


def stranger_bound(c: float, t_iteration: int) -> float:
    """Lemma 1: ``‖r_stranger − r̃_stranger‖₁ ≤ 2 (1−c)^T``."""
    return 2.0 * stranger_norm(c, t_iteration)


def neighbor_bound(c: float, s_iteration: int, t_iteration: int) -> float:
    """Lemma 3: ``‖r_neighbor − r̃_neighbor‖₁ ≤ 2(1−c)^S − 2(1−c)^T``."""
    return 2.0 * neighbor_norm(c, s_iteration, t_iteration)


def total_bound(c: float, s_iteration: int) -> float:
    """Theorem 2: ``‖r_CPI − r_TPA‖₁ ≤ 2 (1−c)^S``."""
    _check_c(c)
    if s_iteration < 1:
        raise ParameterError("S must be at least 1")
    return 2.0 * (1.0 - c) ** s_iteration


def convergence_iterations(c: float, tol: float) -> int:
    """Iterations CPI needs so that ``‖x(i)‖₁ = c(1−c)^i < tol``
    (Lemma 4's ``log_{1-c}(ε/c)``), rounded up."""
    _check_c(c)
    if tol <= 0.0:
        raise ParameterError("tolerance must be positive")
    if tol >= c:
        return 0
    return int(math.ceil(math.log(tol / c) / math.log(1.0 - c)))
