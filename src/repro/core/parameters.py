"""Choosing the TPA parameters ``S`` and ``T`` (Section III-C).

The paper tunes ``S`` and ``T`` per dataset: ``S`` trades online time
against accuracy (Theorem 2 bounds the error by ``2(1-c)^S``), while the
total error is U-shaped in ``T`` — too small and the seed-agnostic
PageRank tail swallows nearby nodes, too large and the neighbor
approximation extrapolates the family part across community boundaries.

Two tools are provided:

* :func:`select_parameters` — a cheap, bound-driven default: the smallest
  ``S`` meeting a target error bound, and ``T`` picked by a short measured
  sweep on a few sample seeds.
* :func:`sweep_s` / :func:`sweep_t` — the measured sweeps behind
  Figures 8 and 9.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.bounds import neighbor_scale
from repro.core.cpi import cpi, cpi_parts
from repro.core.tpa import TPA
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["ParameterSweepPoint", "sweep_s", "sweep_t", "select_parameters"]


@dataclass(frozen=True)
class ParameterSweepPoint:
    """One point of an S- or T-sweep.

    Attributes
    ----------
    value:
        The swept parameter value (``S`` or ``T``).
    online_seconds:
        Mean online wall-clock time per query (S-sweeps only; ``nan`` for
        T-sweeps, where the online cost does not depend on ``T``).
    l1_error:
        Mean L1 distance between the TPA estimate and exact CPI.
    neighbor_error:
        Mean ``‖r_neighbor − r̃_neighbor‖₁`` ("NA" curve of Figure 9).
    stranger_error:
        Mean ``‖r_stranger − r̃_stranger‖₁`` ("SA" curve of Figure 9).
    """

    value: int
    online_seconds: float
    l1_error: float
    neighbor_error: float
    stranger_error: float


def _sample_seeds(graph: Graph, num_seeds: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.choice(graph.num_nodes, size=min(num_seeds, graph.num_nodes),
                      replace=False)


def _part_errors(
    graph: Graph,
    query_seed: int,
    s_iteration: int,
    t_iteration: int,
    stranger_estimate: np.ndarray,
    c: float,
    tol: float,
) -> tuple[float, float, float]:
    """Exact per-part errors for one seed: (neighbor, stranger, total)."""
    family, neighbor, stranger = cpi_parts(
        graph, query_seed, s_iteration, t_iteration, c=c, tol=tol
    )
    scale = neighbor_scale(c, s_iteration, t_iteration)
    neighbor_estimate = scale * family
    approx = family + neighbor_estimate + stranger_estimate
    exact = family + neighbor + stranger
    return (
        float(np.abs(neighbor - neighbor_estimate).sum()),
        float(np.abs(stranger - stranger_estimate).sum()),
        float(np.abs(exact - approx).sum()),
    )


def sweep_s(
    graph: Graph,
    s_values: Sequence[int],
    t_iteration: int,
    c: float = 0.15,
    tol: float = 1e-9,
    num_seeds: int = 10,
    rng_seed: int = 0,
) -> list[ParameterSweepPoint]:
    """Measure online time and L1 error as ``S`` varies (Figure 8 workload).

    ``T`` is held fixed (the paper fixes it to 10).
    """
    seeds = _sample_seeds(graph, num_seeds, rng_seed)
    points = []
    for s_value in s_values:
        if s_value >= t_iteration:
            raise ParameterError(f"S={s_value} must stay below T={t_iteration}")
        method = TPA(s_iteration=s_value, t_iteration=t_iteration, c=c, tol=tol)
        method.preprocess(graph)
        times = []
        l1_errors = []
        na_errors = []
        sa_errors = []
        for query_seed in seeds:
            begin = time.perf_counter()
            method.query(int(query_seed))
            times.append(time.perf_counter() - begin)
            na, sa, total = _part_errors(
                graph, int(query_seed), s_value, t_iteration,
                method.stranger_vector, c, tol,
            )
            na_errors.append(na)
            sa_errors.append(sa)
            l1_errors.append(total)
        points.append(
            ParameterSweepPoint(
                value=int(s_value),
                online_seconds=float(np.mean(times)),
                l1_error=float(np.mean(l1_errors)),
                neighbor_error=float(np.mean(na_errors)),
                stranger_error=float(np.mean(sa_errors)),
            )
        )
    return points


def sweep_t(
    graph: Graph,
    t_values: Sequence[int],
    s_iteration: int = 5,
    c: float = 0.15,
    tol: float = 1e-9,
    num_seeds: int = 10,
    rng_seed: int = 0,
) -> list[ParameterSweepPoint]:
    """Measure NA / SA / total L1 errors as ``T`` varies (Figure 9 workload).

    ``S`` is held fixed (the paper fixes it to 5).
    """
    seeds = _sample_seeds(graph, num_seeds, rng_seed)
    points = []
    for t_value in t_values:
        if t_value < s_iteration:
            raise ParameterError(f"T={t_value} must be at least S={s_iteration}")
        stranger_estimate = cpi(
            graph, None, c=c, tol=tol, start_iteration=t_value
        ).scores
        na_errors = []
        sa_errors = []
        l1_errors = []
        for query_seed in seeds:
            na, sa, total = _part_errors(
                graph, int(query_seed), s_iteration, t_value,
                stranger_estimate, c, tol,
            )
            na_errors.append(na)
            sa_errors.append(sa)
            l1_errors.append(total)
        points.append(
            ParameterSweepPoint(
                value=int(t_value),
                online_seconds=float("nan"),
                l1_error=float(np.mean(l1_errors)),
                neighbor_error=float(np.mean(na_errors)),
                stranger_error=float(np.mean(sa_errors)),
            )
        )
    return points


def select_parameters(
    graph: Graph,
    target_error: float = 0.3,
    c: float = 0.15,
    tol: float = 1e-9,
    t_candidates: Sequence[int] | None = None,
    num_seeds: int = 5,
    rng_seed: int = 0,
) -> tuple[int, int]:
    """Pick ``(S, T)`` for a graph.

    ``S`` is the smallest value whose Theorem-2 bound ``2(1-c)^S`` is below
    ``target_error``; ``T`` minimizes the measured total L1 error over
    ``t_candidates`` (default ``{S+1, S+2, S+5, S+10, S+15}``) on a few
    random seeds, mirroring how the paper tunes Table II per dataset.
    """
    if target_error <= 0 or target_error >= 2:
        raise ParameterError("target_error must be in (0, 2)")
    s_iteration = max(
        1, int(math.ceil(math.log(target_error / 2.0) / math.log(1.0 - c)))
    )
    if t_candidates is None:
        t_candidates = [
            s_iteration + 1,
            s_iteration + 2,
            s_iteration + 5,
            s_iteration + 10,
            s_iteration + 15,
        ]
    points = sweep_t(
        graph,
        t_candidates,
        s_iteration=s_iteration,
        c=c,
        tol=tol,
        num_seeds=num_seeds,
        rng_seed=rng_seed,
    )
    best = min(points, key=lambda p: p.l1_error)
    return s_iteration, int(best.value)
