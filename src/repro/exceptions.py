"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by this package derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphFormatError(ReproError):
    """An edge-list file or in-memory edge structure is malformed."""


class DanglingNodeError(ReproError):
    """A graph contains nodes with zero out-degree and the chosen
    normalization policy forbids them."""


class NotPreprocessedError(ReproError):
    """A two-phase method was queried before :meth:`preprocess` ran."""


class MemoryBudgetExceeded(ReproError):
    """Preprocessed data exceeded the configured memory budget.

    Mirrors the paper's 200 GB workstation cap under which BEAR-APPROX and
    NB-LIN fail on the larger datasets (Section IV-A2).
    """

    def __init__(self, method: str, required_bytes: int, budget_bytes: int):
        self.method = method
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"{method} requires {required_bytes} bytes of preprocessed data "
            f"which exceeds the memory budget of {budget_bytes} bytes"
        )


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration cap."""


class ServerOverloaded(ReproError):
    """The serving admission queue is full and the request was rejected.

    Raised by :meth:`repro.serving.Scheduler.submit` (and therefore
    :meth:`repro.serving.Server.submit`) when ``max_pending`` requests
    are already waiting — backpressure instead of unbounded queueing.
    Clients should retry with backoff or shed load.
    """

    #: Overload is transient by definition — the queue drains.  Retry
    #: policies (:class:`repro.resilience.RetryPolicy`) key on this.
    retryable = True

    def __init__(self, pending: int, max_pending: int):
        self.pending = pending
        self.max_pending = max_pending
        super().__init__(
            f"admission queue full: {pending} requests pending "
            f"(max_pending={max_pending})"
        )

    def __reduce__(self):
        # args holds the formatted message, not the two constructor
        # parameters — without this, pickling the exception across a
        # process boundary breaks reconstruction.
        return (type(self), (self.pending, self.max_pending))


class DeadlineExceeded(ReproError):
    """A request's ``deadline_ms`` elapsed before a worker computed it.

    Raised onto the request's future by the dispatch path (never
    mid-compute: a batch that started in time is allowed to finish, so
    results are always either complete or typed failures).  Deadlined
    requests must not be blindly retried — the deadline already passed —
    so this is **not** retryable.
    """

    retryable = False

    def __init__(self, deadline_ms: float, waited_ms: float):
        self.deadline_ms = float(deadline_ms)
        self.waited_ms = float(waited_ms)
        super().__init__(
            f"deadline of {self.deadline_ms:g} ms exceeded after "
            f"{self.waited_ms:.1f} ms in queue"
        )

    def __reduce__(self):
        # Same pickling concern as ServerOverloaded: args holds the
        # formatted message, not the constructor parameters.
        return (type(self), (self.deadline_ms, self.waited_ms))


class WorkerFailure(ReproError, RuntimeError):
    """A shard worker process failed mid-protocol.

    ``kind`` distinguishes the failure modes the recovery paths treat
    differently:

    * ``"died"`` — the pipe reported EOF / broke: the process is gone
      (or going).  The supervisor or the sweep retry respawns it.
    * ``"timeout"`` — no reply within the step timeout: hung or wedged.
      Treated like death (the worker is killed and respawned) because a
      wedged worker holds shared panels hostage.
    * ``"error"`` — the worker itself reported an exception (its
      traceback is in ``detail``).  The process is healthy; only the
      step failed, so recovery retries without a respawn.
    * ``"init"`` — the worker never came up.

    Inherits :class:`RuntimeError` so callers written against the
    pre-resilience protocol (which raised bare ``RuntimeError``) keep
    working.  Worker death is transient — the deployment respawns — so
    the failure is retryable.
    """

    retryable = True

    def __init__(self, shard: int, kind: str, detail: str = ""):
        self.shard = int(shard)
        self.kind = str(kind)
        self.detail = str(detail)
        super().__init__(
            f"shard {self.shard} worker {self.kind}"
            + (f": {self.detail}" if self.detail else "")
        )

    def __reduce__(self):
        return (type(self), (self.shard, self.kind, self.detail))


class ParameterError(ReproError):
    """An algorithm parameter is outside its valid domain."""
