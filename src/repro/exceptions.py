"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by this package derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphFormatError(ReproError):
    """An edge-list file or in-memory edge structure is malformed."""


class DanglingNodeError(ReproError):
    """A graph contains nodes with zero out-degree and the chosen
    normalization policy forbids them."""


class NotPreprocessedError(ReproError):
    """A two-phase method was queried before :meth:`preprocess` ran."""


class MemoryBudgetExceeded(ReproError):
    """Preprocessed data exceeded the configured memory budget.

    Mirrors the paper's 200 GB workstation cap under which BEAR-APPROX and
    NB-LIN fail on the larger datasets (Section IV-A2).
    """

    def __init__(self, method: str, required_bytes: int, budget_bytes: int):
        self.method = method
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"{method} requires {required_bytes} bytes of preprocessed data "
            f"which exceeds the memory budget of {budget_bytes} bytes"
        )


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration cap."""


class ServerOverloaded(ReproError):
    """The serving admission queue is full and the request was rejected.

    Raised by :meth:`repro.serving.Scheduler.submit` (and therefore
    :meth:`repro.serving.Server.submit`) when ``max_pending`` requests
    are already waiting — backpressure instead of unbounded queueing.
    Clients should retry with backoff or shed load.
    """

    def __init__(self, pending: int, max_pending: int):
        self.pending = pending
        self.max_pending = max_pending
        super().__init__(
            f"admission queue full: {pending} requests pending "
            f"(max_pending={max_pending})"
        )

    def __reduce__(self):
        # args holds the formatted message, not the two constructor
        # parameters — without this, pickling the exception across a
        # process boundary breaks reconstruction.
        return (type(self), (self.pending, self.max_pending))


class ParameterError(ReproError):
    """An algorithm parameter is outside its valid domain."""
