"""Thread-safe shared score-vector cache.

:class:`ScoreCache` is the Engine's LRU promoted into a standalone,
lock-guarded object so it can be *shared*: under
:class:`repro.serving.Server` every per-worker Engine replica points at
one cache, and a vector computed by any worker answers every later
request for that seed — replicas pool hits instead of each warming a
private cache ``workers`` times over.

Keys are ``(seed, repro.kernels.cache_token())``: the token names the
active kernel backend and compute dtype, so flipping either mid-serve
can never replay a vector computed under the previous numeric
configuration (the same contract the Engine's private cache has had
since PR 2).  Stored vectors are marked read-only — many threads may
hold the same array at once.

A cache is additionally *bound* to one serving identity (method family
+ graph) by the first Engine that attaches it (:meth:`ScoreCache.bind`);
attaching it to an engine serving a different method or graph raises
instead of silently cross-serving one method's vectors as another's.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro import kernels
from repro.exceptions import ParameterError
from repro.obs import metrics as obs_metrics

__all__ = ["ScoreCache"]


def _cache_counter(event: str):
    return obs_metrics.get_registry().counter(
        f"repro_cache_{event}_total",
        f"Shared score-cache {event} across every attached engine.",
    )


class ScoreCache:
    """A lock-guarded LRU of per-seed score vectors.

    Parameters
    ----------
    capacity:
        Maximum number of retained vectors (must be positive).  Inserting
        past capacity evicts least-recently-used entries.

    Notes
    -----
    All operations are safe to call from any thread.  :meth:`put` marks
    the vector read-only in place — the caller relinquishes write access
    when it caches (the Engine hands over a fresh contiguous copy).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ParameterError("ScoreCache capacity must be at least 1")
        self._capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[int, str], np.ndarray]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._identity: tuple | None = None

    @property
    def capacity(self) -> int:
        """Maximum number of retained vectors."""
        return self._capacity

    def bind(self, identity: tuple) -> None:
        """Stamp the cache with the serving identity of the engine
        attaching it (done by ``Engine.__init__``).

        The first bind records ``identity``; a later bind with a
        different identity raises :class:`ParameterError` — one cache
        must never be shared across different methods or graphs, where
        a seed collision would silently serve the wrong vector.
        Replicas (``Engine.replicate``) carry the same identity, so the
        intended sharing always binds cleanly.
        """
        with self._lock:
            if self._identity is None:
                self._identity = identity
            elif self._identity != identity:
                raise ParameterError(
                    "ScoreCache is already bound to a different "
                    "method/graph; sharing one cache across "
                    "incompatible engines would cross-serve vectors"
                )

    def get(self, seed: int, token: str | None = None) -> np.ndarray | None:
        """The cached read-only vector for ``seed`` under the current
        kernel configuration, or ``None``.  Counts a hit or a miss.

        ``token`` optionally supplies a precomputed
        :func:`repro.kernels.cache_token` — engines serving a mutable
        graph mint one token per batch (carrying the graph epoch) and
        use it for both :meth:`get` and :meth:`put`, so a vector
        computed while a mutation raced the batch lands under the
        *pre-mutation* token and is unreachable from any post-mutation
        lookup.
        """
        key = (seed, kernels.cache_token() if token is None else token)
        with self._lock:
            vector = self._entries.get(key)
            if vector is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        _cache_counter("hits" if vector is not None else "misses").inc()
        return vector

    def put(
        self, seed: int, vector: np.ndarray, token: str | None = None
    ) -> None:
        """Cache ``vector`` for ``seed``, evicting LRU entries past
        capacity.  The array is marked read-only in place."""
        vector.setflags(write=False)
        key = (seed, kernels.cache_token() if token is None else token)
        evicted = 0
        with self._lock:
            self._entries[key] = vector
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            _cache_counter("evictions").inc(evicted)

    def warm_hint(self, seed: int) -> np.ndarray | None:
        """The most recently cached vector for ``seed`` under *any*
        token, or ``None``.

        Unlike :meth:`get` this ignores the configuration token, so the
        returned vector may be stale — computed on a pre-mutation graph
        generation — and must never be served as an answer.  It is the
        warm-start iterate (``x0``) the Engine hands a
        ``supports_warm_start`` method after an epoch change: a stale
        converged vector is an excellent first guess for the post-update
        fixed point.  Counts neither a hit nor a miss, and does not
        touch LRU order.
        """
        with self._lock:
            best = None
            for (cached_seed, _token), vector in self._entries.items():
                if cached_seed == seed:
                    best = vector  # insertion order: last match is newest
            return best

    def clear(self) -> None:
        """Drop every cached vector (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Cache counters: hits, misses, evictions, entries, capacity."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "capacity": self._capacity,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"ScoreCache(entries={stats['entries']}/{self._capacity}, "
            f"hits={stats['hits']}, misses={stats['misses']})"
        )
