"""The concurrent serving front end: worker pool over Engine replicas.

:class:`Server` is what turns the batched :class:`~repro.engine.Engine`
into a *service*.  Clients on any thread call :meth:`Server.submit`
(or the blocking :meth:`Server.query` / :meth:`Server.batch`) and the
pieces below cooperate:

* a :class:`~repro.serving.scheduler.Scheduler` coalesces the incoming
  single requests into micro-batches (``max_batch`` / ``max_wait_ms``),
  so concurrent single-seed traffic gets the measured batched-SpMM
  speedup without any client-side batching;
* ``workers`` threads each own one **Engine replica**
  (:meth:`repro.engine.Engine.replicate`): the preprocessed arrays, the
  graph, and the score cache are shared read-only, while every mutable
  piece — the method's :class:`~repro.kernels.Workspace` scratch, the
  engine's ranking buffers, its lock and counters — is per worker.
  Replicas therefore run concurrently without aliasing scratch, and the
  compiled ``prange`` kernels release the GIL, so workers genuinely
  overlap on multi-core hosts;
* one shared :class:`~repro.serving.cache.ScoreCache` (``cache_size >
  0``) pools hits across all replicas;
* admission control bounds the queue (``max_pending`` →
  :class:`~repro.exceptions.ServerOverloaded`) and
  :class:`~repro.serving.metrics.LatencyStats` records every request's
  queue-time/compute-time split and p50/p95/p99.

Results are plain :class:`~repro.engine.QueryResult` records, identical
(up to the ``seconds``/``cached`` accounting fields) to what a serial
``Engine.batch`` over the same requests returns — concurrency never
changes scores or rankings.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Iterable, Sequence

import numpy as np

from repro.engine import Engine, QueryRequest, QueryResult
from repro.exceptions import DeadlineExceeded, ParameterError
from repro.graph.graph import Graph
from repro.method import PPRMethod
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.exporter import ObsExporter, start_exporter
from repro.obs.logs import get_logger
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.resilience.supervisor import Supervisor
from repro.serving.cache import ScoreCache
from repro.serving.metrics import LatencyStats, front_stats
from repro.serving.scheduler import PendingRequest, Scheduler

__all__ = ["Server", "dispatch_batch", "resolve_future"]

_log = get_logger("serving")


def resolve_future(future: "Future", result=None, error=None) -> None:
    """Fulfil one client future, tolerating a concurrent ``cancel()`` —
    a client that timed out and cancelled between our cancelled() check
    and the set would otherwise raise ``InvalidStateError`` here and
    silently kill the worker thread."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass  # the client cancelled; nobody is waiting for this one


def dispatch_batch(
    engine: Engine,
    metrics: LatencyStats,
    batch: Sequence[PendingRequest],
    retry: RetryPolicy | None = None,
) -> None:
    """Run one micro-batch on ``engine`` and fulfil its futures.

    Requests whose queue deadline (``QueryRequest.deadline_ms``) already
    passed fail fast with :class:`~repro.exceptions.DeadlineExceeded`
    before any compute — a batch that *starts* in time always completes.
    With a :class:`~repro.resilience.RetryPolicy`, retryable batch
    failures (worker death on a sharded engine) re-run the whole batch —
    ``Engine.batch`` is pure over its score cache, so a retried batch
    returns results bitwise identical to an undisturbed one.  A finally
    failing batch fails every member's future — clients see the
    exception, the dispatching worker survives.  Shared by
    :class:`Server`'s worker threads and the
    :class:`repro.sharding.Router`'s dispatcher.
    """
    dispatched_at = time.perf_counter()
    live: list[PendingRequest] = []
    for pending in batch:
        if (
            pending.deadline_at is not None
            and dispatched_at >= pending.deadline_at
        ):
            waited_ms = (dispatched_at - pending.submitted_at) * 1e3
            deadline_ms = getattr(
                pending.request, "deadline_ms", None
            )
            metrics.count("deadlines_exceeded")
            if pending.root_span is not None:
                pending.root_span.finish(
                    end=dispatched_at, outcome="deadline_exceeded"
                )
            resolve_future(
                pending.future,
                error=DeadlineExceeded(
                    waited_ms if deadline_ms is None else deadline_ms,
                    waited_ms,
                ),
            )
        else:
            live.append(pending)
    if not live:
        return

    # Tracing: every traced member gets a "scheduler" (queue-wait) span;
    # the batch's single "dispatch" span parents under the *first*
    # traced request — a batch is one unit of work, and one connected
    # tree beats per-member duplicates of identical compute spans.
    traced = [pending for pending in live if pending.trace_id is not None]
    for pending in traced:
        queue_span = obs_trace.start_span(
            "scheduler",
            pending.trace_id,
            parent_id=pending.root_span.span_id
            if pending.root_span is not None
            else None,
            begin=pending.submitted_at,
        )
        if queue_span is not None:
            queue_span.finish(end=dispatched_at)
    primary = traced[0] if traced else None
    dispatch_span = (
        obs_trace.start_span(
            "dispatch",
            primary.trace_id,
            parent_id=primary.root_span.span_id
            if primary.root_span is not None
            else None,
            begin=dispatched_at,
            batch=len(live),
        )
        if primary is not None
        else None
    )

    def run_batch():
        return engine.batch([pending.request for pending in live])

    phases: dict[str, float] = {}
    context = (
        obs_trace.use_context(primary.trace_id, dispatch_span.span_id)
        if dispatch_span is not None
        else obs_trace.use_context(None, None)
    )
    try:
        with obs_trace.collect_phases(phases), context:
            if retry is None:
                results = run_batch()
            else:
                results = call_with_retry(
                    run_batch,
                    retry,
                    on_retry=lambda error, delay_ms: metrics.count(
                        "retries"
                    ),
                )
    except BaseException as error:  # noqa: BLE001 - forwarded to clients
        metrics.count("failures", len(live))
        _log.warning(
            "batch of %d failed: %s", len(live), error, exc_info=True
        )
        if dispatch_span is not None:
            dispatch_span.finish(outcome="error")
        for pending in live:
            if pending.root_span is not None:
                pending.root_span.finish(
                    outcome="error", error=type(error).__name__
                )
            resolve_future(pending.future, error=error)
        return
    finished_at = time.perf_counter()
    if dispatch_span is not None:
        dispatch_span.finish(end=finished_at, outcome="ok")
    compute_share = (finished_at - dispatched_at) / len(live)
    phases["dispatch"] = finished_at - dispatched_at
    metrics.record_phases(phases)
    for pending, result in zip(live, results):
        queue_seconds = dispatched_at - pending.submitted_at
        total_seconds = finished_at - pending.submitted_at
        metrics.record(
            queue_seconds=queue_seconds,
            compute_seconds=compute_share,
            total_seconds=total_seconds,
        )
        # Server-side split stamped on the future *before* it resolves,
        # so a client unblocked by result() always sees it — loadgen
        # reads this to attribute its wall-clock to queue vs compute.
        pending.future.repro_timing = {
            "queue_ms": queue_seconds * 1e3,
            "compute_ms": compute_share * 1e3,
            "total_ms": total_seconds * 1e3,
        }
        if pending.root_span is not None:
            pending.root_span.finish(end=finished_at, outcome="ok")
        resolve_future(pending.future, result=result)


class Server:
    """Concurrent micro-batching server over per-worker Engine replicas.

    Parameters
    ----------
    method:
        The RWR method to serve.  Preprocessed once (in the constructor,
        via the primary Engine) and then shared read-only by every
        worker replica.
    graph:
        Graph to preprocess for (optional when ``method`` already is).
    workers:
        Worker-thread count — one Engine replica each.
    max_batch / max_wait_ms:
        Micro-batching knobs (see :class:`~repro.serving.Scheduler`).
    max_pending:
        Admission bound; ``0`` disables backpressure.
    cache_size:
        Capacity of the *shared* :class:`ScoreCache`; ``0`` disables
        caching.
    reorder / stream_block / memory_budget_bytes:
        Forwarded to :class:`~repro.engine.Engine`.
    warm:
        Run one throwaway query per replica before accepting traffic
        (default).  This populates lazily-built shared state (decayed
        operators, JIT code) serially, so worker threads never race to
        create it.
    tune:
        A :class:`repro.tune.TuneProfile`.  Supplies defaults for every
        knob the caller leaves at ``None`` — ``workers``, ``max_batch``,
        ``max_wait_ms`` — and flows into the primary Engine (block
        width, global tile/thread knobs).  Explicit arguments always
        win over the profile.
    pin:
        Pin each worker thread to its own core set
        (:func:`repro.tune.plan_pinning`).  Default: pin exactly when a
        tuned profile was given; pass ``False`` to override.  Degrades
        to unpinned with a :class:`~repro.tune.PinningWarning` where
        the platform cannot pin; results are identical either way.
    supervise:
        Heartbeat the worker threads and restart any that die on their
        own Engine replica (default; period from ``REPRO_HEARTBEAT_MS``
        unless ``heartbeat_ms`` overrides it).  Restarts count as
        ``respawns`` in :meth:`stats`.
    retry:
        A :class:`~repro.resilience.RetryPolicy` re-running a failed
        micro-batch when its error is retryable (worker death on a
        sharded engine).  Default ``None``: batch failures propagate to
        clients on the first occurrence, matching pre-resilience
        behaviour.
    obs_port:
        Attach a live :class:`~repro.obs.ObsExporter` (``/metrics``,
        ``/health``, ``/snapshot``, ``/traces``, ``/profile``) on this
        port (``0`` = ephemeral; read :attr:`exporter`).  Owned by the
        server and shut down by :meth:`close`.  Default ``None``
        consults ``REPRO_OBS_PORT`` and, when set, joins the shared
        per-process listener.  ``/health`` answers 503 while any worker
        thread is down or the scheduler is saturated.

    Examples
    --------
    >>> from repro import Server, community_graph, create_method
    >>> graph = community_graph(1000, avg_degree=10, seed=7)
    >>> with Server(create_method("tpa"), graph, workers=2) as server:
    ...     future = server.submit(QueryRequest(seed=0, k=10))
    ...     result = future.result()
    """

    def __init__(
        self,
        method: PPRMethod,
        graph: Graph | None = None,
        *,
        workers: int | None = None,
        max_batch: int | None = None,
        max_wait_ms: float | None = None,
        max_pending: int = 1024,
        cache_size: int = 0,
        reorder: str | None = None,
        stream_block: int | str | None = None,
        memory_budget_bytes: int | None = None,
        warm: bool = True,
        tune=None,
        pin: bool | None = None,
        supervise: bool = True,
        heartbeat_ms: float | None = None,
        retry: RetryPolicy | None = None,
        obs_port: int | None = None,
    ):
        # Precedence: explicit argument > tuned profile > static default.
        if workers is None:
            workers = int(tune.workers) if tune is not None else 2
        if max_batch is None:
            max_batch = int(tune.max_batch) if tune is not None else 32
        if max_wait_ms is None:
            max_wait_ms = float(tune.max_wait_ms) if tune is not None else 2.0
        if pin is None:
            pin = tune is not None
        if workers < 1:
            raise ParameterError("workers must be at least 1")
        if cache_size < 0:
            raise ParameterError("cache_size must be non-negative")
        # Cheap argument validation first: a max_batch typo must not
        # surface only after minutes of preprocessing.
        self._scheduler = Scheduler(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
        )
        self._cache = ScoreCache(cache_size) if cache_size else None
        self._primary = Engine(
            method,
            graph,
            reorder=reorder,
            stream_block=stream_block,
            memory_budget_bytes=memory_budget_bytes,
            cache=self._cache,
            tune=tune,
        )
        # Every worker serves on a replica — never on the primary, whose
        # method is the caller's live object (they may keep querying it
        # outside the server; sharing its workspace scratch with a
        # worker thread would corrupt scores).
        self._engines = [self._primary.replicate() for _ in range(workers)]
        if warm:
            # One serial pass per replica: builds the shared decayed
            # operator / JIT code before any concurrency, and sizes each
            # replica's retained workspace.  Bypasses the engines (no
            # stats/cache pollution) and runs in the *serving* id space,
            # so any valid node works.
            probe = np.zeros(1, dtype=np.int64)
            for engine in self._engines:
                engine.method.query_many(probe)
        self._metrics = LatencyStats()
        self._retry = retry
        self._closed = False
        self._pinning: list[tuple[int, ...]] | None = None
        if pin:
            from repro.tune.pinning import plan_pinning

            self._pinning = plan_pinning(workers)
        # Guards thread revival: the supervisor's repair and close() must
        # not race to replace the same slot.
        self._revive_lock = threading.Lock()
        self._threads = [
            self._make_thread(index) for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        self._supervisor: Supervisor | None = None
        if supervise:
            self._supervisor = Supervisor(
                self._probe_threads,
                self._revive_thread,
                name="repro-serve-supervisor",
                interval_ms=heartbeat_ms,
            )
        # Operational surface: sampler (REPRO_PROFILE-gated no-op when
        # off) and HTTP exporter (obs_port= / REPRO_OBS_PORT).
        obs_profile.arm()
        self._obs_name = f"server-{id(self):x}"
        self._exporter, self._owns_exporter = start_exporter(obs_port)
        if self._exporter is not None:
            self._exporter.add_check(self._obs_name, self._health_check)

    def _make_thread(self, index: int) -> threading.Thread:
        return threading.Thread(
            target=self._worker_loop,
            args=(
                self._engines[index],
                (
                    self._pinning[index]
                    if self._pinning is not None
                    else None
                ),
            ),
            name=f"repro-serve-{index}",
            daemon=True,
        )

    def _probe_threads(self):
        """Indices of worker threads that died (crash, injected fault)."""
        if self._closed:
            return ()
        return [
            index for index, thread in enumerate(self._threads)
            if not thread.is_alive()
        ]

    def _revive_thread(self, index: int) -> None:
        """Restart a dead worker on its own replica.

        The replica itself is safe to reuse: a thread only dies *between*
        batches (dispatch_batch contains every per-batch failure), so the
        replica's workspace is never left mid-computation.
        """
        with self._revive_lock:
            if self._closed or self._threads[index].is_alive():
                return
            thread = self._make_thread(index)
            self._threads[index] = thread
            thread.start()
            self._metrics.count("respawns")

    # -- introspection ---------------------------------------------------------

    @property
    def workers(self) -> int:
        """Worker-thread (= Engine-replica) count."""
        return len(self._engines)

    @property
    def engine(self) -> Engine:
        """The primary Engine (whose constructor preprocessed).  It
        never serves a worker thread — that is what the replicas are
        for — so it is safe to use directly alongside the server."""
        return self._primary

    @property
    def cache(self) -> ScoreCache | None:
        """The shared score cache, when ``cache_size > 0``."""
        return self._cache

    @property
    def metrics(self) -> LatencyStats:
        """The server's latency recorder."""
        return self._metrics

    @property
    def pending(self) -> int:
        """Requests currently queued for dispatch."""
        return self._scheduler.pending

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def exporter(self) -> ObsExporter | None:
        """The attached observability endpoint, if any."""
        return self._exporter

    def _health_check(self) -> dict:
        """Readiness for ``/health``: every worker thread alive and the
        scheduler not saturated.  Runs on exporter scrape threads; reads
        only cheap state."""
        if self._closed:
            return {"ready": False, "reason": "closed"}
        alive = sum(1 for thread in self._threads if thread.is_alive())
        pending = self._scheduler.pending
        max_pending = self._scheduler.max_pending
        saturated = bool(max_pending) and pending >= max_pending
        return {
            "ready": alive == len(self._threads) and not saturated,
            "workers_alive": alive,
            "workers": len(self._threads),
            "pending": pending,
            "max_pending": max_pending,
            "backpressure": saturated,
        }

    def stats(self) -> dict:
        """One merged view: latency snapshot, queue depth, worker count,
        per-replica engine counters summed, and shared-cache counters.
        Shaped by :func:`~repro.serving.metrics.front_stats`, so the
        keys match :meth:`repro.sharding.Router.stats` exactly
        (``shards`` is ``None`` here — threads, not processes)."""
        snapshots = [engine.stats() for engine in self._engines]
        return front_stats(
            self._metrics.snapshot(),
            workers=self.workers,
            pending=self.pending,
            max_batch=self._scheduler.max_batch,
            max_wait_ms=self._scheduler.max_wait_ms,
            overloads=self._scheduler.overloads,
            pinning=(
                [list(cpus) for cpus in self._pinning]
                if self._pinning is not None
                else None
            ),
            queries_served=sum(
                snap["queries_served"] for snap in snapshots
            ),
            online_seconds=sum(
                snap["online_seconds"] for snap in snapshots
            ),
            cache_stats=(
                self._cache.stats() if self._cache is not None else None
            ),
            shard_stats=None,
        )

    # -- the client surface ----------------------------------------------------

    def submit(self, request: QueryRequest) -> "Future[QueryResult]":
        """Queue one request; returns the future its
        :class:`~repro.engine.QueryResult` lands on.

        Validation happens *here*, on the submitting thread — a
        malformed request raises immediately instead of poisoning the
        micro-batch it would have joined.  Raises
        :class:`~repro.exceptions.ServerOverloaded` under backpressure
        and :class:`RuntimeError` after :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        if request.k is not None and request.k < 1:
            raise ParameterError("k must be at least 1")
        # Seed ids are validated in the caller's id space, which matches
        # the serving space in size (reordering is a permutation).
        self.engine.method.validate_seed(request.seed)
        return self._scheduler.submit(request)

    def query(
        self,
        seed: int,
        k: int | None = None,
        exclude_seed: bool = True,
        exclude_neighbors: bool = False,
        timeout: float | None = None,
    ) -> QueryResult:
        """Blocking convenience wrapper: submit one request, wait."""
        future = self.submit(
            QueryRequest(
                seed=seed, k=k, exclude_seed=exclude_seed,
                exclude_neighbors=exclude_neighbors,
            )
        )
        return future.result(timeout)

    def batch(
        self,
        requests: Iterable[QueryRequest],
        timeout: float | None = None,
    ) -> list[QueryResult]:
        """Submit a request sequence and wait for every result.

        Results come back in request order, exactly as
        :meth:`Engine.batch` orders them.  The requests flow through the
        same scheduler as everyone else's, so they may coalesce with
        concurrent traffic.  If admission control rejects a request
        mid-sequence, the already-submitted ones are cancelled where
        still possible before the
        :class:`~repro.exceptions.ServerOverloaded` propagates — a
        retry must not double-compute the prefix.
        """
        futures = []
        try:
            for request in requests:
                futures.append(self.submit(request))
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return [future.result(timeout) for future in futures]

    # -- lifecycle -------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut the server down.

        ``drain=True`` (default) lets workers finish every queued
        request before exiting; ``drain=False`` cancels queued requests
        (their futures report cancelled).  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        # Supervisor down first (joined): after this no revival can race
        # the drain below.
        if self._supervisor is not None:
            self._supervisor.close()
        if not drain:
            self._scheduler.cancel_pending()
        self._scheduler.close()
        for thread in self._threads:
            thread.join(timeout)
        exporter, self._exporter = self._exporter, None
        if exporter is not None:
            exporter.remove_check(self._obs_name)
            if self._owns_exporter:
                exporter.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the worker loop -------------------------------------------------------

    def _worker_loop(
        self, engine: Engine, pin_cpus: tuple[int, ...] | None = None
    ) -> None:
        if pin_cpus:
            # sched_setaffinity(0, ...) binds the calling *thread* on
            # Linux, so each worker lands on its own core set.  A failed
            # pin warns and the worker serves unpinned.
            from repro.tune.pinning import pin_current

            pin_current(pin_cpus)
        scheduler = self._scheduler
        metrics = self._metrics
        while True:
            # Chaos hook: simulate this worker thread dying.  Placed
            # *before* next_batch so a killed worker never takes queued
            # futures down with it — the batch stays in the scheduler for
            # a surviving (or revived) worker.
            if faults.fire("server_worker_crash") is not None:
                return
            batch = scheduler.next_batch()
            if batch is None:
                return  # closed and drained
            dispatch_batch(engine, metrics, batch, retry=self._retry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Server(method={self.engine.method.name}, "
            f"workers={self.workers}, "
            f"max_batch={self._scheduler.max_batch}, "
            f"pending={self.pending})"
        )
