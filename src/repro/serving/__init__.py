"""Concurrent serving subsystem: micro-batching over Engine replicas.

The paper's deployment story — answering RWR queries online at
interactive latency for heavy multi-user traffic — needs more than a
fast :class:`~repro.engine.Engine`: it needs *concurrency*.  This
package supplies the serving layer on top of the batched engine:

* :class:`Scheduler` — accepts ``submit(QueryRequest) -> Future`` calls
  from any number of client threads and coalesces them into
  micro-batches (``max_batch`` / ``max_wait_ms``), so concurrent
  single-seed traffic automatically rides the batched online pass;
* :class:`Server` — a pool of worker threads, each owning one Engine
  replica (:meth:`repro.engine.Engine.replicate`): preprocessed arrays,
  graph, and cache shared read-only; workspace scratch, locks, and
  counters private per worker, so the GIL-released compiled kernels
  overlap across cores;
* :class:`ScoreCache` — the Engine's LRU promoted into a lock-guarded
  shared object with hit/miss/eviction counters, pooled across all
  replicas;
* admission control (:class:`~repro.exceptions.ServerOverloaded` once
  ``max_pending`` requests queue) plus :class:`LatencyStats` — per
  request queue-time vs compute-time and p50/p95/p99 latency;
* :func:`run_closed_loop` — the closed-loop load generator behind
  ``python -m repro serve-bench`` and the serving benchmarks.

Quickstart::

    from repro import QueryRequest, Server, community_graph, create_method

    graph = community_graph(10_000, avg_degree=10, seed=7)
    with Server(create_method("tpa"), graph, workers=4,
                max_batch=32, max_wait_ms=2.0, cache_size=1024) as server:
        futures = [server.submit(QueryRequest(seed=s, k=10))
                   for s in range(100)]
        results = [f.result() for f in futures]
        print(server.stats()["latency_p99_ms"])
"""

from repro.serving.cache import ScoreCache
from repro.serving.loadgen import LoadReport, run_closed_loop
from repro.serving.metrics import (
    REPORT_SCHEMA,
    LatencyStats,
    bench_report,
    front_stats,
    latency_histogram,
    percentiles,
)
from repro.serving.scheduler import PendingRequest, Scheduler
from repro.serving.server import Server

__all__ = [
    "ScoreCache",
    "Scheduler",
    "PendingRequest",
    "Server",
    "LatencyStats",
    "percentiles",
    "latency_histogram",
    "bench_report",
    "front_stats",
    "REPORT_SCHEMA",
    "LoadReport",
    "run_closed_loop",
]
