"""Serving-side latency accounting.

Every request that flows through :class:`repro.serving.Server` is timed
twice: *queue time* (submit → a worker picks its micro-batch up) and
*compute time* (its share of the batch's online pass).  The split is the
first thing to look at when a serving deployment misbehaves — a fast
engine behind a deep queue and a slow engine behind an empty one need
opposite fixes (more workers / bigger ``max_batch`` vs kernel work).

:class:`LatencyStats` is a thread-safe recorder of those samples with
percentile snapshots (p50/p95/p99), bounded to the most recent
``capacity`` requests so a long-lived server's metrics stay O(1).

This module also owns the **one** report format every serving benchmark
emits: ``serve-bench`` (thread-pool :class:`~repro.serving.Server`) and
``shard-bench`` (multi-process :class:`repro.sharding.Router`) both
render :func:`latency_histogram` and serialize :func:`bench_report`
JSON, so the two deployments' reports are directly diffable.  The
``schema`` field is versioned — consumers (CI artifact tooling, trend
scripts) should check it before reading anything else.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Sequence

import numpy as np

from repro.obs import metrics as obs_metrics

__all__ = [
    "LatencyStats",
    "percentiles",
    "latency_histogram",
    "bench_report",
    "front_stats",
    "REPORT_SCHEMA",
]

#: Version tag of the serving benchmark report format.  Bump when a
#: field changes meaning; additions are backward compatible.
REPORT_SCHEMA = "repro-serving-report/1"


def latency_histogram(
    latencies_ms: Sequence[float] | np.ndarray,
    buckets: int = 10,
    width: int = 40,
) -> str:
    """An ASCII histogram of client-observed latencies, log-spaced —
    serving latency distributions are long-tailed, so linear buckets
    would pile everything into the first bar."""
    samples = np.asarray(latencies_ms, dtype=np.float64)
    if samples.size == 0:
        # Every request failed: still print the report (the error
        # counts below are exactly what the user needs to see).
        return "latency histogram (ms)\n  (no completed requests)"
    low = max(samples.min(), 1e-3)
    high = max(samples.max(), low * 1.001)
    edges = np.geomspace(low, high, buckets + 1)
    edges[0] = 0.0  # catch everything below the measured floor
    counts, _ = np.histogram(samples, bins=edges)
    peak = max(int(counts.max()), 1)
    lines = ["latency histogram (ms)"]
    for index, count in enumerate(counts.tolist()):
        bar = "#" * max(1 if count else 0, round(width * count / peak))
        lines.append(
            f"  {edges[index]:8.2f} - {edges[index + 1]:8.2f}  "
            f"{bar:<{width}} {count}"
        )
    return "\n".join(lines)


def bench_report(report, *, kind: str, config: dict) -> dict:
    """The canonical JSON document of one serving benchmark run.

    Parameters
    ----------
    report:
        A :class:`~repro.serving.loadgen.LoadReport`.
    kind:
        Which deployment produced it: ``"serve-bench"`` (threaded
        server) or ``"shard-bench"`` (sharded router).
    config:
        The benchmark's knob settings (workers/shards, batch limits,
        graph shape, ...), embedded verbatim under ``"config"``.

    Returns
    -------
    dict
        ``{"schema": REPORT_SCHEMA, "kind": ..., "config": {...},
        "machine": {...}, **report.to_dict()}`` — one flat, versioned
        document every CLI benchmark writes and CI uploads.  The
        ``"machine"`` fingerprint (:func:`repro.tune.machine_fingerprint`)
        makes throughput numbers comparable across hosts: two reports
        are only a perf regression signal when their fingerprints match.
    """
    from repro.tune import machine_fingerprint

    document = {"schema": REPORT_SCHEMA, "kind": str(kind),
                "config": dict(config),
                "machine": machine_fingerprint().to_dict()}
    document.update(report.to_dict())
    # Failure-path counters, lifted to the top level (additive to
    # schema /1): consumers checking resilience behaviour should not
    # have to know which nested stats blob carries them.
    stats = document.get("server_stats") or {}
    for key in LatencyStats.COUNTERS:
        document[f"{key}_total"] = int(stats.get(key, 0))
    # Shard lifetime counters get the same treatment: respawns and sweep
    # retries inside the worker pool should be as visible in a benchmark
    # artifact as the request-level failure counters above.
    shards = stats.get("shards") or {}
    if shards:
        document["shard_respawns_total"] = int(shards.get("respawns", 0))
        document["shard_sweep_retries_total"] = int(
            shards.get("sweep_retries", 0)
        )
        document["shard_republishes_total"] = int(
            shards.get("republishes", 0)
        )
        document["shard_generations"] = [
            int(generation) for generation in shards.get("generations", [])
        ]
    # The full registry snapshot rides along so the report carries every
    # family (cache hits, sweep timings, supervisor activity, ...) that
    # the flat fields above don't individually lift.
    document["metrics"] = obs_metrics.get_registry().snapshot()
    # When the run was profiled, the merged cross-process profile rides
    # along too ('repro obs profile report.json' reads it back out).
    from repro.obs import profile as obs_profile

    if obs_profile.profiling_enabled():
        document["profile"] = obs_profile.profile_snapshot()
    return document


def front_stats(
    snapshot: dict,
    *,
    workers: int,
    pending: int,
    max_batch: int,
    max_wait_ms: float,
    overloads: int,
    pinning,
    queries_served: int,
    online_seconds: float,
    cache_stats: dict | None,
    shard_stats: dict | None = None,
) -> dict:
    """One stats shape for both serving front ends.

    :meth:`Server.stats` and :meth:`Router.stats` feed their own inputs
    through this helper so the two deployments report identical keys —
    a threaded server answers with ``shards=None``, a sharded router
    with ``cache_stats`` of its shared cache (or ``None``) — and report
    consumers never branch on which front end produced the blob.
    """
    merged = dict(snapshot)
    merged["workers"] = int(workers)
    merged["pending"] = int(pending)
    merged["max_batch"] = int(max_batch)
    merged["max_wait_ms"] = float(max_wait_ms)
    merged["overloads"] = int(overloads)
    merged["pinning"] = pinning
    merged["queries_served"] = int(queries_served)
    merged["online_seconds"] = float(online_seconds)
    merged["cache"] = cache_stats
    merged["shards"] = shard_stats
    return merged

#: Default sample-window size: percentiles reflect the most recent
#: requests, and memory stays bounded on a long-lived server.
_DEFAULT_WINDOW = 65536


def percentiles(
    samples: Sequence[float], points: Sequence[float] = (50, 95, 99)
) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for ``samples`` (empty
    input yields ``0.0`` everywhere — a server that has answered nothing
    has no latency, not NaN)."""
    if not len(samples):
        return {f"p{point:g}": 0.0 for point in points}
    values = np.percentile(np.asarray(samples, dtype=np.float64), points)
    return {
        f"p{point:g}": float(value) for point, value in zip(points, values)
    }


class LatencyStats:
    """Thread-safe per-request latency recorder.

    Parameters
    ----------
    capacity:
        Size of the rolling sample window percentiles are computed over
        (counters are exact over the whole lifetime).
    """

    #: Failure-path counters every snapshot carries (zeros when nothing
    #: went wrong, so report consumers never need ``.get`` fallbacks):
    #: ``failures`` — requests whose dispatch finally failed; ``retries``
    #: — batch re-runs a retry policy absorbed; ``respawns`` — dead
    #: workers (threads or shard processes) replaced by supervision;
    #: ``deadlines_exceeded`` — requests failed fast at dispatch because
    #: their queue deadline passed.
    COUNTERS = ("failures", "retries", "respawns", "deadlines_exceeded")

    #: Registry family behind each counter (dual-write: the instance
    #: keeps exact lifetime counts for its own snapshot, the process
    #: registry aggregates across every recorder for ``expose()``).
    _COUNTER_HELP = {
        "failures": "Requests whose dispatch finally failed.",
        "retries": "Batch re-runs absorbed by a retry policy.",
        "respawns": "Dead workers (threads or processes) respawned.",
        "deadlines_exceeded": "Requests failed fast on an expired deadline.",
    }

    def __init__(self, capacity: int = _DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self._queue_seconds: deque[float] = deque(maxlen=capacity)
        self._compute_seconds: deque[float] = deque(maxlen=capacity)
        self._total_seconds: deque[float] = deque(maxlen=capacity)
        self._completed = 0
        self._first_record_at: float | None = None
        self._last_completion_at = 0.0
        self._counters = {name: 0 for name in self.COUNTERS}
        self._phase_seconds: dict[str, float] = {}
        self._phase_counts: dict[str, int] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Bump a failure-path counter (see :attr:`COUNTERS`; unknown
        names are admitted so callers can add experiment-local ones)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)
        help_text = self._COUNTER_HELP.get(name, "")
        obs_metrics.get_registry().counter(
            f"repro_{name}_total", help_text
        ).inc(n)

    def record(
        self,
        queue_seconds: float,
        compute_seconds: float,
        total_seconds: float,
    ) -> None:
        """Record one completed request's timing split."""
        now = time.perf_counter()
        with self._lock:
            self._queue_seconds.append(queue_seconds)
            self._compute_seconds.append(compute_seconds)
            self._total_seconds.append(total_seconds)
            self._completed += 1
            if self._first_record_at is None:
                # The span starts when its request did, not when the
                # recorder was built — idle time before the first
                # request must not deflate the rate.
                self._first_record_at = now - total_seconds
            self._last_completion_at = now
            self._phase_seconds["queue"] = (
                self._phase_seconds.get("queue", 0.0) + queue_seconds
            )
            self._phase_counts["queue"] = (
                self._phase_counts.get("queue", 0) + 1
            )
        registry = obs_metrics.get_registry()
        registry.counter(
            "repro_requests_total", "Requests completed successfully."
        ).inc()
        registry.histogram(
            "repro_request_seconds", "End-to-end request latency."
        ).observe(total_seconds)
        registry.histogram(
            "repro_phase_seconds",
            "Per-batch time credited to each request lifecycle phase.",
            labelnames=("phase",),
        ).labels(phase="queue").observe(queue_seconds)

    def record_phases(self, phases: dict[str, float]) -> None:
        """Fold one dispatched batch's phase breakdown into the stats.

        ``phases`` maps lifecycle phase names (``dispatch``/``sweep``/
        ``gather``/``select``) to seconds spent there for the batch; the
        queue phase is accounted per request by :meth:`record`.
        """
        if not phases:
            return
        with self._lock:
            for name, seconds in phases.items():
                self._phase_seconds[name] = (
                    self._phase_seconds.get(name, 0.0) + float(seconds)
                )
                self._phase_counts[name] = (
                    self._phase_counts.get(name, 0) + 1
                )
        family = obs_metrics.get_registry().histogram(
            "repro_phase_seconds",
            "Per-batch time credited to each request lifecycle phase.",
            labelnames=("phase",),
        )
        for name, seconds in phases.items():
            family.labels(phase=name).observe(float(seconds))

    def snapshot(self) -> dict[str, float]:
        """Counters plus latency percentiles, all in one consistent view.

        ``throughput_qps`` is completed requests over the span from the
        first recorded request's submission to the last completion —
        idle time before traffic starts or after it stops does not
        deflate the rate.
        """
        with self._lock:
            totals = list(self._total_seconds)
            queues = list(self._queue_seconds)
            computes = list(self._compute_seconds)
            completed = self._completed
            counters = dict(self._counters)
            phases = {
                name: {
                    "total_ms": self._phase_seconds[name] * 1e3,
                    "mean_ms": (
                        self._phase_seconds[name]
                        / max(self._phase_counts.get(name, 1), 1)
                    )
                    * 1e3,
                    "count": self._phase_counts.get(name, 0),
                }
                for name in sorted(self._phase_seconds)
            }
            span = (
                self._last_completion_at - self._first_record_at
                if self._first_record_at is not None
                else 0.0
            )
        latency_ms = {
            key: value * 1e3
            for key, value in percentiles(totals).items()
        }
        return {
            "completed": completed,
            "throughput_qps": completed / span if span > 0 else 0.0,
            "queue_mean_ms": float(np.mean(queues)) * 1e3 if queues else 0.0,
            "compute_mean_ms": (
                float(np.mean(computes)) * 1e3 if computes else 0.0
            ),
            "latency_p50_ms": latency_ms["p50"],
            "latency_p95_ms": latency_ms["p95"],
            "latency_p99_ms": latency_ms["p99"],
            "latency_max_ms": float(max(totals)) * 1e3 if totals else 0.0,
            "phases": phases,
            **counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.snapshot()
        return (
            f"LatencyStats(completed={snap['completed']}, "
            f"p99={snap['latency_p99_ms']:.2f}ms)"
        )
