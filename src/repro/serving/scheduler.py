"""Micro-batching request scheduler.

The paper's serving argument (and PR 1's measured ~4x) is that one
batched online pass beats per-seed queries — but live traffic arrives
one request at a time, from many client threads.  :class:`Scheduler`
closes that gap: clients :meth:`submit` single
:class:`~repro.engine.QueryRequest`\\ s and immediately get a
:class:`~concurrent.futures.Future`; workers call :meth:`next_batch`,
which blocks until a *micro-batch* is ready and hands the whole batch
over for one ``Engine.batch`` pass.

A batch is ready when either trigger fires:

* **size** — ``max_batch`` requests are pending (full batch, zero added
  latency), or
* **age** — the oldest pending request has waited ``max_wait_ms``
  (bounded latency under light traffic; ``0`` dispatches immediately).

Admission control is a hard bound: once ``max_pending`` requests are
queued, :meth:`submit` raises
:class:`~repro.exceptions.ServerOverloaded` instead of queueing more —
latency stays bounded and overload is visible to clients, not hidden in
an ever-deeper queue.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.engine import QueryRequest
from repro.exceptions import ParameterError, ServerOverloaded
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["Scheduler", "PendingRequest"]


@dataclass
class PendingRequest:
    """One queued request: the request itself, the future its client
    holds, and its arrival time (``perf_counter``) for queue-time
    metrics and the age trigger."""

    request: QueryRequest
    submitted_at: float
    future: "Future" = field(default_factory=Future)
    #: ``perf_counter`` instant after which the request must not be
    #: dispatched (``None`` = no deadline).  Derived from the request's
    #: ``deadline_ms`` at submission; checked at dispatch time by
    #: :func:`repro.serving.server.dispatch_batch`.
    deadline_at: float | None = None
    #: Trace identity minted at admission when tracing is enabled and
    #: the request is sampled; ``None`` rides for free otherwise.
    trace_id: str | None = None
    #: The request's root span, opened at admission and finished when
    #: its future resolves (outcome tagged ``ok``/``error``/
    #: ``deadline_exceeded``/``cancelled``).
    root_span: "obs_trace.Span | None" = None


class Scheduler:
    """Coalesce single-request submissions into dispatchable batches.

    Parameters
    ----------
    max_batch:
        Largest batch handed to one :meth:`next_batch` call.
    max_wait_ms:
        Longest a request may sit queued before a partial batch is
        dispatched anyway.  ``0`` means dispatch as soon as a worker is
        free (no artificial coalescing delay).
    max_pending:
        Admission bound: :meth:`submit` raises
        :class:`~repro.exceptions.ServerOverloaded` when this many
        requests are already queued.  ``0`` disables the bound.
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_pending: int = 1024,
    ):
        if max_batch < 1:
            raise ParameterError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ParameterError("max_wait_ms must be non-negative")
        if max_pending < 0:
            raise ParameterError("max_pending must be non-negative")
        self._max_batch = int(max_batch)
        self._max_wait_seconds = float(max_wait_ms) / 1e3
        self._max_pending = int(max_pending)
        self._queue: deque[PendingRequest] = deque()
        self._condition = threading.Condition()
        self._closed = False
        self._overloads = 0
        registry = obs_metrics.get_registry()
        self._depth_gauge = registry.gauge(
            "repro_scheduler_depth", "Requests currently queued."
        )
        self._overload_counter = registry.counter(
            "repro_scheduler_overloads_total",
            "Submissions rejected at the admission bound.",
        )

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def max_wait_ms(self) -> float:
        return self._max_wait_seconds * 1e3

    @property
    def max_pending(self) -> int:
        return self._max_pending

    @property
    def pending(self) -> int:
        """Requests currently queued (admission-control depth)."""
        with self._condition:
            return len(self._queue)

    @property
    def overloads(self) -> int:
        """Lifetime count of submissions rejected at the admission
        bound."""
        with self._condition:
            return self._overloads

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, request: QueryRequest) -> "Future":
        """Queue one request; returns the future its result lands on.

        Raises :class:`~repro.exceptions.ServerOverloaded` when the
        admission bound is hit and :class:`RuntimeError` after
        :meth:`close`.
        """
        pending = PendingRequest(request, time.perf_counter())
        deadline_ms = getattr(request, "deadline_ms", None)
        if deadline_ms is not None:
            pending.deadline_at = (
                pending.submitted_at + float(deadline_ms) / 1e3
            )
        trace_id = obs_trace.new_trace_id()
        if trace_id is not None:
            pending.trace_id = trace_id
            pending.root_span = obs_trace.start_span(
                "request",
                trace_id,
                begin=pending.submitted_at,
                seed=int(getattr(request, "seed", -1)),
            )
        with self._condition:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self._max_pending and len(self._queue) >= self._max_pending:
                self._overloads += 1
                self._overload_counter.inc()
                raise ServerOverloaded(len(self._queue), self._max_pending)
            self._queue.append(pending)
            self._depth_gauge.set(len(self._queue))
            self._condition.notify()
        return pending.future

    def next_batch(
        self, timeout: float | None = None
    ) -> list[PendingRequest] | None:
        """Block until a micro-batch is ready, then pop and return it.

        Returns up to ``max_batch`` requests once the size or age
        trigger fires.  A ``timeout`` expiry dispatches whatever partial
        batch is queued (the worker is idle anyway) or returns ``None``
        if the queue is empty; ``None`` is also the shutdown signal once
        the scheduler is closed and drained.
        """
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        with self._condition:
            while True:
                now = time.perf_counter()
                expired = deadline is not None and now >= deadline
                if self._queue:
                    oldest_age = now - self._queue[0].submitted_at
                    if (
                        len(self._queue) >= self._max_batch
                        or oldest_age >= self._max_wait_seconds
                        or self._closed
                        or expired
                    ):
                        batch = [
                            self._queue.popleft()
                            for _ in range(
                                min(len(self._queue), self._max_batch)
                            )
                        ]
                        self._depth_gauge.set(len(self._queue))
                        if self._queue:
                            # More than one batch is ready: wake another
                            # waiting worker for the remainder.
                            self._condition.notify()
                        return batch
                    # Partial batch: sleep until the age trigger would
                    # fire (a submit that fills the batch wakes us
                    # earlier).
                    wait = self._max_wait_seconds - oldest_age
                    if deadline is not None:
                        wait = min(wait, deadline - now)
                else:
                    if self._closed or expired:
                        return None
                    wait = None if deadline is None else deadline - now
                self._condition.wait(wait)

    def close(self) -> None:
        """Stop admitting requests and wake every blocked worker.

        Already-queued requests stay dispatchable — workers keep
        receiving batches until the queue drains, then get ``None``.
        """
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def cancel_pending(self) -> int:
        """Drop every queued request, cancelling its future; returns the
        number cancelled.  Used for non-draining shutdown."""
        with self._condition:
            dropped = list(self._queue)
            self._queue.clear()
            self._depth_gauge.set(0)
        for pending in dropped:
            pending.future.cancel()
            if pending.root_span is not None:
                pending.root_span.finish(outcome="cancelled")
        return len(dropped)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Scheduler(max_batch={self._max_batch}, "
            f"max_wait_ms={self.max_wait_ms:g}, pending={self.pending})"
        )
