"""Closed-loop load generator for the serving stack.

``repro serve-bench`` and the benchmark suite both need the same thing:
realistic concurrent traffic against a :class:`~repro.serving.Server`
with client-side latency accounting.  :func:`run_closed_loop` provides
it — ``clients`` threads each issue ``requests_per_client`` single-seed
requests back to back (closed loop: a client never has more than one
request in flight, so offered load self-regulates to the server's
capacity and the queue cannot run away).

Latencies are measured on the *client* side (submit → result), so they
include queueing, coalescing wait, and compute — what a caller of the
service would actually observe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.engine import QueryRequest
from repro.exceptions import (
    DeadlineExceeded,
    ParameterError,
    ServerOverloaded,
)
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.serving.metrics import percentiles

__all__ = ["LoadReport", "run_closed_loop"]


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop run.

    Latency fields are milliseconds, measured client side; ``errors``
    counts requests whose future raised (admission rejections land in
    ``rejected`` instead and are retried by the generator).
    """

    clients: int
    requests: int
    seconds: float
    queries_per_second: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    rejected: int
    errors: int
    server_stats: dict = field(default_factory=dict)
    latencies_ms: np.ndarray | None = None
    #: Mean server-side queue / compute share of the *same* requests the
    #: client latencies above cover, read from the per-request timing
    #: stamp ``dispatch_batch`` leaves on each future.  The client total
    #: equals queue + compute plus only future-wakeup overhead, so the
    #: two views finally agree request by request instead of comparing
    #: a client mean against an unrelated ``LatencyStats`` window.
    queue_mean_ms: float = 0.0
    compute_mean_ms: float = 0.0
    #: Per-request server-side splits (same order as ``latencies_ms``;
    #: ``NaN`` rows where no stamp arrived), kept only with
    #: ``keep_samples`` and summarized away by :meth:`to_dict`.
    queue_ms: np.ndarray | None = None
    compute_ms: np.ndarray | None = None
    #: Submissions re-attempted after backoff under a bounded
    #: :class:`~repro.resilience.RetryPolicy` (0 in legacy
    #: retry-forever mode, which counts only ``rejected``).
    retries: int = 0
    #: Requests that failed fast with
    #: :class:`~repro.exceptions.DeadlineExceeded` — tallied apart from
    #: ``errors`` because a deadline miss is a typed, expected outcome
    #: of running with ``deadline_ms`` under load.
    deadlines_exceeded: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable view (sample arrays summarized away)."""
        payload = {
            key: value
            for key, value in self.__dict__.items()
            if key not in ("latencies_ms", "queue_ms", "compute_ms")
        }
        payload["seconds"] = float(self.seconds)
        return payload


def run_closed_loop(
    server,
    seeds: Sequence[int] | np.ndarray,
    k: int | None = 10,
    clients: int = 4,
    requests_per_client: int = 100,
    exclude_seed: bool = True,
    keep_samples: bool = True,
    deadline_ms: float | None = None,
    retry: RetryPolicy | None = None,
) -> LoadReport:
    """Drive ``server`` with ``clients`` closed-loop threads.

    ``server`` is any front end exposing the scheduler surface —
    ``submit(QueryRequest) -> Future`` raising
    :class:`~repro.exceptions.ServerOverloaded` under backpressure, plus
    ``stats()``: a :class:`~repro.serving.Server` or a
    :class:`repro.sharding.Router`.

    Client ``c`` issues request ``i`` for seed ``seeds[(c * stride + i)
    % len(seeds)]`` — deterministic, evenly spread over the seed set so
    repeated runs are comparable.  An admission rejection
    (:class:`~repro.exceptions.ServerOverloaded`) is counted and the
    request retried after a short backoff, keeping the closed loop
    closed; any other failure counts as an error and the client moves
    on.

    ``retry`` switches rejection handling from that legacy
    retry-forever loop to a *bounded* jittered backoff: each rejection
    backs off per the :class:`~repro.resilience.RetryPolicy` (seeded
    per client, so runs stay deterministic) and a request still
    rejected after ``max_attempts`` is abandoned — tallied in
    ``rejected``, with every absorbed backoff in ``retries``.

    ``deadline_ms`` stamps every request with a queue deadline;
    requests the server fails fast with
    :class:`~repro.exceptions.DeadlineExceeded` are tallied in
    ``deadlines_exceeded`` rather than ``errors``.
    """
    if clients < 1:
        raise ParameterError("clients must be at least 1")
    if requests_per_client < 1:
        raise ParameterError("requests_per_client must be at least 1")
    seed_pool = np.asarray(seeds, dtype=np.int64)
    if seed_pool.size == 0:
        raise ParameterError("seed pool must not be empty")

    per_client_latencies: list[list[float]] = [[] for _ in range(clients)]
    per_client_splits: list[list[tuple[float, float]]] = [
        [] for _ in range(clients)
    ]
    rejected = [0] * clients
    errors = [0] * clients
    retried = [0] * clients
    deadline_misses = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def client_loop(client: int) -> None:
        stride = max(1, seed_pool.size // clients)
        latencies = per_client_latencies[client]
        splits = per_client_splits[client]
        # Per-client policy seed: clients back off on their own jitter
        # streams (no thundering herd) while the run as a whole stays
        # deterministic.
        policy = (
            replace(retry, seed=retry.seed + client)
            if retry is not None
            else None
        )

        def submit_bounded(request: QueryRequest):
            def on_retry(error, delay_ms):
                rejected[client] += 1
                retried[client] += 1

            try:
                return call_with_retry(
                    lambda: server.submit(request), policy,
                    on_retry=on_retry,
                )
            except ServerOverloaded:
                rejected[client] += 1
                return None  # abandoned after max_attempts

        barrier.wait()
        for index in range(requests_per_client):
            seed = int(seed_pool[(client * stride + index) % seed_pool.size])
            request = QueryRequest(
                seed=seed, k=k, exclude_seed=exclude_seed,
                deadline_ms=deadline_ms,
            )
            begin = time.perf_counter()
            if policy is None:
                while True:
                    try:
                        future = server.submit(request)
                        break
                    except ServerOverloaded:
                        rejected[client] += 1
                        time.sleep(0.001)
            else:
                future = submit_bounded(request)
                if future is None:
                    continue
            try:
                future.result()
            except DeadlineExceeded:
                deadline_misses[client] += 1
                continue
            except Exception:  # noqa: BLE001 - client-side error tally
                errors[client] += 1
                continue
            latencies.append(time.perf_counter() - begin)
            # The server stamps its queue/compute split on the future
            # before resolving it, so the stamp is always visible here;
            # NaN keeps the split arrays aligned with the latency
            # samples if a front end without the stamp is driven.
            timing = getattr(future, "repro_timing", None)
            if timing is not None:
                splits.append(
                    (timing["queue_ms"], timing["compute_ms"])
                )
            else:
                splits.append((float("nan"), float("nan")))

    threads = [
        threading.Thread(
            target=client_loop, args=(client,),
            name=f"repro-loadgen-{client}", daemon=True,
        )
        for client in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()  # clients start issuing together; wall clock from here
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin

    samples = np.asarray(
        [value for bucket in per_client_latencies for value in bucket],
        dtype=np.float64,
    )
    split_rows = np.asarray(
        [pair for bucket in per_client_splits for pair in bucket],
        dtype=np.float64,
    ).reshape(-1, 2)
    queue_ms = split_rows[:, 0]
    compute_ms = split_rows[:, 1]
    stamped = ~np.isnan(queue_ms)
    completed = int(samples.size)
    quantiles = percentiles(samples * 1e3)
    return LoadReport(
        clients=clients,
        requests=completed,
        seconds=elapsed,
        queries_per_second=completed / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=quantiles["p50"],
        latency_p95_ms=quantiles["p95"],
        latency_p99_ms=quantiles["p99"],
        latency_mean_ms=float(samples.mean() * 1e3) if completed else 0.0,
        latency_max_ms=float(samples.max() * 1e3) if completed else 0.0,
        rejected=sum(rejected),
        errors=sum(errors),
        server_stats=server.stats(),
        latencies_ms=samples * 1e3 if keep_samples else None,
        retries=sum(retried),
        deadlines_exceeded=sum(deadline_misses),
        queue_mean_ms=(
            float(queue_ms[stamped].mean()) if stamped.any() else 0.0
        ),
        compute_mean_ms=(
            float(compute_ms[stamped].mean()) if stamped.any() else 0.0
        ),
        queue_ms=queue_ms if keep_samples else None,
        compute_ms=compute_ms if keep_samples else None,
    )
