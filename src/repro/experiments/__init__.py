"""Experiment drivers — one per table and figure of the paper's evaluation.

Every driver takes an :class:`~repro.experiments.config.ExperimentConfig`
and returns a list of :class:`~repro.experiments.reporting.ExperimentResult`
tables.  Run them from the command line::

    python -m repro.experiments --list
    python -m repro.experiments fig1 fig7 --seeds 5
    python -m repro.experiments all --markdown results.md

The mapping from experiment id to paper artifact lives in DESIGN.md §3.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["ExperimentConfig", "ExperimentResult", "EXPERIMENTS", "run_experiment"]
