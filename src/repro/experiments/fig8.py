"""Figure 8 — effect of ``S`` on TPA's online time and L1 error.

Expected shape (paper): as ``S`` grows, online time increases sharply while
L1 error decreases (more of the series is computed exactly).  ``T`` is
fixed to 10, datasets are the LiveJournal and Pokec analogs.
"""

from __future__ import annotations

from repro.core.parameters import sweep_s
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import load_dataset

__all__ = ["run"]

_DATASETS = ("livejournal", "pokec")
_S_VALUES = (2, 3, 4, 5, 6)
_T = 10


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    results = []
    for dataset in _DATASETS:
        graph = load_dataset(dataset, scale=config.scale)
        points = sweep_s(
            graph,
            list(_S_VALUES),
            t_iteration=_T,
            num_seeds=config.num_seeds,
            rng_seed=config.rng_seed,
        )
        table = ExperimentResult(
            f"fig8.{dataset}",
            f"Effect of S on online time and L1 error, {dataset} (Figure 8)",
            ["S", "online seconds", "L1 error"],
        )
        for point in points:
            table.add_row(point.value, point.online_seconds, point.l1_error)
        table.add_note(f"T fixed to {_T}; {config.num_seeds} seeds per point.")
        results.append(table)
    return results
