"""Figure 9 — effect of ``T`` on the errors of the two approximations.

Expected shape (paper): as ``T`` grows, the neighbor-approximation (NA)
error increases, the stranger-approximation (SA) error decreases, and the
total TPA error is U-shaped (decreases, then rebounds around T ≈ 10).
``S`` is fixed to 5.
"""

from __future__ import annotations

from repro.core.parameters import sweep_t
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import load_dataset

__all__ = ["run"]

_DATASETS = ("livejournal", "pokec")
_T_VALUES = (5, 6, 8, 10, 15, 20, 25)
_S = 5


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    results = []
    for dataset in _DATASETS:
        graph = load_dataset(dataset, scale=config.scale)
        points = sweep_t(
            graph,
            list(_T_VALUES),
            s_iteration=_S,
            num_seeds=config.num_seeds,
            rng_seed=config.rng_seed,
        )
        table = ExperimentResult(
            f"fig9.{dataset}",
            f"Effect of T on NA / SA / TPA L1 errors, {dataset} (Figure 9)",
            ["T", "TPA error", "NA error", "SA error"],
        )
        for point in points:
            table.add_row(
                point.value, point.l1_error, point.neighbor_error,
                point.stranger_error,
            )
        table.add_note(
            f"S fixed to {_S}; {config.num_seeds} seeds per point. The "
            "implementation requires T >= S (T = S disables the neighbor "
            "part), so the sweep starts at T = 5; the paper plots from T = 0."
        )
        results.append(table)
    return results
