"""Configuration shared by all experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ParameterError
from repro.graph.datasets import dataset_names
from repro.metrics.memory import DEFAULT_BUDGET_BYTES

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for the experiment drivers.

    Attributes
    ----------
    scale:
        Linear scale multiplier for the analog datasets (see
        :func:`repro.graph.datasets.load_dataset`).
    num_seeds:
        Random query seeds per dataset.  The paper uses 30; the default
        here is 10 to keep a full run in minutes.  Use :meth:`full` for
        the paper's setting.
    hubppr_seeds:
        Seeds used for HubPPR online timing/accuracy.  HubPPR's whole-
        vector queries are orders of magnitude slower than everyone
        else's (that is the paper's finding), so fewer samples keep the
        harness tractable; results are still per-seed medians.
    memory_budget_bytes:
        Scaled stand-in for the paper's 200 GB cap; methods exceeding it
        report ``OOM`` exactly like the omitted bars in Figure 1.
    datasets:
        Dataset keys to run on (defaults to all seven, smallest first).
    top_k_values:
        The ``k`` values of the Figure 7 recall curves.
    rng_seed:
        Base RNG seed for seed-node sampling.
    """

    scale: float = 1.0
    num_seeds: int = 10
    hubppr_seeds: int = 2
    memory_budget_bytes: int = DEFAULT_BUDGET_BYTES
    datasets: tuple[str, ...] = field(default_factory=lambda: tuple(dataset_names()))
    top_k_values: tuple[int, ...] = (100, 200, 300, 400, 500)
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ParameterError("scale must be positive")
        if self.num_seeds < 1:
            raise ParameterError("num_seeds must be at least 1")
        if self.hubppr_seeds < 1:
            raise ParameterError("hubppr_seeds must be at least 1")
        unknown = set(self.datasets) - set(dataset_names())
        if unknown:
            raise ParameterError(f"unknown datasets: {sorted(unknown)}")

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Small, CI-friendly setting: tiny graphs, few seeds."""
        return cls(scale=0.25, num_seeds=3, hubppr_seeds=1)

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The paper's setting: 30 random seeds per dataset."""
        return cls(num_seeds=30, hubppr_seeds=3)

    def with_datasets(self, *names: str) -> "ExperimentConfig":
        """Copy restricted to the given datasets."""
        return replace(self, datasets=tuple(names))
