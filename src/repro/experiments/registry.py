"""Registry mapping experiment ids to driver functions."""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ParameterError
from repro.experiments import ablation, fig1, fig3, fig4, fig6, fig7, fig8, fig9, fig10
from repro.experiments import scaling, table2, table3
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment"]

Driver = Callable[[ExperimentConfig], list[ExperimentResult]]

EXPERIMENTS: dict[str, Driver] = {
    "table2": table2.run,
    "fig1": fig1.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table3": table3.run,
    "fig10": fig10.run,
    "ablation": ablation.run,
    "scaling": scaling.run,
}


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> list[ExperimentResult]:
    """Run one experiment by registry id."""
    if experiment_id not in EXPERIMENTS:
        raise ParameterError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[experiment_id](config or ExperimentConfig())
