"""Result tables and their text / markdown / CSV rendering."""

from __future__ import annotations

import io
from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_cell"]


def format_cell(value: object) -> str:
    """Render one table cell.

    Floats get four significant digits; ``None`` renders as ``-`` (the
    paper's omitted bars) and the string ``"OOM"`` passes through (its
    out-of-memory marker).
    """
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentResult:
    """One rendered table of an experiment.

    Attributes
    ----------
    experiment_id:
        Registry key, e.g. ``"fig1a"``.
    title:
        Human-readable caption, referencing the paper artifact.
    headers:
        Column names.
    rows:
        Table body; cells may be strings, numbers, or ``None``.
    notes:
        Free-form footnotes (substitutions, omissions, parameters).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # -- rendering -------------------------------------------------------------

    def _formatted(self) -> tuple[list[str], list[list[str]]]:
        headers = [str(h) for h in self.headers]
        rows = [[format_cell(cell) for cell in row] for row in self.rows]
        return headers, rows

    def to_text(self) -> str:
        """Fixed-width table for terminal output."""
        headers, rows = self._formatted()
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        out = io.StringIO()
        out.write(f"== {self.experiment_id}: {self.title} ==\n")
        out.write(line(headers) + "\n")
        out.write(line(["-" * w for w in widths]) + "\n")
        for row in rows:
            out.write(line(row) + "\n")
        for note in self.notes:
            out.write(f"  note: {note}\n")
        return out.getvalue()

    def to_markdown(self) -> str:
        """GitHub-flavored markdown table."""
        headers, rows = self._formatted()
        out = io.StringIO()
        out.write(f"### `{self.experiment_id}` — {self.title}\n\n")
        out.write("| " + " | ".join(headers) + " |\n")
        out.write("|" + "|".join("---" for _ in headers) + "|\n")
        for row in rows:
            out.write("| " + " | ".join(row) + " |\n")
        if self.notes:
            out.write("\n")
            for note in self.notes:
                out.write(f"> {note}\n")
        out.write("\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Comma-separated rendering (quotes cells containing commas)."""
        headers, rows = self._formatted()

        def escape(cell: str) -> str:
            if "," in cell or '"' in cell:
                return '"' + cell.replace('"', '""') + '"'
            return cell

        lines = [",".join(escape(h) for h in headers)]
        lines.extend(",".join(escape(c) for c in row) for row in rows)
        return "\n".join(lines) + "\n"
