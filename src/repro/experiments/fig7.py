"""Figure 7 — recall of the top-k RWR vertices against exact ground truth.

Expected shape (paper): every method except NB-LIN reaches high recall
(≈0.99) across Slashdot, Pokec, WikiLink and Twitter; NB-LIN's low-rank
truncation costs it accuracy.  Methods that exceed the memory budget are
reported ``OOM`` (the paper omits their lines).
"""

from __future__ import annotations

import numpy as np

from repro.engine import Engine, QueryRequest
from repro.exceptions import MemoryBudgetExceeded
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import METHOD_ORDER, build_suite
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset
from repro.baselines.bepi import BePI
from repro.metrics.accuracy import recall_at_k

__all__ = ["run"]

#: The paper shows these four; "results on other graphs are similar".
_DATASETS = ("slashdot", "pokec", "wikilink", "twitter")


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    results = []
    rng = np.random.default_rng(config.rng_seed)
    datasets = [d for d in config.datasets if d in _DATASETS] or list(_DATASETS)

    for dataset in datasets:
        spec = DATASETS[dataset]
        graph = load_dataset(dataset, scale=config.scale)
        seeds = rng.choice(graph.num_nodes, size=config.num_seeds, replace=False)

        # One vectorized pass computes every exact ground-truth vector.
        ground_truth = BePI()
        ground_truth.preprocess(graph)
        exact_matrix = ground_truth.query_many(seeds.astype(np.int64))
        exact_by_seed = {
            int(s): exact_matrix[i] for i, s in enumerate(seeds)
        }

        table = ExperimentResult(
            f"fig7.{dataset}",
            f"Recall of top-k RWR vertices on {dataset} (Figure 7)",
            ["method"] + [f"k={k}" for k in config.top_k_values],
        )
        suite = build_suite(spec, config)
        for name in METHOD_ORDER:
            method = suite[name]
            try:
                engine = Engine(method, graph)
            except MemoryBudgetExceeded:
                table.add_row(name, *["OOM"] * len(config.top_k_values))
                continue

            query_seeds = seeds
            if name == "HubPPR":
                query_seeds = seeds[: config.hubppr_seeds]
            batch_results = engine.batch(
                [QueryRequest(seed=int(seed)) for seed in query_seeds]
            )
            recalls = {k: [] for k in config.top_k_values}
            for seed, result in zip(query_seeds, batch_results):
                exact = exact_by_seed[int(seed)]
                for k in config.top_k_values:
                    recalls[k].append(recall_at_k(exact, result.scores, k))
            table.add_row(
                name, *[float(np.mean(recalls[k])) for k in config.top_k_values]
            )

        table.add_note(
            f"Ground truth: BePI (exact); {config.num_seeds} seeds "
            f"({config.hubppr_seeds} for HubPPR)."
        )
        results.append(table)
    return results
