"""Figure 1 — headline comparison: preprocessed-data size (a),
preprocessing time (b), and online time (c) for all methods × datasets.

Expected shape (paper): TPA stores the least preprocessed data and has the
fastest preprocessing and online phases; BEAR-APPROX and NB-LIN exhaust the
memory budget on the larger datasets (rendered ``OOM``); FORA preprocesses
fast but stores a large walk index; HubPPR's whole-vector online phase is
the slowest.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MemoryBudgetExceeded
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import METHOD_ORDER, PREPROCESSING_METHODS, build_suite
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset
from repro.metrics.memory import format_bytes
from repro.metrics.timing import Timer

__all__ = ["run"]


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    """Run the Figure 1 comparison; returns tables for (a), (b) and (c)."""
    size_table = ExperimentResult(
        "fig1a",
        "Size of preprocessed data (Figure 1(a))",
        ["dataset"] + PREPROCESSING_METHODS,
    )
    prep_table = ExperimentResult(
        "fig1b",
        "Preprocessing time, seconds (Figure 1(b))",
        ["dataset"] + PREPROCESSING_METHODS,
    )
    online_table = ExperimentResult(
        "fig1c",
        "Online time per query, median seconds (Figure 1(c))",
        ["dataset"] + METHOD_ORDER,
    )

    rng = np.random.default_rng(config.rng_seed)
    for dataset in config.datasets:
        spec = DATASETS[dataset]
        graph = load_dataset(dataset, scale=config.scale)
        seeds = rng.choice(graph.num_nodes, size=config.num_seeds, replace=False)
        suite = build_suite(spec, config)

        size_row: list[object] = [dataset]
        prep_row: list[object] = [dataset]
        online_row: list[object] = [dataset]
        for name in METHOD_ORDER:
            method = suite[name]
            try:
                with Timer() as prep_timer:
                    method.preprocess(graph)
            except MemoryBudgetExceeded:
                if name in PREPROCESSING_METHODS:
                    size_row.append("OOM")
                    prep_row.append("OOM")
                online_row.append("OOM")
                continue

            if name in PREPROCESSING_METHODS:
                size_row.append(format_bytes(method.preprocessed_bytes()))
                prep_row.append(prep_timer.seconds)

            query_seeds = seeds
            if name == "HubPPR":
                query_seeds = seeds[: config.hubppr_seeds]
            samples = []
            for seed in query_seeds:
                with Timer() as query_timer:
                    method.query(int(seed))
                samples.append(query_timer.seconds)
            online_row.append(float(np.median(samples)))

        size_table.rows.append(size_row)
        prep_table.rows.append(prep_row)
        online_table.rows.append(online_row)

    budget = format_bytes(config.memory_budget_bytes)
    for table in (size_table, prep_table, online_table):
        table.add_note(
            f"OOM = preprocessed data exceeded the scaled memory budget "
            f"({budget}); mirrors the paper's omitted bars under its 200 GB cap."
        )
    online_table.add_note(
        f"HubPPR timed over {config.hubppr_seeds} seed(s), other methods over "
        f"{config.num_seeds}; medians reported."
    )
    online_table.add_note("BRPPR has no preprocessing phase (online-only).")
    return [size_table, prep_table, online_table]
