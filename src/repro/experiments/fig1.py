"""Figure 1 — headline comparison: preprocessed-data size (a),
preprocessing time (b), and online time (c) for all methods × datasets.

Expected shape (paper): TPA stores the least preprocessed data and has the
fastest preprocessing and online phases; BEAR-APPROX and NB-LIN exhaust the
memory budget on the larger datasets (rendered ``OOM``); FORA preprocesses
fast but stores a large walk index; HubPPR's whole-vector online phase is
the slowest.
"""

from __future__ import annotations

import numpy as np

from repro.engine import Engine, QueryRequest
from repro.exceptions import MemoryBudgetExceeded
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import METHOD_ORDER, PREPROCESSING_METHODS, build_suite
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset
from repro.metrics.memory import format_bytes

__all__ = ["run"]


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    """Run the Figure 1 comparison; returns tables for (a), (b) and (c)."""
    size_table = ExperimentResult(
        "fig1a",
        "Size of preprocessed data (Figure 1(a))",
        ["dataset"] + PREPROCESSING_METHODS,
    )
    prep_table = ExperimentResult(
        "fig1b",
        "Preprocessing time, seconds (Figure 1(b))",
        ["dataset"] + PREPROCESSING_METHODS,
    )
    online_table = ExperimentResult(
        "fig1c",
        "Online time per query, median seconds (Figure 1(c))",
        ["dataset"] + METHOD_ORDER,
    )

    rng = np.random.default_rng(config.rng_seed)
    for dataset in config.datasets:
        spec = DATASETS[dataset]
        graph = load_dataset(dataset, scale=config.scale)
        seeds = rng.choice(graph.num_nodes, size=config.num_seeds, replace=False)
        suite = build_suite(spec, config)

        size_row: list[object] = [dataset]
        prep_row: list[object] = [dataset]
        online_row: list[object] = [dataset]
        for name in METHOD_ORDER:
            method = suite[name]
            try:
                engine = Engine(method, graph)
            except MemoryBudgetExceeded:
                if name in PREPROCESSING_METHODS:
                    size_row.append("OOM")
                    prep_row.append("OOM")
                online_row.append("OOM")
                continue

            if name in PREPROCESSING_METHODS:
                size_row.append(format_bytes(method.preprocessed_bytes()))
                prep_row.append(engine.preprocess_seconds)

            query_seeds = seeds
            if name == "HubPPR":
                query_seeds = seeds[: config.hubppr_seeds]
            results = engine.batch(
                [QueryRequest(seed=int(seed)) for seed in query_seeds]
            )
            online_row.append(float(np.median([r.seconds for r in results])))

        size_table.rows.append(size_row)
        prep_table.rows.append(prep_row)
        online_table.rows.append(online_row)

    budget = format_bytes(config.memory_budget_bytes)
    for table in (size_table, prep_table, online_table):
        table.add_note(
            f"OOM = preprocessed data exceeded the scaled memory budget "
            f"({budget}); mirrors the paper's omitted bars under its 200 GB cap."
        )
    online_table.add_note(
        f"HubPPR timed over {config.hubppr_seeds} seed(s), other methods over "
        f"{config.num_seeds}; medians reported."
    )
    online_table.add_note("BRPPR has no preprocessing phase (online-only).")
    online_table.add_note(
        "Seeds run as one Engine batch per method; per-query time is the "
        "batch wall-time split evenly (throughput view)."
    )
    return [size_table, prep_table, online_table]
