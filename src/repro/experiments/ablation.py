"""Ablation study — what each of TPA's two approximations contributes.

Not a paper figure, but the paper's Section IV-C claims the two
approximations *compensate* each other ("TPA compensates the weak points
of each approximation successfully").  This experiment makes that claim
falsifiable by comparing, per dataset:

* **TPA** — family + scaled-family neighbor + PageRank-tail stranger;
* **no-NA** — the neighbor approximation removed: the PageRank tail is
  started at ``S`` and covers iterations ``S..∞`` (equivalent to TPA with
  ``T = S``);
* **no-SA** — the stranger approximation removed: the family part is
  rescaled to carry the *entire* tail mass ``(1-c)^S`` (pure family
  extrapolation, no PageRank).

Expected shape: full TPA has lower L1 error than both ablations on
community-structured graphs *when T is tuned*.  On these scaled-down
analogs random walks mix much faster than on the paper's billion-edge
graphs, so the useful neighbor window is narrow — the driver therefore
reports TPA both at the Table II ``T`` and at the locally tuned
``T = S + 1``, and the assertion targets the tuned setting (see the
Figure 9 discussion in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import family_norm, stranger_norm
from repro.core.cpi import cpi
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset

__all__ = ["run", "ablation_errors"]

_C = 0.15
_TOL = 1e-9


def ablation_errors(
    graph, s_iteration: int, t_iteration: int, seeds: np.ndarray
) -> tuple[float, float, float]:
    """Mean L1 errors of (TPA, no-NA, no-SA) over ``seeds``."""
    tail_from_t = cpi(graph, None, c=_C, tol=_TOL, start_iteration=t_iteration).scores
    tail_from_s = cpi(graph, None, c=_C, tol=_TOL, start_iteration=s_iteration).scores

    neighbor_scale_value = (
        (1 - _C) ** s_iteration - (1 - _C) ** t_iteration
    ) / family_norm(_C, s_iteration)
    # no-SA: the family part carries all tail mass (1-c)^S.
    full_tail_scale = stranger_norm(_C, s_iteration) / family_norm(_C, s_iteration)

    tpa_errors, no_na_errors, no_sa_errors = [], [], []
    for seed in seeds:
        exact = cpi(graph, int(seed), c=_C, tol=1e-12).scores
        family = cpi(
            graph, int(seed), c=_C, terminal_iteration=s_iteration - 1
        ).scores

        tpa = family + neighbor_scale_value * family + tail_from_t
        no_na = family + tail_from_s
        no_sa = family + full_tail_scale * family

        tpa_errors.append(float(np.abs(exact - tpa).sum()))
        no_na_errors.append(float(np.abs(exact - no_na).sum()))
        no_sa_errors.append(float(np.abs(exact - no_sa).sum()))
    return (
        float(np.mean(tpa_errors)),
        float(np.mean(no_na_errors)),
        float(np.mean(no_sa_errors)),
    )


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    table = ExperimentResult(
        "ablation",
        "Ablation: L1 error of TPA vs single-approximation variants",
        [
            "dataset",
            "TPA (Table II T)",
            "TPA (tuned T=S+1)",
            "no neighbor approx",
            "no stranger approx",
        ],
    )
    rng = np.random.default_rng(config.rng_seed)
    for dataset in config.datasets:
        spec = DATASETS[dataset]
        graph = load_dataset(dataset, scale=config.scale)
        seeds = rng.choice(graph.num_nodes, size=config.num_seeds, replace=False)
        tpa_paper_t, no_na, no_sa = ablation_errors(
            graph, spec.s_iteration, spec.t_iteration, seeds
        )
        tpa_tuned, _, _ = ablation_errors(
            graph, spec.s_iteration, spec.s_iteration + 1, seeds
        )
        table.add_row(dataset, tpa_paper_t, tpa_tuned, no_na, no_sa)
    table.add_note(
        "no-NA = PageRank tail from S (T = S); no-SA = family extrapolated "
        f"over the whole tail. {config.num_seeds} seeds, c = {_C}. On these "
        "fast-mixing analogs the tuned T sits near S (Figure 9's minimum "
        "shifts left at reduced scale)."
    )
    return [table]
