"""Figure 10 (Appendix A) — TPA vs BePI, the exact state of the art.

Expected shape (paper): similar preprocessing times; TPA's preprocessed
data is one-to-two orders of magnitude smaller (up to 168×); TPA's online
phase is much faster (up to 96×) — the price being that TPA is approximate
while BePI is exact.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bepi import BePI
from repro.core.tpa import TPA
from repro.engine import Engine, QueryRequest
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset
from repro.metrics.memory import format_bytes

__all__ = ["run"]


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    size_table = ExperimentResult(
        "fig10a",
        "Preprocessed data, TPA vs BePI (Figure 10(a))",
        ["dataset", "TPA", "BePI", "ratio"],
    )
    prep_table = ExperimentResult(
        "fig10b",
        "Preprocessing time in seconds, TPA vs BePI (Figure 10(b))",
        ["dataset", "TPA", "BePI"],
    )
    online_table = ExperimentResult(
        "fig10c",
        "Online time per query in seconds, TPA vs BePI (Figure 10(c))",
        ["dataset", "TPA", "BePI", "speedup"],
    )

    rng = np.random.default_rng(config.rng_seed)
    for dataset in config.datasets:
        spec = DATASETS[dataset]
        graph = load_dataset(dataset, scale=config.scale)
        seeds = rng.choice(graph.num_nodes, size=config.num_seeds, replace=False)

        tpa = TPA(s_iteration=spec.s_iteration, t_iteration=spec.t_iteration)
        bepi = BePI()

        tpa_engine = Engine(tpa, graph)
        bepi_engine = Engine(bepi, graph)
        # Figure 10(a) reports the preprocessed *index*; measure before the
        # online phase retains its iterate buffers.
        tpa_bytes = tpa.preprocessed_bytes()
        bepi_bytes = bepi.preprocessed_bytes()

        def median_online(engine: Engine) -> float:
            results = engine.batch(
                [QueryRequest(seed=int(seed)) for seed in seeds]
            )
            return float(np.median([result.seconds for result in results]))

        tpa_online = median_online(tpa_engine)
        bepi_online = median_online(bepi_engine)
        size_table.add_row(
            dataset,
            format_bytes(tpa_bytes),
            format_bytes(bepi_bytes),
            f"{bepi_bytes / max(tpa_bytes, 1):.0f}x",
        )
        prep_table.add_row(
            dataset, tpa_engine.preprocess_seconds,
            bepi_engine.preprocess_seconds,
        )
        online_table.add_row(
            dataset,
            tpa_online,
            bepi_online,
            f"{bepi_online / max(tpa_online, 1e-12):.0f}x",
        )

    online_table.add_note(
        "TPA returns approximate scores; BePI is exact (paper Appendix A)."
    )
    online_table.add_note(
        "Seeds run as one Engine batch per method; per-query time is the "
        "batch wall-time split evenly (throughput view)."
    )
    return [size_table, prep_table, online_table]
