"""Command-line entry point for the experiment harness.

Examples
--------
::

    python -m repro.experiments --list
    python -m repro.experiments table2 fig6
    python -m repro.experiments all --seeds 30 --markdown results.md
    python -m repro.experiments fig1 --datasets slashdot google --scale 0.5
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (or 'all'); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (default 1.0)")
    parser.add_argument("--seeds", type=int, default=10,
                        help="random query seeds per dataset (paper: 30)")
    parser.add_argument("--hubppr-seeds", type=int, default=2,
                        help="seeds for HubPPR online measurements")
    parser.add_argument("--datasets", nargs="+", default=None,
                        help="restrict to these datasets")
    parser.add_argument("--markdown", metavar="PATH", default=None,
                        help="append markdown tables to this file")
    parser.add_argument("--rng-seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if not args.experiments:
        print("no experiments given; try --list", file=sys.stderr)
        return 2

    ids = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    config = ExperimentConfig(
        scale=args.scale,
        num_seeds=args.seeds,
        hubppr_seeds=args.hubppr_seeds,
        rng_seed=args.rng_seed,
        **({"datasets": tuple(args.datasets)} if args.datasets else {}),
    )

    markdown_chunks: list[str] = []
    for experiment_id in ids:
        begin = time.perf_counter()
        results = run_experiment(experiment_id, config)
        elapsed = time.perf_counter() - begin
        for result in results:
            print(result.to_text())
            markdown_chunks.append(result.to_markdown())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")

    if args.markdown:
        with open(args.markdown, "a", encoding="utf-8") as handle:
            handle.write("".join(markdown_chunks))
        print(f"markdown appended to {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
