"""Table III — actual per-part errors against the theoretical bounds.

For every dataset this measures, averaged over random seeds,

* the neighbor-approximation error ``‖r_neighbor − r̃_neighbor‖₁`` against
  its Lemma 3 bound ``2(1−c)^S − 2(1−c)^T``,
* the stranger-approximation error ``‖r_stranger − r̃_stranger‖₁`` against
  its Lemma 1 bound ``2(1−c)^T``, and
* the total TPA error ``‖r_CPI − r_TPA‖₁`` against the Theorem 2 bound
  ``2(1−c)^S``.

Expected shape (paper): both part errors sit well below their bounds, and
the total error is *much* smaller than the sum of part errors because the
two approximations compensate each other.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import (
    neighbor_bound,
    neighbor_scale,
    stranger_bound,
    total_bound,
)
from repro.core.cpi import cpi, cpi_parts
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset

__all__ = ["run", "measure_errors"]

_C = 0.15
_TOL = 1e-9


def measure_errors(
    graph, s_iteration: int, t_iteration: int, seeds: np.ndarray
) -> tuple[float, float, float]:
    """Mean (neighbor, stranger, total) L1 errors over ``seeds``."""
    stranger_estimate = cpi(
        graph, None, c=_C, tol=_TOL, start_iteration=t_iteration
    ).scores
    scale = neighbor_scale(_C, s_iteration, t_iteration)

    neighbor_errors = []
    stranger_errors = []
    total_errors = []
    for seed in seeds:
        family, neighbor, stranger = cpi_parts(
            graph, int(seed), s_iteration, t_iteration, c=_C, tol=_TOL
        )
        neighbor_estimate = scale * family
        exact = family + neighbor + stranger
        approx = family + neighbor_estimate + stranger_estimate
        neighbor_errors.append(float(np.abs(neighbor - neighbor_estimate).sum()))
        stranger_errors.append(float(np.abs(stranger - stranger_estimate).sum()))
        total_errors.append(float(np.abs(exact - approx).sum()))
    return (
        float(np.mean(neighbor_errors)),
        float(np.mean(stranger_errors)),
        float(np.mean(total_errors)),
    )


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    table = ExperimentResult(
        "table3",
        "Error statistics vs theoretical bounds (Table III)",
        [
            "dataset",
            "NA bound",
            "NA error",
            "NA %",
            "SA bound",
            "SA error",
            "SA %",
            "TPA bound",
            "TPA error",
            "TPA %",
        ],
    )
    rng = np.random.default_rng(config.rng_seed)
    for dataset in config.datasets:
        spec = DATASETS[dataset]
        graph = load_dataset(dataset, scale=config.scale)
        seeds = rng.choice(graph.num_nodes, size=config.num_seeds, replace=False)

        na_error, sa_error, tpa_error = measure_errors(
            graph, spec.s_iteration, spec.t_iteration, seeds
        )
        na_bound = neighbor_bound(_C, spec.s_iteration, spec.t_iteration)
        sa_bound = stranger_bound(_C, spec.t_iteration)
        tpa_bound = total_bound(_C, spec.s_iteration)

        table.add_row(
            dataset,
            na_bound,
            na_error,
            f"{100 * na_error / na_bound:.2f}%",
            sa_bound,
            sa_error,
            f"{100 * sa_error / sa_bound:.2f}%",
            tpa_bound,
            tpa_error,
            f"{100 * tpa_error / tpa_bound:.2f}%",
        )
    table.add_note(
        f"Averaged over {config.num_seeds} random seeds; c = {_C}; "
        "NA/SA = neighbor/stranger approximation."
    )
    return [table]
