"""Figure 6 — ``‖Ā^S f − f‖₁`` on real-analog vs random graphs.

Expected shape (paper): the drift is substantially lower on graphs with
block-wise community structure than on edge-count-matched random graphs,
across all datasets — the empirical basis of the neighbor approximation.
"""

from __future__ import annotations

from repro.analysis.blockwise import family_drift_comparison
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset

__all__ = ["run"]

#: The paper's Figure 6 uses the five smaller datasets.
_DATASETS = ("slashdot", "google", "pokec", "livejournal", "wikilink")
_S = 5


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    table = ExperimentResult(
        "fig6",
        "Family drift ||A^S f - f||_1: real analog vs random graph (Figure 6)",
        ["dataset", "real graph", "random graph", "ratio"],
    )
    datasets = [d for d in config.datasets if d in _DATASETS] or list(_DATASETS)
    for dataset in datasets:
        graph = load_dataset(dataset, scale=config.scale)
        real, random_drift = family_drift_comparison(
            graph,
            s_iteration=_S,
            num_seeds=config.num_seeds,
            rng=config.rng_seed,
        )
        table.add_row(dataset, real, random_drift, f"{random_drift / real:.2f}x")
    table.add_note(
        f"S = {_S}, c = 0.15, {config.num_seeds} random seeds (paper: 30); "
        "worst-case drift is 2(1-(1-c)^S) = 1.11. Expected: real < random."
    )
    return [table]
