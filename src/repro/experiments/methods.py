"""Method suite construction shared by the experiment drivers.

Construction goes through the shared registry
(:func:`repro.engine.create_method`) — the paper-specific part kept here is
only the *configuration* each method gets in the Section IV-A setup
(memory budget, RNG seed, per-dataset TPA windows).
"""

from __future__ import annotations

from repro.baselines import BePI
from repro.engine import create_method
from repro.experiments.config import ExperimentConfig
from repro.graph.datasets import DatasetSpec
from repro.method import PPRMethod

__all__ = ["METHOD_ORDER", "build_method", "build_suite", "build_ground_truth"]

#: Plot order of the paper's Figure 1 legend.
METHOD_ORDER = ["TPA", "BRPPR", "FORA", "BEAR_APPROX", "HubPPR", "NB_LIN"]

#: Methods with a non-trivial preprocessing phase (Figure 1(a)/(b) only
#: compare these; BRPPR has nothing to preprocess).
PREPROCESSING_METHODS = ["TPA", "FORA", "BEAR_APPROX", "HubPPR", "NB_LIN"]


def build_method(
    name: str, spec: DatasetSpec, config: ExperimentConfig
) -> PPRMethod:
    """Construct one method configured as in the paper's Section IV-A."""
    budget = config.memory_budget_bytes
    configurations: dict[str, dict] = {
        "TPA": dict(
            s_iteration=spec.s_iteration, t_iteration=spec.t_iteration
        ),
        "BRPPR": dict(expand_threshold=1e-4),
        "FORA": dict(
            epsilon=0.5, memory_budget_bytes=budget, seed=config.rng_seed
        ),
        "BEAR_APPROX": dict(memory_budget_bytes=budget),
        "HubPPR": dict(
            epsilon=0.5, memory_budget_bytes=budget, seed=config.rng_seed
        ),
        "NB_LIN": dict(
            drop_tolerance=0.0, memory_budget_bytes=budget,
            seed=config.rng_seed,
        ),
    }
    if name not in configurations:
        raise KeyError(
            f"unknown method {name!r}; known: {sorted(configurations)}"
        )
    return create_method(name, **configurations[name])


def build_suite(
    spec: DatasetSpec, config: ExperimentConfig, names: list[str] | None = None
) -> dict[str, PPRMethod]:
    """Construct the full comparison suite for one dataset."""
    return {
        name: build_method(name, spec, config)
        for name in (names or METHOD_ORDER)
    }


def build_ground_truth(spec: DatasetSpec) -> BePI:
    """The exact method used as ground truth (BePI, as in the paper)."""
    return BePI()
