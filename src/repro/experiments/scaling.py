"""Scalability experiment — TPA's cost growth with graph size.

The paper's title claims billion-scale scalability; its complexity
analysis (Theorems 3–4) predicts preprocessing ``O(m log(ε/c))``, online
``O(mS)``, and memory ``O(n + m)`` — all (near-)linear in graph size.
This driver measures TPA across a geometric sweep of analog sizes and
reports the measured growth exponents, which should sit near 1.0
(sub-quadratic at the very least) if the implementation honors the
theory.  It is an extension (the paper shows scalability via the Figure 1
dataset sweep rather than a controlled size sweep).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.tpa import TPA
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.generators import community_graph

__all__ = ["run", "measure_scaling"]

_SIZES = (1_000, 2_000, 4_000, 8_000, 16_000)
_AVG_DEGREE = 10.0


def measure_scaling(
    sizes: tuple[int, ...] = _SIZES,
    num_seeds: int = 5,
    rng_seed: int = 0,
) -> list[dict[str, float]]:
    """Measure TPA preprocessing time, online time, and index bytes for a
    sweep of graph sizes.  Returns one record per size."""
    rng = np.random.default_rng(rng_seed)
    records = []
    for n in sizes:
        graph = community_graph(
            n, avg_degree=_AVG_DEGREE, num_communities=max(8, n // 125),
            seed=1000 + n,
        )
        method = TPA(s_iteration=5, t_iteration=10)
        begin = time.perf_counter()
        method.preprocess(graph)
        preprocess_seconds = time.perf_counter() - begin
        # Capture the index size before any query: preprocessed_bytes also
        # counts iterate buffers the online phase retains, and Theorem 4's
        # claim ("one float per node") is about the index alone.
        index_bytes = float(method.preprocessed_bytes())

        seeds = rng.choice(n, size=num_seeds, replace=False)
        samples = []
        for seed in seeds:
            begin = time.perf_counter()
            method.query(int(seed))
            samples.append(time.perf_counter() - begin)

        records.append(
            {
                "nodes": float(n),
                "edges": float(graph.num_edges),
                "preprocess_seconds": preprocess_seconds,
                "online_seconds": float(np.median(samples)),
                "index_bytes": index_bytes,
            }
        )
    return records


def growth_exponent(records: list[dict[str, float]], field: str) -> float:
    """Least-squares slope of log(field) against log(edges)."""
    x = np.log([r["edges"] for r in records])
    y = np.log([max(r[field], 1e-9) for r in records])
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    records = measure_scaling(num_seeds=config.num_seeds, rng_seed=config.rng_seed)

    table = ExperimentResult(
        "scaling",
        "TPA cost growth with graph size (Theorems 3-4 prediction: linear)",
        ["nodes", "edges", "preprocess s", "online s", "index bytes"],
    )
    for record in records:
        table.add_row(
            int(record["nodes"]),
            int(record["edges"]),
            record["preprocess_seconds"],
            record["online_seconds"],
            int(record["index_bytes"]),
        )
    for field, label in (
        ("preprocess_seconds", "preprocessing"),
        ("online_seconds", "online"),
        ("index_bytes", "index size"),
    ):
        exponent = growth_exponent(records, field)
        table.add_note(f"measured {label} growth exponent: {exponent:.2f} "
                       "(theory: 1.0)")
    return [table]
