"""Figure 4 — nonzeros and the column-difference statistic ``C_i``.

On Slashdot and Google: as ``i`` grows, ``nnz((Ãᵀ)^i)`` increases while
``C_i = (1/n) Σ_{j≠s} ‖c_s − c_j‖₁`` decreases — the empirical reason the
stranger approximation beats its Lemma 1 bound in practice.
"""

from __future__ import annotations

from repro.analysis.matrix_power import column_difference_statistic, matrix_power_nnz
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import load_dataset

__all__ = ["run"]

_POWERS = [1, 3, 5, 7]
_DATASETS = ("slashdot", "google")


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    nnz_table = ExperimentResult(
        "fig4a",
        "Nonzeros in (A~^T)^i (Figure 4(a))",
        ["power i"] + list(_DATASETS),
    )
    ci_table = ExperimentResult(
        "fig4b",
        "Column-difference statistic C_i (Figure 4(b))",
        ["power i"] + list(_DATASETS),
    )

    nnz_by_dataset = {}
    ci_by_dataset = {}
    for dataset in _DATASETS:
        graph = load_dataset(dataset, scale=config.scale)
        nnz_by_dataset[dataset] = matrix_power_nnz(graph, _POWERS)
        ci_by_dataset[dataset] = column_difference_statistic(
            graph, _POWERS, num_seeds=config.num_seeds, rng=config.rng_seed
        )

    for power in _POWERS:
        nnz_table.add_row(power, *[nnz_by_dataset[d][power] for d in _DATASETS])
        ci_table.add_row(power, *[ci_by_dataset[d][power] for d in _DATASETS])

    ci_table.add_note(
        f"C_i averaged over {config.num_seeds} random seed columns "
        "(paper: 30); expected shape: C_i decreases toward 0 as i grows, "
        "far below its worst case of 2."
    )
    return [nnz_table, ci_table]
