"""Table II — dataset statistics with the per-dataset ``S`` and ``T``."""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import DATASETS, load_dataset

__all__ = ["run"]


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    table = ExperimentResult(
        "table2",
        "Dataset statistics (Table II): paper originals and synthetic analogs",
        [
            "dataset",
            "paper nodes",
            "paper edges",
            "analog nodes",
            "analog edges",
            "S",
            "T",
        ],
    )
    for dataset in config.datasets:
        spec = DATASETS[dataset]
        graph = load_dataset(dataset, scale=config.scale)
        table.add_row(
            dataset,
            f"{spec.paper_nodes:,}",
            f"{spec.paper_edges:,}",
            f"{graph.num_nodes:,}",
            f"{graph.num_edges:,}",
            spec.s_iteration,
            spec.t_iteration,
        )
    table.add_note(
        "Analogs are community-structured power-law digraphs (DESIGN.md §4); "
        f"scale factor {config.scale}."
    )
    return [table]
