"""Figure 3 — distribution of nonzeros in ``(Ãᵀ)^i`` on Slashdot.

The paper shows spy plots for ``i ∈ {1, 3, 5, 7}``: the matrix densifies
rapidly with ``i``.  The textual analog here is a coarse grid of per-block
nonzero counts plus the total density per power.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.matrix_power import block_density_grid, matrix_power_nnz
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentResult
from repro.graph.datasets import load_dataset

__all__ = ["run"]

_POWERS = [1, 3, 5, 7]
_GRID = 8


def run(config: ExperimentConfig) -> list[ExperimentResult]:
    graph = load_dataset("slashdot", scale=config.scale)
    n = graph.num_nodes

    density_table = ExperimentResult(
        "fig3",
        "Density of (A~^T)^i on the Slashdot analog (Figure 3)",
        ["power i", "nonzeros", "density"],
    )
    nnz = matrix_power_nnz(graph, _POWERS)
    for power in _POWERS:
        density_table.add_row(power, nnz[power], nnz[power] / (n * n))

    grid_tables = []
    for power in _POWERS:
        grid = block_density_grid(graph, power, grid=_GRID)
        table = ExperimentResult(
            f"fig3.grid{power}",
            f"Nonzero counts of (A~^T)^{power} over an {_GRID}x{_GRID} grid",
            ["row stripe"] + [f"c{j}" for j in range(_GRID)],
        )
        for a in range(grid.shape[0]):
            table.add_row(f"r{a}", *[int(v) for v in grid[a]])
        grid_tables.append(table)

    density_table.add_note(
        "Expected shape: nonzeros grow sharply with i (the stranger "
        "approximation's accuracy driver)."
    )
    return [density_table, *grid_tables]
