"""Live HTTP operational endpoint for a running deployment.

PR 9's registry and trace buffer are only reachable from inside the
process.  This module puts them on the wire: an :class:`ObsExporter` is
a stdlib-only (:mod:`http.server`) background listener serving

* ``GET /metrics``  — the registry's Prometheus text exposition
  (strictly round-trippable through
  :func:`repro.obs.parse_prometheus_text`);
* ``GET /health``   — liveness plus *readiness* derived from the
  deployment's registered health checks (dead shard workers, scheduler
  backpressure), with proper ``200``/``503`` status codes;
* ``GET /snapshot`` — the ``repro-metrics/1`` JSON snapshot;
* ``GET /traces``   — the retained span ring buffer as a
  ``repro-trace/1`` document;
* ``GET /profile``  — the ``repro-profile/1`` snapshot of the sampling
  profiler (empty when profiling is off).

Deployments attach one via ``obs_port=`` (``0`` picks an ephemeral
port — tests read :attr:`ObsExporter.port`) or the ``REPRO_OBS_PORT``
environment variable.  The env path is a **process-global singleton**:
however many Servers/Routers/Engines a process builds, one listener
answers for all of them — each registers its own health check and
removes it on close, so the endpoint always reflects the live set.  An
explicitly requested exporter (``obs_port=``) is owned by its
deployment, whose ``close()`` shuts it down with the same guarantee the
shared-memory layer gives ``/dev/shm``: no dangling listener thread, no
bound port left behind.

Scrapes are read-only and answered from the serving threads of a
:class:`~http.server.ThreadingHTTPServer`; they never touch the
dispatch path.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.logs import get_logger

__all__ = [
    "OBS_PORT_ENV_VAR",
    "EXPORTER_THREAD_NAME",
    "ObsExporter",
    "env_obs_port",
    "start_exporter",
]

OBS_PORT_ENV_VAR = "REPRO_OBS_PORT"

#: Name of every exporter thread (the acceptor and, transiently, the
#: per-request handler threads) — leak checks grep live threads for it.
EXPORTER_THREAD_NAME = "repro-obs-exporter"

_log = get_logger("obs.exporter")


def env_obs_port() -> int | None:
    """``REPRO_OBS_PORT`` as an int, or ``None`` when unset/invalid."""
    raw = os.environ.get(OBS_PORT_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw.strip())
    except ValueError:
        _log.warning("ignoring invalid %s=%r", OBS_PORT_ENV_VAR, raw)
        return None


class ObsExporter:
    """Background HTTP listener over the process-global observability
    state.

    ``port=0`` binds an ephemeral port; the actual one is on
    :attr:`port`.  Health *checks* (callables returning a dict with a
    ``"ready"`` bool plus free-form detail) decide ``/health``'s status
    code; *collectors* (no-arg callables) run before every ``/metrics``
    and ``/snapshot`` render so scrape-time gauges — per-shard
    generations, workers-alive — are fresh without a background poller.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1"):
        self._checks: dict[str, object] = {}
        self._collectors: dict[str, object] = {}
        self._hook_lock = threading.Lock()
        self._closed = False
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                exporter._respond(self)

            def log_message(self, fmt: str, *args) -> None:
                _log.debug("scrape %s", fmt % args)

        self._server = ThreadingHTTPServer((host, int(port)), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=EXPORTER_THREAD_NAME,
            daemon=True,
        )
        self._thread.start()

    # -- wiring ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved, even when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def closed(self) -> bool:
        return self._closed

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def add_check(self, name: str, check) -> None:
        """Register a readiness check (dict with a ``"ready"`` bool)."""
        with self._hook_lock:
            self._checks[name] = check

    def remove_check(self, name: str) -> None:
        with self._hook_lock:
            self._checks.pop(name, None)

    def add_collector(self, name: str, collector) -> None:
        """Register a pre-scrape refresh hook for ``/metrics``/``/snapshot``."""
        with self._hook_lock:
            self._collectors[name] = collector

    def remove_collector(self, name: str) -> None:
        with self._hook_lock:
            self._collectors.pop(name, None)

    # -- rendering ---------------------------------------------------------

    def _collect(self) -> None:
        with self._hook_lock:
            collectors = list(self._collectors.values())
        for collector in collectors:
            try:
                collector()
            except Exception:  # noqa: BLE001 - a scrape must never 500
                _log.warning("metrics collector failed", exc_info=True)

    def health(self) -> tuple[bool, dict]:
        """Aggregate readiness: every registered check must say ready.

        A check that *raises* counts as not ready — a deployment too
        broken to introspect should fail its probe, not pass it.
        """
        with self._hook_lock:
            checks = list(self._checks.items())
        ready = True
        detail: dict = {}
        for name, check in checks:
            try:
                result = check()
            except Exception as error:  # noqa: BLE001 - fold into 503
                result = {"ready": False, "error": repr(error)}
            if not isinstance(result, dict):
                result = {"ready": bool(result)}
            detail[name] = result
            ready = ready and bool(result.get("ready", True))
        return ready, {
            "status": "ok" if ready else "unavailable",
            "alive": True,
            "ready": ready,
            "pid": os.getpid(),
            "checks": detail,
        }

    def _respond(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._collect()
                body = obs_metrics.get_registry().expose().encode()
                status, ctype = 200, "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/health":
                ready, document = self.health()
                body = json.dumps(document, indent=2).encode()
                status, ctype = (200 if ready else 503), "application/json"
            elif path == "/snapshot":
                self._collect()
                body = obs_metrics.snapshot_json(indent=2).encode()
                status, ctype = 200, "application/json"
            elif path == "/traces":
                body = json.dumps(obs_trace.dump_traces(), indent=2).encode()
                status, ctype = 200, "application/json"
            elif path == "/profile":
                body = json.dumps(
                    obs_profile.profile_snapshot(), indent=2
                ).encode()
                status, ctype = 200, "application/json"
            else:
                body = json.dumps(
                    {
                        "error": f"unknown path {path!r}",
                        "paths": ["/metrics", "/health", "/snapshot",
                                  "/traces", "/profile"],
                    }
                ).encode()
                status, ctype = 404, "application/json"
            handler.send_response(status)
            handler.send_header("Content-Type", ctype)
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the scraper hung up mid-reply; nothing to salvage
        except Exception:  # noqa: BLE001 - keep the listener alive
            _log.warning("scrape of %s failed", path, exc_info=True)
            try:
                handler.send_error(500)
            except OSError:
                pass

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop serving, join the acceptor thread, release the port.

        Idempotent.  After this returns no thread named
        :data:`EXPORTER_THREAD_NAME` remains and a fresh connect to the
        old port is refused — the same leave-nothing-behind contract the
        shared-memory store gives ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "ObsExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ObsExporter(http://{self.host}:{self.port}, "
            f"closed={self._closed})"
        )


_env_lock = threading.Lock()
_env_exporter: ObsExporter | None = None


def start_exporter(port: int | None = None) -> tuple[ObsExporter | None, bool]:
    """Resolve a deployment's exporter: ``(exporter, owned)``.

    An explicit ``port`` always binds a fresh listener the caller owns
    (and must close).  ``port=None`` consults ``REPRO_OBS_PORT``:
    unset means ``(None, False)`` — no exporter; set means the shared
    per-process singleton, which nobody owns (it lives for the process,
    and deployments only add/remove their health checks on it).
    """
    if port is not None:
        return ObsExporter(port), True
    resolved = env_obs_port()
    if resolved is None:
        return None, False
    global _env_exporter
    with _env_lock:
        if _env_exporter is None or _env_exporter.closed:
            _env_exporter = ObsExporter(resolved)
        return _env_exporter, False
