"""Cross-process sampling profiler for the serving stack.

``repro.obs`` can already say *how long* a phase took; this module
answers *where the CPU went* below the phase level.  A lightweight
sampler thread wakes ``REPRO_PROFILE_HZ`` times a second, walks every
live thread's Python stack (:func:`sys._current_frames`), and folds
each into a semicolon-joined **collapsed stack** — the format
``flamegraph.pl`` and speedscope consume directly::

    pid:1234;MainThread;repro.serving.server:dispatch_batch;... 27

The same sampler runs inside every :class:`~repro.sharding.ShardWorker`
process (armed at startup exactly like ``REPRO_FAULTS``: the child
re-reads the environment, discards any state a fork carried over, and
starts its own sampler).  Worker samples ship back to the router on the
existing step-reply channel and are merged here, so one profile sees
the whole process tree — every stack's root frame names the PID it was
caught in.

Gating follows the ``REPRO_METRICS`` pattern: profiling is **off** by
default and the disabled path is a single module-bool check
(:func:`arm` returns immediately; no thread exists, no per-event cost
anywhere).  Enable with ``REPRO_PROFILE=1`` (inherited by worker
processes), ``--profile PATH`` on any bench subcommand, or
:func:`set_profiling`.

The sampler sees Python frames.  Time spent inside a compiled kernel
(Numba, BLAS) is attributed to the ``repro.kernels`` call site holding
the frame — which is exactly the attribution the self-time table wants:
kernel cost lands on the kernel entry point, not smeared into
unknowable native frames.
"""

from __future__ import annotations

import os
import sys
import threading

__all__ = [
    "PROFILE_ENV_VAR",
    "PROFILE_HZ_ENV_VAR",
    "PROFILE_SCHEMA",
    "arm",
    "collapsed",
    "drain_local",
    "ingest",
    "profile_snapshot",
    "profiling_enabled",
    "reset",
    "reset_after_fork",
    "running",
    "sample_hz",
    "self_time",
    "set_profile_hz",
    "set_profiling",
    "stop",
]

PROFILE_ENV_VAR = "REPRO_PROFILE"
PROFILE_HZ_ENV_VAR = "REPRO_PROFILE_HZ"
PROFILE_SCHEMA = "repro-profile/1"

#: Default sampling rate.  A prime just under 100 Hz — the flamegraph
#: folklore choice: off any round scheduler period, so periodic work is
#: sampled fairly instead of strobed.
DEFAULT_HZ = 97.0
_MAX_HZ = 2000.0
_MAX_DEPTH = 64

_FALSY = {"", "0", "false", "off", "no"}


def _env_enabled() -> bool:
    raw = os.environ.get(PROFILE_ENV_VAR)
    if raw is None:
        return False
    return raw.strip().lower() not in _FALSY


def _env_hz() -> float:
    raw = os.environ.get(PROFILE_HZ_ENV_VAR)
    if raw:
        try:
            value = float(raw)
        except ValueError:
            return DEFAULT_HZ
        if value > 0:
            return min(value, _MAX_HZ)
    return DEFAULT_HZ


#: The gate.  Hot paths check this bare module bool (or ``running()``)
#: first — the same disabled-path contract ``REPRO_METRICS=0`` keeps.
_enabled = _env_enabled()

_hz_override: float | None = None

_state_lock = threading.Lock()
_active: "_Sampler | None" = None

#: Folded stacks accumulated in this process: stopped local sampler
#: epochs plus everything :func:`ingest` merged from worker replies.
_merged: dict[str, int] = {}
_merged_lock = threading.Lock()


def profiling_enabled() -> bool:
    """Whether the profiler is armed-or-armable (``REPRO_PROFILE``)."""
    return _enabled


def set_profiling(on: bool | None) -> None:
    """Force profiling on/off; ``None`` re-reads ``REPRO_PROFILE``.

    Turning it off stops a running sampler (its samples are kept)."""
    global _enabled
    _enabled = _env_enabled() if on is None else bool(on)
    if not _enabled:
        stop()


def sample_hz() -> float:
    """The effective sampling rate (override, else ``REPRO_PROFILE_HZ``)."""
    return _hz_override if _hz_override is not None else _env_hz()


def set_profile_hz(hz: float | None) -> None:
    """Override the sampling rate; ``None`` re-reads the environment.
    Takes effect at the next :func:`arm`."""
    global _hz_override
    if hz is None:
        _hz_override = None
    else:
        hz = float(hz)
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        _hz_override = min(hz, _MAX_HZ)


class _Sampler(threading.Thread):
    """The sampling loop: one daemon thread folding every *other*
    thread's stack at a fixed rate."""

    def __init__(self, hz: float):
        super().__init__(name="repro-obs-profiler", daemon=True)
        self.hz = hz
        self._interval = 1.0 / hz
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self._folded: dict[str, int] = {}

    def run(self) -> None:
        root = f"pid:{os.getpid()}"
        while not self._halt.wait(self._interval):
            try:
                frames = sys._current_frames()
            except Exception:  # pragma: no cover - interpreter teardown
                return
            folded = []
            for tid, frame in frames.items():
                if tid == self.ident:
                    continue
                parts = []
                depth = 0
                while frame is not None and depth < _MAX_DEPTH:
                    module = frame.f_globals.get("__name__", "?")
                    parts.append(f"{module}:{frame.f_code.co_name}")
                    frame = frame.f_back
                    depth += 1
                parts.append(root)
                parts.reverse()
                folded.append(";".join(parts))
            del frames
            with self._lock:
                for stack in folded:
                    self._folded[stack] = self._folded.get(stack, 0) + 1

    def halt(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)

    def drain(self) -> dict[str, int]:
        with self._lock:
            folded, self._folded = self._folded, {}
        return folded

    def peek(self) -> dict[str, int]:
        with self._lock:
            return dict(self._folded)


def arm() -> bool:
    """Start the sampler in this process if profiling is enabled.

    Idempotent, and the disabled path is one module-bool check — every
    deployment constructor and worker entry point calls this
    unconditionally.  Returns whether a sampler is running afterwards.
    """
    if not _enabled:
        return False
    global _active
    with _state_lock:
        if _active is None or not _active.is_alive():
            _active = _Sampler(sample_hz())
            _active.start()
    return True


def running() -> bool:
    """Whether a sampler thread is live in this process."""
    return _active is not None


def stop() -> None:
    """Stop the sampler (if any), folding its samples into the merged
    profile.  Idempotent; :func:`profile_snapshot` still sees
    everything collected."""
    global _active
    with _state_lock:
        sampler, _active = _active, None
    if sampler is not None:
        sampler.halt()
        ingest(sampler.drain())


def drain_local() -> dict[str, int]:
    """Take (and clear) the running sampler's folded stacks.

    This is the worker-side shipping hook: each step reply carries the
    increment since the previous reply, so the router's merged profile
    converges on worker truth without a second channel.  Returns ``{}``
    when no sampler runs.
    """
    sampler = _active
    if sampler is None:
        return {}
    return sampler.drain()


def ingest(folded: dict[str, int]) -> None:
    """Merge a folded-stack increment (local epoch or a worker's
    shipped samples) into the process profile."""
    if not folded:
        return
    with _merged_lock:
        for stack, count in folded.items():
            try:
                count = int(count)
            except (TypeError, ValueError):
                continue
            if count > 0:
                _merged[stack] = _merged.get(stack, 0) + count


def folded_samples() -> dict[str, int]:
    """Everything collected so far: merged epochs plus a non-draining
    peek at the live sampler."""
    with _merged_lock:
        combined = dict(_merged)
    sampler = _active
    if sampler is not None:
        for stack, count in sampler.peek().items():
            combined[stack] = combined.get(stack, 0) + count
    return combined


def collapsed() -> str:
    """The profile in collapsed-stack format (``flamegraph.pl`` input):
    one ``stack count`` line per distinct stack, sorted by weight."""
    samples = folded_samples()
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(
            samples.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    return "\n".join(lines) + "\n" if lines else ""


def self_time(top: int | None = None) -> list[tuple[str, int]]:
    """Aggregated self-time: samples whose *leaf* frame is each symbol,
    heaviest first — kernel and phase entry points surface here."""
    totals: dict[str, int] = {}
    for stack, count in folded_samples().items():
        leaf = stack.rsplit(";", 1)[-1]
        totals[leaf] = totals.get(leaf, 0) + count
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked if top is None else ranked[:top]


def pids() -> list[int]:
    """Distinct process ids the profile saw (root frame of each stack)."""
    seen: set[int] = set()
    for stack in folded_samples():
        root = stack.split(";", 1)[0]
        if root.startswith("pid:"):
            try:
                seen.add(int(root[4:]))
            except ValueError:
                continue
    return sorted(seen)


def profile_snapshot() -> dict:
    """The profile as a ``repro-profile/1`` JSON document."""
    samples = folded_samples()
    return {
        "schema": PROFILE_SCHEMA,
        "enabled": _enabled,
        "hz": sample_hz(),
        "pid": os.getpid(),
        "pids": pids(),
        "samples": sum(samples.values()),
        "stacks": samples,
        "self_time": [list(item) for item in self_time(25)],
    }


def reset() -> None:
    """Drop every collected sample (tests, fresh bench runs)."""
    stop()
    with _merged_lock:
        _merged.clear()


def reset_after_fork() -> None:
    """Discard profiler state a forked child inherited.

    The parent's sampler *object* survives a fork but its thread does
    not, and the parent's samples are not this process's truth.  Worker
    entry points call this before :func:`arm`, mirroring
    ``faults.reset_fault_plan()``.
    """
    global _active, _enabled
    with _state_lock:
        _active = None
    with _merged_lock:
        _merged.clear()
    _enabled = _env_enabled()
