"""Low-overhead request tracing for the serving stack.

A *trace* is minted per :class:`QueryRequest` at scheduler admission
and rides the request through batching, dispatch, the pipe protocol
into shard workers (whose spans are shipped back on the step reply),
and back out through gather/top-k.  Spans use the monotonic clock
(``time.perf_counter``) and land in a bounded process-global ring
buffer, so retention is O(buffer) no matter how long a server runs.

Tracing defaults **off**; ``REPRO_TRACE=1`` enables it and
``REPRO_TRACE_SAMPLE`` (0..1, default 1.0) samples per-request with a
seeded RNG so runs are reproducible.  The disabled fast path is a
single module-bool check in :func:`new_trace_id` — the same shape as
``resilience.faults.fire`` — which the overhead guard test holds to
microseconds.

Worker processes have their own clock origin, so spans shipped across
the pipe are *rebased* by the ingesting parent: durations are exact,
absolute offsets are aligned to the reply arrival.  Every span carries
a ``pid`` tag so dumps stay honest about clock domains.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import os
import random
import threading
import time
from collections import deque

__all__ = [
    "TRACE_ENV_VAR",
    "TRACE_SAMPLE_ENV_VAR",
    "TRACE_SCHEMA",
    "Span",
    "add_phase",
    "clear_spans",
    "collect_phases",
    "current_context",
    "drain_spans",
    "dump_traces",
    "format_trace",
    "ingest_spans",
    "new_trace_id",
    "phase",
    "set_trace_sample",
    "set_tracing",
    "span",
    "spans",
    "span_tree",
    "start_span",
    "trace_ids",
    "tracing_enabled",
    "use_context",
]

TRACE_ENV_VAR = "REPRO_TRACE"
TRACE_SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"
TRACE_SCHEMA = "repro-trace/1"

_TRUTHY = {"1", "true", "on", "yes"}
_DEFAULT_BUFFER = 8192


def _env_enabled() -> bool:
    raw = os.environ.get(TRACE_ENV_VAR)
    if raw is None:
        return False
    return raw.strip().lower() in _TRUTHY


def _env_sample() -> float:
    raw = os.environ.get(TRACE_SAMPLE_ENV_VAR)
    if raw is None:
        return 1.0
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    return min(1.0, max(0.0, value))


_enabled = _env_enabled()
_sample = _env_sample()
_sampler = random.Random(0)
_ids = itertools.count(1)
_buffer: deque = deque(maxlen=_DEFAULT_BUFFER)
_lock = threading.Lock()

# Current (trace_id, span_id) pair: new spans parent themselves under it
# and worker dispatches read it to decide whether to ship spans back.
_context: contextvars.ContextVar[tuple[str, str] | None] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)

# Per-batch phase accumulator for the queue/dispatch/sweep/gather/select
# breakdown; ``None`` outside an instrumented dispatch.
_phases: contextvars.ContextVar[dict | None] = contextvars.ContextVar(
    "repro_trace_phases", default=None
)


def tracing_enabled() -> bool:
    return _enabled


def set_tracing(on: bool | None) -> None:
    """Force tracing on/off; ``None`` re-reads ``REPRO_TRACE``."""

    global _enabled
    _enabled = _env_enabled() if on is None else bool(on)


def set_trace_sample(probability: float | None) -> None:
    """Override the sample rate; ``None`` re-reads the env knob."""

    global _sample
    _sample = (
        _env_sample()
        if probability is None
        else min(1.0, max(0.0, float(probability)))
    )


def set_buffer_size(size: int) -> None:
    """Resize the span ring buffer (drops existing spans)."""

    global _buffer
    with _lock:
        _buffer = deque(maxlen=max(1, int(size)))


def new_trace_id() -> str | None:
    """Mint a trace id, or ``None`` when tracing is off / unsampled.

    This is the only call on the per-request hot path when tracing is
    disabled, so the first check must stay a bare module bool.
    """

    if not _enabled:
        return None
    if _sample < 1.0:
        with _lock:
            if _sampler.random() >= _sample:
                return None
    return f"t{os.getpid():x}-{next(_ids):x}"


def _new_span_id() -> str:
    return f"s{os.getpid():x}-{next(_ids):x}"


class Span:
    """One timed operation inside a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "begin", "end",
                 "tags")

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None = None,
        begin: float | None = None,
        **tags: object,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.begin = time.perf_counter() if begin is None else begin
        self.end: float | None = None
        self.tags = dict(tags)

    def tag(self, **tags: object) -> None:
        self.tags.update(tags)

    def finish(self, end: float | None = None, **tags: object) -> None:
        if self.end is not None:
            return
        self.end = time.perf_counter() if end is None else end
        if tags:
            self.tags.update(tags)
        _publish(self.to_dict())

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "begin": self.begin,
            "end": self.end,
            "duration_ms": (
                None
                if self.end is None
                else (self.end - self.begin) * 1e3
            ),
            "tags": {"pid": os.getpid(), **self.tags},
        }


def start_span(
    name: str,
    trace_id: str | None,
    parent_id: str | None = None,
    begin: float | None = None,
    **tags: object,
) -> Span | None:
    """Open a span, or return ``None`` for untraced requests."""

    if trace_id is None:
        return None
    return Span(name, trace_id, parent_id=parent_id, begin=begin, **tags)


@contextlib.contextmanager
def span(
    name: str,
    trace_id: str | None = None,
    parent_id: str | None = None,
    **tags: object,
):
    """Context manager: time ``name`` under the current trace context.

    With no explicit ``trace_id`` the ambient context decides — outside
    any trace this collapses to a try/finally around ``yield None``.
    The opened span becomes the context for nested ``span()`` calls.
    """

    if trace_id is None:
        ambient = _context.get()
        if ambient is None:
            yield None
            return
        trace_id, inherited = ambient
        if parent_id is None:
            parent_id = inherited
    opened = Span(name, trace_id, parent_id=parent_id, **tags)
    token = _context.set((trace_id, opened.span_id))
    try:
        yield opened
    finally:
        _context.reset(token)
        opened.finish()


def current_context() -> tuple[str, str] | None:
    """The ambient ``(trace_id, span_id)`` pair, if any."""

    return _context.get()


@contextlib.contextmanager
def use_context(trace_id: str | None, span_id: str | None):
    """Install an explicit parent context (batch dispatch entry point)."""

    if trace_id is None or span_id is None:
        yield
        return
    token = _context.set((trace_id, span_id))
    try:
        yield
    finally:
        _context.reset(token)


# -- phase accounting ------------------------------------------------------


@contextlib.contextmanager
def collect_phases(accumulator: dict):
    """Route :func:`add_phase` calls into ``accumulator`` for one batch."""

    token = _phases.set(accumulator)
    try:
        yield accumulator
    finally:
        _phases.reset(token)


def add_phase(name: str, seconds: float) -> None:
    """Credit ``seconds`` to a lifecycle phase of the current batch."""

    accumulator = _phases.get()
    if accumulator is not None:
        accumulator[name] = accumulator.get(name, 0.0) + seconds


@contextlib.contextmanager
def phase(name: str, **tags: object):
    """Time a block as both a phase credit and (when traced) a span."""

    ambient = _context.get()
    opened = (
        Span(name, ambient[0], parent_id=ambient[1], **tags)
        if ambient is not None
        else None
    )
    begin = time.perf_counter()
    try:
        yield opened
    finally:
        elapsed = time.perf_counter() - begin
        add_phase(name, elapsed)
        if opened is not None:
            opened.finish()


# -- ring buffer -----------------------------------------------------------


def _publish(span_dict: dict) -> None:
    with _lock:
        _buffer.append(span_dict)


def ingest_spans(span_dicts, rebase_end: float | None = None) -> None:
    """Adopt spans shipped from another process.

    Worker clocks have a different origin, so when ``rebase_end`` is
    given (the parent-side arrival time) each span keeps its measured
    duration but is re-anchored to end at ``rebase_end``.
    """

    if not span_dicts:
        return
    adopted = []
    for item in span_dicts:
        entry = dict(item)
        if rebase_end is not None and entry.get("end") is not None:
            duration = entry["end"] - entry["begin"]
            entry["end"] = rebase_end
            entry["begin"] = rebase_end - duration
            entry.setdefault("tags", {})
            entry["tags"] = {**entry["tags"], "clock": "rebased"}
        adopted.append(entry)
    with _lock:
        _buffer.extend(adopted)


def spans(trace_id: str | None = None) -> list[dict]:
    """Snapshot retained spans, optionally for one trace."""

    with _lock:
        retained = list(_buffer)
    if trace_id is None:
        return retained
    return [item for item in retained if item["trace_id"] == trace_id]


def drain_spans() -> list[dict]:
    """Snapshot and clear the ring buffer."""

    with _lock:
        retained = list(_buffer)
        _buffer.clear()
    return retained


def clear_spans() -> None:
    with _lock:
        _buffer.clear()


def trace_ids() -> list[str]:
    """Distinct trace ids currently retained, oldest first."""

    seen: dict[str, None] = {}
    for item in spans():
        seen.setdefault(item["trace_id"], None)
    return list(seen)


# -- export ----------------------------------------------------------------


def dump_traces(path: str | None = None, trace_id: str | None = None) -> dict:
    """Build (and optionally write) the JSON trace document."""

    document = {"schema": TRACE_SCHEMA, "spans": spans(trace_id)}
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    return document


def span_tree(trace_id: str, retained: list[dict] | None = None) -> list[dict]:
    """Spans of one trace as a forest of ``{span, children}`` nodes.

    Spans whose parent is missing (evicted from the ring buffer, or the
    roots themselves) become forest roots, so partial traces still
    render instead of vanishing.
    """

    if retained is None:
        retained = spans(trace_id)
    else:
        retained = [s for s in retained if s["trace_id"] == trace_id]
    nodes = {
        item["span_id"]: {"span": item, "children": []} for item in retained
    }
    roots = []
    for item in retained:
        parent = item.get("parent_id")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(nodes[item["span_id"]])
        else:
            roots.append(nodes[item["span_id"]])
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["span"]["begin"])
    roots.sort(key=lambda node: node["span"]["begin"])
    return roots


def format_trace(trace_id: str, retained: list[dict] | None = None) -> str:
    """ASCII rendering of one trace's span tree (``repro obs trace``)."""

    lines = [f"trace {trace_id}"]

    def walk(node: dict, depth: int) -> None:
        item = node["span"]
        duration = item.get("duration_ms")
        if duration is None and item.get("end") is not None:
            duration = (item["end"] - item["begin"]) * 1e3
        shown = f"{duration:.3f} ms" if duration is not None else "open"
        tags = {
            key: value
            for key, value in item.get("tags", {}).items()
            if key not in {"pid", "clock"}
        }
        suffix = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(tags.items())) + "]"
            if tags
            else ""
        )
        lines.append(f"{'  ' * depth}- {item['name']} ({shown}){suffix}")
        for child in node["children"]:
            walk(child, depth + 1)

    for root in span_tree(trace_id, retained):
        walk(root, 1)
    return "\n".join(lines)
