"""Structured logging for the serving stack (``REPRO_LOG``).

The resilience layer deliberately swallows exceptions — a supervisor
probe that throws must not kill supervision, a reaper that loses a race
must not fail a build.  Before this module those paths were *silent*;
now they route through one logger tree rooted at ``repro`` whose
output format is an operator's choice:

* ``REPRO_LOG=json`` — one JSON object per line (``ts``, ``level``,
  ``component``, ``pid``, ``shard``, ``trace_id`` from the ambient
  tracing contextvar, ``message``, optional ``exc``) — machine-
  ingestable next to the ``repro-metrics/1``/``repro-trace/1`` dumps;
* ``REPRO_LOG=text`` — a conventional human line;
* unset / ``REPRO_LOG=0`` — **silent**, exactly the pre-existing
  behaviour: a ``NullHandler`` with propagation off, so not even
  Python's last-resort handler prints (the chaos suite *intentionally*
  kills workers; its expected probe failures must not flood stderr).

Call :func:`logging_setup` to (re)install the handler — it re-reads
the environment on every call and is idempotent when nothing changed —
or just :func:`get_logger`, which sets up lazily.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
from datetime import datetime, timezone

__all__ = ["LOG_ENV_VAR", "get_logger", "logging_setup"]

LOG_ENV_VAR = "REPRO_LOG"

_ROOT = "repro"
_FALSY = {"", "0", "false", "off", "no"}
_MODES = ("json", "text")

_setup_lock = threading.RLock()
_installed_mode: str | None = None
_configured = False
_explicit = False


def _env_mode() -> str | None:
    raw = os.environ.get(LOG_ENV_VAR)
    if raw is None:
        return None
    raw = raw.strip().lower()
    if raw in _FALSY:
        return None
    return raw if raw in _MODES else "text"


def _ambient() -> tuple[str | None, str | None]:
    """(shard annotation, trace id) — both best-effort: the formatter
    must never raise, and must work before the rest of repro imports."""
    shard = trace_id = None
    try:
        from repro import kernels

        shard = kernels.shard_annotation()
    except Exception:  # noqa: BLE001 - partial interpreter states
        pass
    try:
        from repro.obs import trace as obs_trace

        trace_id = obs_trace.current_context()[0]
    except Exception:  # noqa: BLE001
        pass
    return shard, trace_id


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        shard, trace_id = _ambient()
        document = {
            "ts": datetime.now(timezone.utc).isoformat(
                timespec="milliseconds"
            ),
            "level": record.levelname,
            "component": (
                record.name[len(_ROOT) + 1 :]
                if record.name.startswith(_ROOT + ".")
                else record.name
            ),
            "pid": record.process,
            "shard": shard,
            "trace_id": trace_id,
            "message": record.getMessage(),
        }
        if record.exc_info:
            document["exc"] = self.formatException(record.exc_info)
        return json.dumps(document)


class _TextFormatter(logging.Formatter):
    def __init__(self) -> None:
        super().__init__(
            "%(asctime)s %(levelname)s %(name)s [pid %(process)d] "
            "%(message)s"
        )

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        shard, trace_id = _ambient()
        suffix = []
        if shard is not None:
            suffix.append(f"shard={shard}")
        if trace_id is not None:
            suffix.append(f"trace={trace_id}")
        return f"{line} [{' '.join(suffix)}]" if suffix else line


def logging_setup(
    mode: str | None = None, *, stream=None, force: bool = False
) -> logging.Logger:
    """Install (or refresh) the ``repro`` log handler; returns the root
    ``repro`` logger.

    ``mode=None`` follows ``REPRO_LOG``; ``"json"``/``"text"`` force a
    format, anything falsy forces silence.  Re-reads the environment on
    every call, so flipping ``REPRO_LOG`` takes effect at the next
    setup — but an *explicit* ``mode`` argument sticks: the lazy
    env-resolved setup :func:`get_logger` performs must never clobber a
    format the application configured on purpose.  ``force=True``
    reinstalls even when nothing changed (tests swapping the
    ``stream``) and, with ``mode=None``, returns control to the
    environment.
    """
    global _configured, _installed_mode, _explicit
    resolved = _env_mode() if mode is None else (
        mode if mode in _MODES else None
    )
    with _setup_lock:
        logger = logging.getLogger(_ROOT)
        if _configured and not force and (
            _explicit and mode is None or resolved == _installed_mode
        ):
            return logger
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_obs", False):
                logger.removeHandler(handler)
        handler: logging.Handler
        if resolved is None:
            handler = logging.NullHandler()
        else:
            handler = logging.StreamHandler(stream or sys.stderr)
            handler.setFormatter(
                _JsonFormatter() if resolved == "json" else _TextFormatter()
            )
        handler._repro_obs = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
        # Propagation stays off either way: silent means *silent* (no
        # last-resort fallback), and enabled output must not duplicate
        # into a root handler the application may have installed.
        logger.propagate = False
        logger.setLevel(logging.INFO if resolved else logging.WARNING)
        _configured, _installed_mode = True, resolved
        _explicit = mode is not None
        return logger


def get_logger(component: str) -> logging.Logger:
    """The ``repro.<component>`` logger, installing the configured
    handler on first use."""
    logging_setup()
    return logging.getLogger(f"{_ROOT}.{component}")
