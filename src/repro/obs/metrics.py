"""Process-global metrics registry with Prometheus-text exposition.

Three thread-safe primitives — :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` (fixed log-spaced buckets, the same geometric
spacing ``latency_histogram`` uses for report histograms) — live
behind labeled *families* in a :class:`Registry`:

    registry = get_registry()
    sweeps = registry.histogram(
        "repro_sweep_seconds", "Per-shard sweep wall time.",
        labelnames=("shard", "backend"),
    )
    sweeps.labels(shard="2", backend="numba").observe(0.004)

``registry.expose()`` renders the Prometheus text format (no client
library involved) and ``registry.snapshot()`` the equivalent JSON
document; :func:`parse_prometheus_text` round-trips the former so
tests and the ``repro obs`` CLI can validate dumps without new
dependencies.

Metrics default **on** and cost one lock + int/float update per event;
``REPRO_METRICS=0`` turns every ``inc``/``set``/``observe`` into a
single attribute check.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading

__all__ = [
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "default_buckets",
    "get_registry",
    "metrics_enabled",
    "parse_prometheus_text",
    "set_metrics_enabled",
]

METRICS_ENV_VAR = "REPRO_METRICS"
METRICS_SCHEMA = "repro-metrics/1"

_FALSY = {"0", "false", "off", "no"}

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _env_enabled() -> bool:
    raw = os.environ.get(METRICS_ENV_VAR)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSY


_enabled = _env_enabled()


def metrics_enabled() -> bool:
    """Whether metric updates are recorded (``REPRO_METRICS`` gate)."""

    return _enabled


def set_metrics_enabled(on: bool | None) -> None:
    """Force metrics on/off; ``None`` re-reads ``REPRO_METRICS``."""

    global _enabled
    _enabled = _env_enabled() if on is None else bool(on)


def default_buckets(
    low: float = 1e-4, high: float = 60.0, count: int = 20
) -> tuple[float, ...]:
    """Fixed log-spaced bucket edges (seconds), mirroring the geometric
    spacing of ``serving.metrics.latency_histogram`` but static so every
    process exports comparable buckets."""

    if count < 1 or low <= 0 or high <= low:
        raise ValueError("need count >= 1 and 0 < low < high")
    ratio = (high / low) ** (1.0 / (count - 1)) if count > 1 else 1.0
    return tuple(low * ratio**i for i in range(count))


class Counter:
    """Monotonically increasing float, one per label set."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Float that can go up, down, or be set outright."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics."""

    __slots__ = ("_buckets", "_counts", "_count", "_lock", "_sum")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        index = len(self._buckets)
        for i, edge in enumerate(self._buckets):
            if value <= edge:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def buckets(self) -> tuple[float, ...]:
        return self._buckets

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative(self) -> list[int]:
        """Bucket counts as cumulative ``le`` totals (last is +Inf)."""

        with self._lock:
            out, running = [], 0
            for count in self._counts:
                running += count
                out.append(running)
            return out


def _check_labels(labelnames: tuple[str, ...]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for name in names:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    if len(set(names)) != len(names):
        raise ValueError("duplicate label names")
    return names


class Family:
    """One named metric: a map of label-value tuples to children.

    Unlabeled families proxy ``inc``/``set``/``observe`` straight to
    their single anonymous child so call sites stay terse.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        make_child,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self._make_child = make_child
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: object):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _solo(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; call .labels() first")
        return self.labels()

    # -- unlabeled conveniences -------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> dict[tuple[str, ...], object]:
        with self._lock:
            return dict(self._children)


class Registry:
    """Process-wide home for metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family (and raises if the second
    ask disagrees on kind or labels), so modules can register lazily
    without coordinating import order.
    """

    def __init__(self) -> None:
        self._families: dict[str, Family] = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        make_child,
    ) -> Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = _check_labels(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}"
                    )
                return family
            family = Family(name, help_text, kind, labelnames, make_child)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Family:
        return self._family(name, help_text, "counter", labelnames, Counter)

    def gauge(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Family:
        return self._family(name, help_text, "gauge", labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> Family:
        edges = tuple(buckets) if buckets is not None else default_buckets()
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram buckets must be strictly increasing")
        return self._family(
            name, help_text, "histogram", labelnames,
            lambda: Histogram(edges),
        )

    def families(self) -> dict[str, Family]:
        with self._lock:
            return dict(self._families)

    def reset(self) -> None:
        """Drop every family (tests and fresh bench runs)."""

        with self._lock:
            self._families.clear()

    # -- exposition --------------------------------------------------------

    def expose(self) -> str:
        """Render the registry in the Prometheus text format."""

        lines: list[str] = []
        registered = self.families()
        for name in sorted(registered):
            family = registered[name]
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in sorted(family.children().items()):
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    edges = child.buckets
                    for edge, cum in zip(
                        (*edges, math.inf), child.cumulative()
                    ):
                        le = "+Inf" if math.isinf(edge) else _format(edge)
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels({**labels, 'le': le})} {cum}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} "
                        f"{_format(child.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """JSON-ready mirror of :meth:`expose`."""

        families = {}
        registered = self.families()
        for name in sorted(registered):
            family = registered[name]
            samples = []
            for key, child in sorted(family.children().items()):
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": list(child.buckets),
                            "counts": child.cumulative(),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            families[name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return {"schema": METRICS_SCHEMA, "families": families}


def _format(value: float) -> str:
    if value == math.floor(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def parse_prometheus_text(text: str) -> dict:
    """Parse Prometheus text exposition into ``{name: family_dict}``.

    Each family dict has ``type``, ``help``, and ``samples`` — a list of
    ``(sample_name, labels, value)`` triples.  Raises :class:`ValueError`
    on any malformed line, which is exactly what the round-trip tests
    and the ``repro obs`` CLI want: a strict syntax check with no
    dependency on a real Prometheus client.
    """

    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        return families.setdefault(
            name, {"type": None, "help": "", "samples": []}
        )

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(None, 1)
            if not parts:
                raise ValueError(f"line {lineno}: malformed HELP")
            family(parts[0])["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: malformed TYPE")
            name, kind = parts
            if kind not in {"counter", "gauge", "histogram", "summary",
                            "untyped"}:
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            family(name)["type"] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name = match.group("name")
        labels: dict[str, str] = {}
        label_body = match.group("labels")
        if label_body:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_body):
                labels[pair.group("key")] = (
                    pair.group("value")
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
                consumed += pair.end() - pair.start()
            stripped = re.sub(_LABEL_PAIR_RE, "", label_body).replace(",", "")
            if stripped.strip():
                raise ValueError(
                    f"line {lineno}: malformed labels {label_body!r}"
                )
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            try:
                value = float(value_text)
            except ValueError as error:
                raise ValueError(
                    f"line {lineno}: bad value {value_text!r}"
                ) from error
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and trimmed in families:
                base = trimmed
                break
        family(base)["samples"].append((sample_name, labels, value))
    return families


_default_registry = Registry()


def get_registry() -> Registry:
    """The process-global registry every subsystem reports into."""

    return _default_registry


def snapshot_json(indent: int | None = None) -> str:
    return json.dumps(_default_registry.snapshot(), indent=indent)
