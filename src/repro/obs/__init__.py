"""Unified observability: metrics, tracing, exporter, profiler, logs.

Five pillars, all dependency-free:

- :mod:`repro.obs.metrics` — thread-safe Counter/Gauge/Histogram
  families behind a process-global :class:`Registry`, exported as
  Prometheus text (``registry.expose()``) or JSON
  (``registry.snapshot()``), gated by ``REPRO_METRICS`` (default on).
- :mod:`repro.obs.trace` — per-request span trees that follow a query
  through scheduler, dispatch, shard-worker sweeps (across the pipe),
  gather, and top-k, gated by ``REPRO_TRACE`` (default off) with
  ``REPRO_TRACE_SAMPLE`` sampling.
- :mod:`repro.obs.exporter` — a stdlib HTTP endpoint
  (``obs_port=`` / ``REPRO_OBS_PORT``) serving ``/metrics``,
  ``/health`` (readiness-aware 200/503), ``/snapshot``, ``/traces``,
  and ``/profile`` for any live deployment.
- :mod:`repro.obs.profile` — a ``REPRO_PROFILE``-gated sampling
  profiler that runs in the serving process *and* every shard worker,
  merged into one collapsed-stack (flamegraph) profile.
- :mod:`repro.obs.logs` — ``REPRO_LOG``-gated structured (JSON-lines
  or text) logging for the stack's formerly silent recovery paths.
"""

from repro.obs.exporter import (
    EXPORTER_THREAD_NAME,
    OBS_PORT_ENV_VAR,
    ObsExporter,
    start_exporter,
)
from repro.obs.logs import LOG_ENV_VAR, get_logger, logging_setup
from repro.obs.metrics import (
    METRICS_ENV_VAR,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    Registry,
    default_buckets,
    get_registry,
    metrics_enabled,
    parse_prometheus_text,
    set_metrics_enabled,
)
from repro.obs.profile import (
    PROFILE_ENV_VAR,
    PROFILE_HZ_ENV_VAR,
    PROFILE_SCHEMA,
    collapsed as collapsed_profile,
    profile_snapshot,
    profiling_enabled,
    set_profile_hz,
    set_profiling,
)
from repro.obs.trace import (
    TRACE_ENV_VAR,
    TRACE_SAMPLE_ENV_VAR,
    TRACE_SCHEMA,
    Span,
    add_phase,
    clear_spans,
    collect_phases,
    current_context,
    drain_spans,
    dump_traces,
    format_trace,
    ingest_spans,
    new_trace_id,
    phase,
    set_trace_sample,
    set_tracing,
    span,
    span_tree,
    spans,
    start_span,
    trace_ids,
    tracing_enabled,
    use_context,
)

__all__ = [
    "EXPORTER_THREAD_NAME",
    "LOG_ENV_VAR",
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA",
    "OBS_PORT_ENV_VAR",
    "PROFILE_ENV_VAR",
    "PROFILE_HZ_ENV_VAR",
    "PROFILE_SCHEMA",
    "TRACE_ENV_VAR",
    "TRACE_SAMPLE_ENV_VAR",
    "TRACE_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "ObsExporter",
    "Registry",
    "Span",
    "add_phase",
    "clear_spans",
    "collapsed_profile",
    "collect_phases",
    "current_context",
    "default_buckets",
    "drain_spans",
    "dump_traces",
    "format_trace",
    "get_logger",
    "get_registry",
    "ingest_spans",
    "logging_setup",
    "metrics_enabled",
    "new_trace_id",
    "parse_prometheus_text",
    "phase",
    "profile_snapshot",
    "profiling_enabled",
    "set_metrics_enabled",
    "set_profile_hz",
    "set_profiling",
    "set_trace_sample",
    "set_tracing",
    "span",
    "span_tree",
    "spans",
    "start_exporter",
    "start_span",
    "trace_ids",
    "tracing_enabled",
    "use_context",
]
