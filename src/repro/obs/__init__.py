"""Unified observability: metrics registry + cross-process tracing.

Two pillars, both dependency-free:

- :mod:`repro.obs.metrics` — thread-safe Counter/Gauge/Histogram
  families behind a process-global :class:`Registry`, exported as
  Prometheus text (``registry.expose()``) or JSON
  (``registry.snapshot()``), gated by ``REPRO_METRICS`` (default on).
- :mod:`repro.obs.trace` — per-request span trees that follow a query
  through scheduler, dispatch, shard-worker sweeps (across the pipe),
  gather, and top-k, gated by ``REPRO_TRACE`` (default off) with
  ``REPRO_TRACE_SAMPLE`` sampling.
"""

from repro.obs.metrics import (
    METRICS_ENV_VAR,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    Registry,
    default_buckets,
    get_registry,
    metrics_enabled,
    parse_prometheus_text,
    set_metrics_enabled,
)
from repro.obs.trace import (
    TRACE_ENV_VAR,
    TRACE_SAMPLE_ENV_VAR,
    TRACE_SCHEMA,
    Span,
    add_phase,
    clear_spans,
    collect_phases,
    current_context,
    drain_spans,
    dump_traces,
    format_trace,
    ingest_spans,
    new_trace_id,
    phase,
    set_trace_sample,
    set_tracing,
    span,
    span_tree,
    spans,
    start_span,
    trace_ids,
    tracing_enabled,
    use_context,
)

__all__ = [
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA",
    "TRACE_ENV_VAR",
    "TRACE_SAMPLE_ENV_VAR",
    "TRACE_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "add_phase",
    "clear_spans",
    "collect_phases",
    "current_context",
    "default_buckets",
    "drain_spans",
    "dump_traces",
    "format_trace",
    "get_registry",
    "ingest_spans",
    "metrics_enabled",
    "new_trace_id",
    "parse_prometheus_text",
    "phase",
    "set_metrics_enabled",
    "set_trace_sample",
    "set_tracing",
    "span",
    "span_tree",
    "spans",
    "start_span",
    "trace_ids",
    "tracing_enabled",
    "use_context",
]
