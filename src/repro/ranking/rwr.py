"""Exact RWR reference solvers.

RWR solves ``r = (1-c) Ã^T r + c q`` for a single-seed vector ``q = e_s``
(Section II-B).  Three exact routes are provided:

* :func:`rwr_power` — fixed-point iteration (CPI without windowing);
* :func:`rwr_direct` — sparse direct solve of ``(I − (1-c)Ã^T) r = c q``,
  the strongest ground truth for small graphs;
* :func:`rwr_exact` — dispatcher that picks the direct solve for small
  graphs and the iterative route otherwise.

:func:`rwr_matrix` returns the system matrix ``H = I − (1-c)Ã^T`` shared by
the block-elimination baselines (BEAR, BePI).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.cpi import cpi, seed_vector
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["rwr_power", "rwr_direct", "rwr_exact", "rwr_matrix"]

#: Below this node count the direct sparse solve is preferred.
_DIRECT_SOLVE_LIMIT = 20_000


def rwr_matrix(graph: Graph, c: float = 0.15) -> sp.csr_array:
    """The RWR system matrix ``H = I − (1-c) Ã^T`` in CSR form.

    ``H r = c q`` recovers the exact RWR vector.  Note this uses the sparse
    transition transpose directly; for graphs with the ``"uniform"``
    dangling policy the rank-one correction is *not* representable sparsely
    and this function raises.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError("restart probability c must be in (0, 1)")
    if graph.dangling_nodes.size and graph.dangling_policy == "uniform":
        raise ParameterError(
            "rwr_matrix cannot represent the uniform dangling correction "
            "sparsely; rebuild the graph with the 'selfloop' policy"
        )
    n = graph.num_nodes
    eye = sp.identity(n, format="csr", dtype=np.float64)
    return (eye - (1.0 - c) * graph.transition_transpose).tocsr()


def rwr_power(
    graph: Graph, seed: int, c: float = 0.15, tol: float = 1e-12
) -> np.ndarray:
    """Exact RWR by running CPI to convergence."""
    return cpi(graph, seeds=seed, c=c, tol=tol).scores


def rwr_direct(graph: Graph, seed: int, c: float = 0.15) -> np.ndarray:
    """Exact RWR by a sparse direct solve (LU) — ground truth for tests."""
    matrix = rwr_matrix(graph, c)
    rhs = c * seed_vector(graph, seed)
    solution = spla.spsolve(matrix.tocsc(), rhs)
    return np.asarray(solution, dtype=np.float64)


def rwr_exact(graph: Graph, seed: int, c: float = 0.15, tol: float = 1e-12) -> np.ndarray:
    """Exact RWR: direct solve for small graphs, power iteration otherwise."""
    can_solve_directly = (
        graph.num_nodes <= _DIRECT_SOLVE_LIMIT
        and not (graph.dangling_nodes.size and graph.dangling_policy == "uniform")
    )
    if can_solve_directly:
        return rwr_direct(graph, seed, c=c)
    return rwr_power(graph, seed, c=c, tol=tol)
