"""Reference PageRank and exact RWR solvers.

These provide seed-independent PageRank (Section II-A) and exact RWR
reference solutions used as ground truth in tests, alongside the BePI
baseline used as ground truth in the experiments.
"""

from repro.ranking.pagerank import pagerank, pagerank_power
from repro.ranking.rwr import rwr_exact, rwr_direct, rwr_power, rwr_matrix

__all__ = [
    "pagerank",
    "pagerank_power",
    "rwr_exact",
    "rwr_direct",
    "rwr_power",
    "rwr_matrix",
]
