"""PageRank (Page et al., 1999) — Section II-A of the paper.

PageRank solves ``p = (1-c) Ã^T p + (c/n) 1``.  Two equivalent routes are
provided: :func:`pagerank` via CPI (the paper's formulation, and exactly
what TPA's preprocessing truncates), and :func:`pagerank_power` via the
classic normalized power iteration, used to cross-validate CPI in tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.cpi import cpi
from repro.exceptions import ConvergenceError, ParameterError
from repro.graph.graph import Graph

__all__ = ["pagerank", "pagerank_power"]


def pagerank(
    graph: Graph, c: float = 0.15, tol: float = 1e-9
) -> np.ndarray:
    """PageRank via CPI with the uniform seed vector (Theorem 1).

    Parameters
    ----------
    graph:
        Input graph.
    c:
        Restart (teleport) probability.
    tol:
        L1 convergence tolerance on the interim vector.
    """
    return cpi(graph, seeds=None, c=c, tol=tol).scores


def pagerank_power(
    graph: Graph,
    c: float = 0.15,
    tol: float = 1e-12,
    max_iterations: int = 10_000,
) -> np.ndarray:
    """PageRank via fixed-point power iteration on the steady-state equation.

    Iterates ``p ← (1-c) Ã^T p + (c/n) 1`` from the uniform vector until the
    L1 change is below ``tol``.  Mathematically identical to :func:`pagerank`
    but structured as the textbook recurrence; the two agree to solver
    tolerance, which the test suite asserts.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError("restart probability c must be in (0, 1)")
    n = graph.num_nodes
    teleport = np.full(n, c / n)
    p = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        new_p = (1.0 - c) * graph.propagate(p) + teleport
        delta = float(np.abs(new_p - p).sum())
        p = new_p
        if delta < tol:
            return p
    raise ConvergenceError(
        f"pagerank_power did not converge within {max_iterations} iterations"
    )
