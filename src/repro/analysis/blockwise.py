"""Block-wise structure analysis — Figure 6.

The neighbor approximation assumes that the family-part score distribution
``f`` barely changes when propagated ``S`` more steps: with an ideal
community structure, ``Ā^S f ≈ f`` (Figure 5).  Figure 6 quantifies this by
comparing ``‖Ā^S f − f‖₁`` on real graphs against random graphs with the
same node and edge counts — real graphs drift much less.

Here ``Ā = Ãᵀ`` is the raw column-stochastic operator (no ``1-c`` decay),
and ``f`` is normalized to unit L1 mass so drifts are comparable across
graphs; the comparison's *shape* (real ≪ random) is what the experiment
reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.core.cpi import cpi
from repro.exceptions import ParameterError
from repro.graph.generators import rewire_random
from repro.graph.graph import Graph

__all__ = ["family_drift", "family_drift_comparison"]


def family_drift(
    graph: Graph,
    seed: int,
    s_iteration: int = 5,
    c: float = 0.15,
) -> float:
    """``‖Ā^S f − f‖₁`` for the raw family vector of ``seed``.

    ``‖f‖₁ = 1 − (1−c)^S`` is the same for every graph (Lemma 2), so raw
    drifts are directly comparable across datasets, as in Figure 6; the
    worst case is ``2(1 − (1−c)^S)`` ≈ 1.11 at the paper's settings.
    """
    if s_iteration < 1:
        raise ParameterError("S must be at least 1")
    family = cpi(
        graph, seed, c=c, start_iteration=0, terminal_iteration=s_iteration - 1
    ).scores

    propagated = family
    for _ in range(s_iteration):
        propagated = graph.propagate(propagated)
    return float(np.abs(propagated - family).sum())


def family_drift_comparison(
    graph: Graph,
    s_iteration: int = 5,
    c: float = 0.15,
    num_seeds: int = 30,
    rng: np.random.Generator | int | None = 0,
) -> tuple[float, float]:
    """Mean family drift on ``graph`` vs an edge-count-matched random graph.

    Returns ``(real_drift, random_drift)`` averaged over ``num_seeds``
    random seed nodes — the two bars per dataset in Figure 6.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    seeds = rng.choice(graph.num_nodes, size=min(num_seeds, graph.num_nodes),
                       replace=False)
    random_graph = rewire_random(graph, seed=rng)

    real = float(np.mean([family_drift(graph, int(s), s_iteration, c) for s in seeds]))
    rand = float(
        np.mean([family_drift(random_graph, int(s), s_iteration, c) for s in seeds])
    )
    return real, rand
