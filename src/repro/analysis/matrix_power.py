"""Densification of matrix powers ``(Ãᵀ)^i`` — Figures 3 and 4.

The stranger approximation's practical accuracy rests on an empirical
property: as ``i`` grows, ``(Ãᵀ)^i`` becomes dense with near-identical
columns, so the column-difference statistic

.. math::

    C_i \\;=\\; \\frac{1}{n} \\sum_{j \\ne s} \\lVert c^{(i)}_s - c^{(i)}_j \\rVert_1

(the determining factor in Lemma 1's proof) falls far below its worst-case
value of 2.  These functions measure the number of nonzeros (Figure 4(a)),
``C_i`` averaged over random seeds (Figure 4(b)), and a coarse block-count
grid of nonzeros that serves as the textual analog of Figure 3's spy plots.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["matrix_power_nnz", "column_difference_statistic", "block_density_grid"]

#: Above this density the power is converted to dense storage to keep
#: repeated sparse-sparse products from thrashing.
_DENSIFY_THRESHOLD = 0.25


def _matrix_powers(graph: Graph, max_power: int) -> list[sp.csr_array | np.ndarray]:
    """Return ``[(Ãᵀ)^1, ..., (Ãᵀ)^max_power]``, densifying when warranted."""
    if max_power < 1:
        raise ParameterError("max_power must be at least 1")
    base = graph.transition_transpose
    powers: list[sp.csr_array | np.ndarray] = [base]
    current: sp.csr_array | np.ndarray = base
    n = graph.num_nodes
    for _ in range(max_power - 1):
        if isinstance(current, np.ndarray):
            # Powers commute, so advancing from the left keeps the
            # computation one blocked CSR x dense product on the kernel
            # layer — O(nnz · n) instead of the dense GEMM's O(n³), and
            # thread-parallel under the numba backend.
            current = kernels.spmm(base, current)
        else:
            current = (current @ base).tocsr()
            if current.nnz > _DENSIFY_THRESHOLD * n * n:
                current = current.toarray()
        powers.append(current)
    return powers


def _nnz(matrix: sp.csr_array | np.ndarray) -> int:
    if isinstance(matrix, np.ndarray):
        return int(np.count_nonzero(matrix))
    return int(matrix.nnz)


def matrix_power_nnz(graph: Graph, powers: list[int]) -> dict[int, int]:
    """Number of nonzeros of ``(Ãᵀ)^i`` for each requested ``i``
    (Figure 4(a): nnz grows rapidly with ``i``)."""
    if not powers:
        raise ParameterError("powers must be non-empty")
    if min(powers) < 1:
        raise ParameterError("powers must be >= 1")
    computed = _matrix_powers(graph, max(powers))
    return {i: _nnz(computed[i - 1]) for i in powers}


def column_difference_statistic(
    graph: Graph,
    powers: list[int],
    num_seeds: int = 30,
    rng: np.random.Generator | int | None = 0,
) -> dict[int, float]:
    """``C_i`` averaged over ``num_seeds`` random seed columns
    (Figure 4(b): ``C_i`` decreases as ``i`` increases)."""
    if not powers:
        raise ParameterError("powers must be non-empty")
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    n = graph.num_nodes
    seeds = rng.choice(n, size=min(num_seeds, n), replace=False)

    computed = _matrix_powers(graph, max(powers))
    result: dict[int, float] = {}
    for i in powers:
        matrix = computed[i - 1]
        dense = matrix if isinstance(matrix, np.ndarray) else matrix.toarray()
        values = []
        for seed in seeds:
            seed_column = dense[:, seed][:, np.newaxis]
            diff = np.abs(dense - seed_column).sum(axis=0)
            # Exclude the seed column itself (j != s), then average by 1/n
            # exactly as the paper defines C_i.
            values.append(float(diff.sum() - diff[seed]) / n)
        result[i] = float(np.mean(values))
    return result


def block_density_grid(
    graph: Graph, power: int, grid: int = 16
) -> np.ndarray:
    """Nonzero counts of ``(Ãᵀ)^power`` aggregated over a ``grid × grid``
    partition of the matrix — a textual stand-in for Figure 3's spy plots.

    Returns a ``(grid, grid)`` integer array; entry ``(a, b)`` counts the
    nonzeros whose row falls in stripe ``a`` and column in stripe ``b``.
    """
    if power < 1:
        raise ParameterError("power must be >= 1")
    if grid < 1:
        raise ParameterError("grid must be >= 1")
    matrix = _matrix_powers(graph, power)[-1]
    n = graph.num_nodes
    grid = min(grid, n)
    edges = np.linspace(0, n, grid + 1).astype(np.int64)

    if isinstance(matrix, np.ndarray):
        counts = np.zeros((grid, grid), dtype=np.int64)
        for a in range(grid):
            rows = matrix[edges[a] : edges[a + 1]]
            nonzero_cols = np.nonzero(rows)[1]
            hist, _ = np.histogram(nonzero_cols, bins=edges)
            counts[a] = hist
        return counts

    coo = matrix.tocoo()
    row_bin = np.clip(np.searchsorted(edges, coo.row, side="right") - 1, 0, grid - 1)
    col_bin = np.clip(np.searchsorted(edges, coo.col, side="right") - 1, 0, grid - 1)
    counts = np.zeros((grid, grid), dtype=np.int64)
    np.add.at(counts, (row_bin, col_bin), 1)
    return counts
