"""Conductance sweep cuts — local community detection from RWR scores.

Community detection is one of the RWR applications motivating the paper
(Andersen, Chung & Lang 2006; Whang, Gleich & Dhillon 2013 — both cited).
The classic recipe: rank nodes by degree-normalized RWR score from a seed,
then *sweep* — evaluate the conductance of every prefix of the ranking and
return the prefix with the smallest conductance.  Good approximate RWR
scores yield good sweep cuts, which makes this a functional (rather than
numerical) end-to-end test of TPA.

Conductance here is the directed-volume variant on the symmetrized view:
``φ(S) = cut(S) / min(vol(S), vol(V∖S))`` with ``vol`` the sum of total
degrees and ``cut`` the number of edges crossing ``S`` in either
direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = ["SweepCut", "conductance", "sweep_cut"]


@dataclass(frozen=True)
class SweepCut:
    """Result of a conductance sweep.

    Attributes
    ----------
    nodes:
        Members of the best community found (original node ids).
    conductance:
        Its conductance ``φ`` (lower is better; 0 = disconnected).
    sweep_conductances:
        ``φ`` of every prefix examined, in ranking order — useful for
        plotting the sweep profile.
    """

    nodes: np.ndarray
    conductance: float
    sweep_conductances: np.ndarray


def conductance(graph: Graph, nodes: np.ndarray) -> float:
    """Conductance of a node set on the symmetrized view of ``graph``."""
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        raise ParameterError("conductance needs a non-empty node set")
    if nodes.size >= graph.num_nodes:
        raise ParameterError("conductance of the full vertex set is undefined")
    sym = graph.undirected_view()
    degree = np.asarray(sym.sum(axis=1)).ravel()

    inside = np.zeros(graph.num_nodes, dtype=bool)
    inside[nodes] = True
    volume = float(degree[nodes].sum())
    total_volume = float(degree.sum())
    internal = float(sym[nodes][:, nodes].sum())
    cut = volume - internal
    denominator = min(volume, total_volume - volume)
    if denominator == 0.0:
        return 1.0
    return cut / denominator


def sweep_cut(
    graph: Graph,
    scores: np.ndarray,
    max_size: int | None = None,
    degree_normalize: bool = True,
) -> SweepCut:
    """Find the lowest-conductance prefix of the score ranking.

    Parameters
    ----------
    graph:
        Graph the scores were computed on.
    scores:
        RWR (or any) score vector; only nodes with positive score enter
        the sweep.
    max_size:
        Cap on the community size examined (defaults to ``n // 2``).
    degree_normalize:
        Rank by ``score / degree`` as in Andersen-Chung-Lang (the RWR
        analog of their PPR sweep); set False to rank by raw score.

    Returns
    -------
    SweepCut

    Notes
    -----
    The incremental formulation keeps the sweep ``O(m + n log n)``: volume
    and cut are updated per added node rather than recomputed per prefix.
    """
    if scores.shape != (graph.num_nodes,):
        raise ParameterError("scores must have one entry per node")
    if max_size is None:
        max_size = max(1, graph.num_nodes // 2)
    if max_size < 1:
        raise ParameterError("max_size must be at least 1")

    sym = graph.undirected_view()
    degree = np.asarray(sym.sum(axis=1)).ravel()
    total_volume = float(degree.sum())

    ranking_scores = scores.astype(np.float64).copy()
    if degree_normalize:
        ranking_scores = np.divide(
            ranking_scores,
            np.maximum(degree, 1.0),
        )
    candidates = np.flatnonzero(scores > 0)
    if candidates.size == 0:
        raise ParameterError("no node has positive score")
    order = candidates[np.argsort(-ranking_scores[candidates], kind="stable")]
    order = order[: min(max_size, order.size, graph.num_nodes - 1)]

    inside = np.zeros(graph.num_nodes, dtype=bool)
    volume = 0.0
    cut = 0.0
    conductances = np.empty(order.size)

    indptr, indices = sym.indptr, sym.indices
    for position, node in enumerate(order.tolist()):
        neighbors = indices[indptr[node] : indptr[node + 1]]
        internal_edges = float(inside[neighbors].sum())
        # Adding `node`: its degree joins the volume; edges to current
        # members stop being cut (each was counted once from the other
        # side) and its remaining edges become cut.
        volume += float(degree[node])
        cut += float(degree[node]) - 2.0 * internal_edges
        inside[node] = True
        denominator = min(volume, total_volume - volume)
        conductances[position] = cut / denominator if denominator > 0 else 1.0

    best = int(np.argmin(conductances))
    return SweepCut(
        nodes=order[: best + 1].copy(),
        conductance=float(conductances[best]),
        sweep_conductances=conductances,
    )
