"""Structural analyses behind the paper's Figures 3, 4 and 6.

* :mod:`~repro.analysis.matrix_power` — densification of ``(Ãᵀ)^i`` and
  the column-difference statistic ``C_i`` that drives the stranger
  approximation's practical accuracy (Figures 3–4, Lemma 1 discussion).
* :mod:`~repro.analysis.blockwise` — the ``‖Ā^S f − f‖₁`` comparison
  between real-analog and random graphs that motivates the neighbor
  approximation (Figure 6, Lemma 3 discussion).
"""

from repro.analysis.matrix_power import (
    matrix_power_nnz,
    column_difference_statistic,
    block_density_grid,
)
from repro.analysis.blockwise import family_drift, family_drift_comparison
from repro.analysis.sweep import SweepCut, conductance, sweep_cut

__all__ = [
    "matrix_power_nnz",
    "column_difference_statistic",
    "block_density_grid",
    "family_drift",
    "family_drift_comparison",
    "SweepCut",
    "conductance",
    "sweep_cut",
]
