"""Measurement utilities: accuracy, memory accounting, and timing.

These back the paper's three evaluation axes — accuracy (Figure 7,
Table III), memory (Figures 1(a), 10(a)), and wall-clock time
(Figures 1(b,c), 10(b,c)).
"""

from repro.metrics.accuracy import (
    l1_error,
    top_k,
    recall_at_k,
    precision_at_k,
    ndcg_at_k,
)
from repro.metrics.memory import MemoryBudget, format_bytes, sparse_nbytes
from repro.metrics.timing import Timer, time_callable, TimingStats

__all__ = [
    "l1_error",
    "top_k",
    "recall_at_k",
    "precision_at_k",
    "ndcg_at_k",
    "MemoryBudget",
    "format_bytes",
    "sparse_nbytes",
    "Timer",
    "time_callable",
    "TimingStats",
]
