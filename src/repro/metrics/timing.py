"""Wall-clock timing helpers.

The paper reports wall-clock medians over 30 random seeds.  ``Timer`` is a
simple context manager; :func:`time_callable` runs a callable several times
and reports summary statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.exceptions import ParameterError

__all__ = ["Timer", "TimingStats", "time_callable"]

T = TypeVar("T")


class Timer:
    """Context manager measuring wall-clock seconds.

    Examples
    --------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self._begin = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._begin = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._begin


@dataclass(frozen=True)
class TimingStats:
    """Summary of repeated timings (seconds)."""

    mean: float
    median: float
    minimum: float
    maximum: float
    repeats: int


def time_callable(
    func: Callable[[], T], repeats: int = 3
) -> tuple[T, TimingStats]:
    """Call ``func`` ``repeats`` times; return its last result and stats."""
    if repeats < 1:
        raise ParameterError("repeats must be at least 1")
    samples: list[float] = []
    result: T | None = None
    for _ in range(repeats):
        begin = time.perf_counter()
        result = func()
        samples.append(time.perf_counter() - begin)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        median = samples[mid]
    else:
        median = 0.5 * (samples[mid - 1] + samples[mid])
    stats = TimingStats(
        mean=sum(samples) / len(samples),
        median=median,
        minimum=samples[0],
        maximum=samples[-1],
        repeats=repeats,
    )
    return result, stats  # type: ignore[return-value]
