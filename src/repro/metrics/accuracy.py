"""Accuracy metrics for approximate RWR vectors.

The paper reports two accuracy views: L1 norm error against the exact
vector (Table III, Figures 8–9) and recall of the exact top-``k`` vertex
set (Figure 7) — the quantity that matters for ranking applications such
as Twitter's "Who to Follow" (top-500).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["l1_error", "top_k", "recall_at_k", "precision_at_k", "ndcg_at_k"]


def _validate_pair(exact: np.ndarray, approx: np.ndarray) -> None:
    if exact.shape != approx.shape:
        raise ParameterError(
            f"score vectors must have equal shapes; got {exact.shape} vs "
            f"{approx.shape}"
        )


def l1_error(exact: np.ndarray, approx: np.ndarray) -> float:
    """``‖exact − approx‖₁``."""
    _validate_pair(exact, approx)
    return float(np.abs(exact - approx).sum())


def top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, descending, with deterministic
    (lowest-id-first) tie breaking."""
    if k < 1:
        raise ParameterError("k must be at least 1")
    k = min(k, scores.size)
    # argsort of (-score, id): stable sort on negated scores.
    order = np.argsort(-scores, kind="stable")
    return order[:k]


def recall_at_k(exact: np.ndarray, approx: np.ndarray, k: int) -> float:
    """|exact-top-k ∩ approx-top-k| / k — the paper's Figure 7 metric."""
    _validate_pair(exact, approx)
    exact_set = set(top_k(exact, k).tolist())
    approx_set = set(top_k(approx, k).tolist())
    k_eff = min(k, exact.size)
    return len(exact_set & approx_set) / k_eff


def precision_at_k(exact: np.ndarray, approx: np.ndarray, k: int) -> float:
    """Identical to recall at equal ``k`` set sizes; provided for clarity
    when callers use different exact/approx cut-offs."""
    return recall_at_k(exact, approx, k)


def ndcg_at_k(exact: np.ndarray, approx: np.ndarray, k: int) -> float:
    """Normalized discounted cumulative gain of the approximate ranking,
    with the exact scores as graded relevance."""
    _validate_pair(exact, approx)
    k = min(k, exact.size)
    discounts = 1.0 / np.log2(np.arange(2, k + 2))

    approx_order = top_k(approx, k)
    dcg = float((exact[approx_order] * discounts).sum())

    ideal_order = top_k(exact, k)
    ideal = float((exact[ideal_order] * discounts).sum())
    if ideal <= 0.0:
        return 0.0
    return dcg / ideal
