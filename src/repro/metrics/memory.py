"""Memory accounting for preprocessed data.

The paper caps every method at the workstation's 200 GB and omits bars for
methods that run out of memory (Figure 1).  :class:`MemoryBudget` is the
scaled-down stand-in: experiments construct the heavy baselines with a
budget, and a method whose preprocessed data would exceed it raises
:class:`~repro.exceptions.MemoryBudgetExceeded`, which the reporting layer
renders as ``OOM``.
"""

from __future__ import annotations

from dataclasses import dataclass

import scipy.sparse as sp

from repro.exceptions import MemoryBudgetExceeded, ParameterError

__all__ = ["MemoryBudget", "format_bytes", "sparse_nbytes"]

#: Default scaled budget: the paper's 200 GB cap scaled by the ~1/3000
#: edge-count ratio between Friendster and its analog here, rounded to a
#: value under which BEAR-APPROX / NB-LIN fail on the three largest
#: analogs while every method passes on the four smallest — the same
#: feasibility split as the paper's Figure 1.
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class MemoryBudget:
    """A byte budget for preprocessed data.

    Examples
    --------
    >>> budget = MemoryBudget(1024)
    >>> budget.check("toy", 512)
    >>> budget.check("toy", 4096)
    Traceback (most recent call last):
        ...
    repro.exceptions.MemoryBudgetExceeded: toy requires 4096 bytes ...
    """

    limit_bytes: int = DEFAULT_BUDGET_BYTES

    def __post_init__(self) -> None:
        if self.limit_bytes <= 0:
            raise ParameterError("memory budget must be positive")

    def check(self, method_name: str, required_bytes: int) -> None:
        """Raise :class:`MemoryBudgetExceeded` when over budget."""
        if required_bytes > self.limit_bytes:
            raise MemoryBudgetExceeded(method_name, required_bytes, self.limit_bytes)

    def allows(self, required_bytes: int) -> bool:
        """Non-raising variant of :meth:`check`."""
        return required_bytes <= self.limit_bytes


def sparse_nbytes(matrix: sp.sparray | sp.spmatrix) -> int:
    """Bytes held by a CSR/CSC/COO sparse matrix's constituent arrays."""
    if hasattr(matrix, "data") and hasattr(matrix, "indices"):
        return int(matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes)
    if hasattr(matrix, "row"):  # COO
        return int(matrix.data.nbytes + matrix.row.nbytes + matrix.col.nbytes)
    raise ParameterError(f"unsupported sparse format: {type(matrix).__name__}")


def format_bytes(num_bytes: float) -> str:
    """Human-readable base-2 size string (``"12.3 MB"`` style)."""
    if num_bytes < 0:
        raise ParameterError("byte count must be non-negative")
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
