"""repro — reproduction of *TPA: Fast, Scalable, and Accurate Method for
Approximate Random Walk with Restart on Billion Scale Graphs* (Yoon, Jung,
Kang — ICDE 2018).

Quickstart
----------
Preprocess once, then serve seed batches through the engine — the paper's
deployment shape (Twitter-scale "Who to Follow" is top-500 RWR for
millions of users against one preprocessed graph):

>>> from repro import Engine, community_graph, create_method
>>> graph = community_graph(1000, avg_degree=10, seed=7)
>>> engine = Engine(create_method("tpa", s_iteration=5, t_iteration=10),
...                 graph)                      # Algorithm 2 runs here, once
>>> result = engine.query(0, k=10)              # one structured result
>>> recommendations = engine.serve(range(32), k=10)  # (32, 10) id matrix
>>> full = engine.query(0)                      # full score vector + metadata
>>> float(abs(full.scores).sum()) <= 1.0 + 1e-9
True

``engine.batch([...])`` takes :class:`QueryRequest` records and returns
:class:`QueryResult` records carrying scores or top-k ids plus wall-time,
preprocessed bytes, and the method's error bound.  All seeds in a batch
propagate through the graph together (one sparse matmul per iteration for
the whole batch) — see :meth:`PPRMethod.query_many`.

The original single-seed API remains fully supported:

>>> method = create_method("tpa", s_iteration=5, t_iteration=10)
>>> method.preprocess(graph)          # Algorithm 2: stranger approximation
>>> scores = method.query(0)          # Algorithm 3: family + neighbor approx

Kernel backends, float32 mode, and the perf trajectory
------------------------------------------------------
Every hot loop (CPI iterates, TPA's phases, the power-iteration
baselines) runs its CSR SpMV/SpMM products on :mod:`repro.kernels`,
which auto-selects a Numba-JIT, thread-parallel backend at import when
Numba is installed and otherwise uses a pure NumPy/SciPy fallback that
is bitwise identical to the plain ``operator @ x`` path.  Control it
with ``REPRO_KERNEL=numba|numpy`` or ``repro.kernels.set_backend``:

>>> from repro import kernels
>>> kernels.get_backend() in ("numba", "numpy")
True

Opt into single-precision compute with ``REPRO_KERNEL_DTYPE=float32``
or ``kernels.set_compute_dtype("float32")`` — roughly half the memory
traffic for an L1 error below ``~1e-5`` on the bundled graphs (see the
:mod:`repro.kernels` docstring for when to keep float64).  The Engine's
LRU cache keys on ``kernels.cache_token()``, so switching backend or
dtype mid-serve never replays a stale vector.  ``Engine(...,
reorder="slashburn")`` additionally relabels the graph into SlashBurn
hub/spoke order and attaches a hub-aligned row tiling
(``REPRO_KERNEL_TILE`` / :func:`repro.kernels.set_tile_rows`) so every
blocked SpMM runs a cache-friendly tiled schedule, translating node ids
at the API boundary.  Top-k serving streams in column blocks with the
compiled :func:`repro.kernels.select_top_k_many` selection fused into
the block loop — the full ``n x batch`` score matrix never
materializes.

The measured trajectory lives in ``BENCH_kernels.json`` (one JSON object
per line; run ``python benchmarks/record.py`` to append): compare
``queries_per_second_batched`` across commits at matching
``backend``/``graph`` fields, and ``spmv_seconds``/``spmm_seconds`` for
kernel-level wins.

Package map
-----------
* :mod:`repro.kernels` — the compiled sparse-kernel layer (backends,
  ``spmv``/``spmm``, ``Workspace``, SlashBurn locality reordering).
* :mod:`repro.engine` — the batched query engine (``Engine``,
  ``QueryRequest``/``QueryResult``) and the method registry
  (``available_methods`` / ``create_method``).
* :mod:`repro.core` — CPI (Algorithm 1) and TPA (Algorithms 2–3) with the
  paper's accuracy bounds.
* :mod:`repro.graph` — graph substrate, generators, dataset analogs,
  SlashBurn, partitioning.
* :mod:`repro.ranking` — reference PageRank / exact RWR solvers.
* :mod:`repro.baselines` — BRPPR, NB_LIN, BEAR-APPROX, FORA, HubPPR, BePI.
* :mod:`repro.serving` — concurrent serving (micro-batching ``Scheduler``,
  ``Server`` over Engine replicas, shared ``ScoreCache``, load generator).
* :mod:`repro.sharding` — sharded multi-process serving (``ShardPlan``,
  shared-memory ``ShardStore``, shard workers, ``Router``,
  ``Engine.shard()``).
* :mod:`repro.dynamic` — dynamic graphs (``DynamicGraph`` delta-overlay
  edge updates, epoch-aware cache repair, warm-restarted serving).
* :mod:`repro.tune` — hardware autotuning (measured ``TuneProfile``
  knobs cached per machine fingerprint) and core/NUMA pinning.
* :mod:`repro.obs` — observability: process-global metrics registry
  (counters/gauges/histograms, Prometheus text + JSON exposition),
  low-overhead cross-process request tracing (``REPRO_TRACE``), a live
  HTTP exporter (``obs_port=`` / ``REPRO_OBS_PORT``), a cross-process
  sampling profiler (``REPRO_PROFILE``), and structured logging of the
  resilience layer's except-paths (``REPRO_LOG``).
* :mod:`repro.resilience` — fault tolerance for the serving stack:
  worker supervision/respawn (``Supervisor``), bounded retries
  (``RetryPolicy``), request deadlines, deterministic fault injection
  (``REPRO_FAULTS``), and crash-safe shared-memory cleanup.
* :mod:`repro.metrics` — L1 error, recall@k, memory and timing accounting.
* :mod:`repro.analysis` — matrix-power densification and block-wise drift.
* :mod:`repro.experiments` — one driver per paper table/figure
  (``python -m repro.experiments --list``).
"""

from repro.exceptions import (
    ReproError,
    GraphFormatError,
    DanglingNodeError,
    NotPreprocessedError,
    MemoryBudgetExceeded,
    ConvergenceError,
    ParameterError,
    ServerOverloaded,
    DeadlineExceeded,
    WorkerFailure,
)
from repro.method import PPRMethod, select_top_k
from repro.graph import (
    Graph,
    read_edge_list,
    write_edge_list,
    community_graph,
    rmat_graph,
    gnm_random_graph,
    rewire_random,
    ring_graph,
    star_graph,
    complete_graph,
    DATASETS,
    DatasetSpec,
    load_dataset,
    dataset_names,
    slashburn,
    partition_graph,
)
from repro.core import (
    cpi,
    cpi_many,
    cpi_parts,
    CPIResult,
    CPIManyResult,
    CPIMethod,
    TPA,
    TPAParts,
    family_norm,
    neighbor_norm,
    stranger_norm,
    neighbor_scale,
    stranger_bound,
    neighbor_bound,
    total_bound,
    convergence_iterations,
    select_parameters,
    sweep_s,
    sweep_t,
)
from repro.ranking import pagerank, pagerank_power, rwr_exact, rwr_direct, rwr_power
from repro.baselines import (
    BiPPR,
    BRPPR,
    FastPPR,
    RPPR,
    NBLin,
    BearApprox,
    Fora,
    HubPPR,
    BePI,
)
from repro.engine import (
    Engine,
    QueryRequest,
    QueryResult,
    available_methods,
    create_method,
    register_method,
)
from repro.graph.diskgraph import DiskGraph
from repro.graph.stats import GraphStats, graph_stats
from repro import kernels
from repro import obs
from repro import serving
from repro.serving import (
    LatencyStats,
    LoadReport,
    Scheduler,
    ScoreCache,
    Server,
    run_closed_loop,
)
from repro import sharding
from repro.sharding import Router, ShardPlan, ShardedEngine
from repro import dynamic
from repro.dynamic import DeltaOverlay, DynamicGraph, OVERLAY_TOLERANCE
from repro import tune
from repro.tune import MachineFingerprint, TuneProfile, autotune
from repro import resilience
from repro.resilience import RetryPolicy, Supervisor
from repro.metrics import (
    l1_error,
    top_k,
    recall_at_k,
    precision_at_k,
    ndcg_at_k,
    MemoryBudget,
    format_bytes,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphFormatError",
    "DanglingNodeError",
    "NotPreprocessedError",
    "MemoryBudgetExceeded",
    "ConvergenceError",
    "ParameterError",
    "ServerOverloaded",
    "DeadlineExceeded",
    "WorkerFailure",
    "PPRMethod",
    "select_top_k",
    "Engine",
    "QueryRequest",
    "QueryResult",
    "available_methods",
    "create_method",
    "register_method",
    "Graph",
    "read_edge_list",
    "write_edge_list",
    "community_graph",
    "rmat_graph",
    "gnm_random_graph",
    "rewire_random",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "slashburn",
    "partition_graph",
    "cpi",
    "cpi_many",
    "cpi_parts",
    "CPIResult",
    "CPIManyResult",
    "CPIMethod",
    "TPA",
    "TPAParts",
    "family_norm",
    "neighbor_norm",
    "stranger_norm",
    "neighbor_scale",
    "stranger_bound",
    "neighbor_bound",
    "total_bound",
    "convergence_iterations",
    "select_parameters",
    "sweep_s",
    "sweep_t",
    "pagerank",
    "pagerank_power",
    "rwr_exact",
    "rwr_direct",
    "rwr_power",
    "BiPPR",
    "BRPPR",
    "FastPPR",
    "RPPR",
    "NBLin",
    "BearApprox",
    "DiskGraph",
    "GraphStats",
    "graph_stats",
    "Fora",
    "HubPPR",
    "BePI",
    "l1_error",
    "top_k",
    "recall_at_k",
    "precision_at_k",
    "ndcg_at_k",
    "MemoryBudget",
    "format_bytes",
    "kernels",
    "obs",
    "serving",
    "Server",
    "Scheduler",
    "ScoreCache",
    "LatencyStats",
    "LoadReport",
    "run_closed_loop",
    "sharding",
    "Router",
    "ShardPlan",
    "ShardedEngine",
    "dynamic",
    "DeltaOverlay",
    "DynamicGraph",
    "OVERLAY_TOLERANCE",
    "tune",
    "MachineFingerprint",
    "TuneProfile",
    "autotune",
    "resilience",
    "RetryPolicy",
    "Supervisor",
    "__version__",
]
