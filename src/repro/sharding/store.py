"""Shared-memory publication of shard CSR stripes and iterate panels.

:class:`ShardStore` owns the ``multiprocessing.shared_memory`` segments
behind a sharded deployment:

* one **operator segment** holding every shard's CSR row stripe of the
  propagation operator ``Ã^T`` (local ``indptr``, ``indices``, ``data``
  back to back, 64-byte aligned) — workers map their stripe zero-copy;
* two **iterate panels** ``X`` and ``Y`` sized for ``n × panel_cols``
  float64 columns: the router scatters the current iterate into ``X``,
  every worker reads all of ``X`` and writes only its own row stripe of
  ``Y``, and the router gathers ``Y`` back.

Stripes are built from an in-memory :class:`~repro.graph.graph.Graph`
(row slices of ``transition_transpose``) or any substrate exposing
``stripe_operator``/``num_stripes`` (e.g.
:class:`~repro.graph.diskgraph.DiskGraph`, whose on-disk stripes are
re-sliced to plan boundaries without ever materializing the full
operator in one process).  Row data is copied verbatim — stored order,
float64 — so a worker's :func:`repro.kernels.spmm` over its stripe
reproduces the single-process product bit for bit.

Lifecycle: the creating process owns the segments and **must** call
:meth:`ShardStore.close` (routers and sharded engines do this from their
own ``close()``), which unlinks every segment — nothing may remain in
``/dev/shm`` afterwards, a guarantee the test suite checks.  Worker
processes attach with :func:`attach_segment`, which unregisters the
mapping from their resource tracker so a worker exit neither unlinks a
live segment nor warns about one it never owned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from types import SimpleNamespace

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ParameterError
from repro.resilience.reaper import owned_segment_name, reap_orphan_segments
from repro.sharding.plan import ShardPlan

__all__ = ["ShardStore", "StripeSpec", "attach_segment", "create_segment"]

#: Alignment of every array within the operator segment; keeps each
#: stripe's arrays on cache-line boundaries regardless of neighbors.
_ALIGN = 64

#: Default column capacity of the X/Y iterate panels.  Wider operands
#: are processed in column chunks (bitwise neutral: columns propagate
#: independently).
DEFAULT_PANEL_COLS = 128


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class StripeSpec:
    """Where one shard's CSR arrays live inside the operator segment.

    Everything here is plain picklable data — it is the recipe a worker
    process uses to rebuild zero-copy views over the shared segment.
    """

    shard: int
    row_begin: int
    row_end: int
    num_cols: int
    nnz: int
    indptr_offset: int
    indices_offset: int
    data_offset: int
    index_dtype: str
    arrays: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def num_rows(self) -> int:
        return self.row_end - self.row_begin


def attach_segment(
    name: str, private_tracker: bool = False
) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting ownership.

    ``SharedMemory(name=...)`` registers the mapping with the attaching
    process's resource tracker.  Shard workers — forked *or* spawned —
    inherit the creating process's tracker, where the extra registration
    is an idempotent no-op that :meth:`ShardStore.close`'s ``unlink``
    clears; unregistering from a worker would instead erase the
    creator's bookkeeping, so the default leaves it alone.  A genuinely
    unrelated process (its own tracker) should pass
    ``private_tracker=True`` so its tracker does not unlink the live
    segment when it exits.
    """
    segment = shared_memory.SharedMemory(name=name)
    if private_tracker:
        try:  # pragma: no cover - tracker layout is an implementation detail
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    return segment


def create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a segment under a crash-traceable name.

    The name encodes this process as the owner
    (``repro-shm-<pid>-<nonce>``), which is what lets
    :func:`repro.resilience.reap_orphan_segments` clean up after a
    SIGKILLed creator whose resource tracker died with it.  Collisions
    (astronomically unlikely, but names are guessable) fall back to
    fresh nonces, then to the stdlib's anonymous naming.
    """
    for _ in range(8):
        try:
            return shared_memory.SharedMemory(
                create=True, size=size, name=owned_segment_name()
            )
        except FileExistsError:  # pragma: no cover - nonce collision
            continue
    return shared_memory.SharedMemory(  # pragma: no cover - fallback
        create=True, size=size
    )


def _operator_stripes(graph, plan: ShardPlan, shards=None):
    """Yield ``(shard, spec_rows, csr_stripe)`` per shard of ``plan``.

    In-memory graphs slice ``transition_transpose`` directly; duck-typed
    substrates with their own striping (``DiskGraph``) are re-sliced to
    plan boundaries one stored stripe at a time.  ``shards`` optionally
    restricts extraction to a subset (the dirty shards of a partial
    republish) — untouched stripes are never sliced at all.
    """
    shard_ids = (
        range(plan.num_shards) if shards is None else sorted(shards)
    )
    operator = getattr(graph, "transition_transpose", None)
    if operator is not None:
        for shard in shard_ids:
            begin, end = plan.shard_rows(shard)
            yield shard, (begin, end), operator[begin:end]
        return
    if not hasattr(graph, "stripe_operator"):
        raise ParameterError(
            f"{type(graph).__name__} exposes neither transition_transpose "
            "nor stripe_operator; cannot build shard stripes"
        )
    for shard in shard_ids:
        begin, end = plan.shard_rows(shard)
        parts = []
        for stored in range(graph.num_stripes):
            s_begin, s_end = graph.stripe_rows(stored)
            if s_end <= begin or s_begin >= end:
                continue
            block = graph.stripe_operator(stored)
            lo = max(begin, s_begin) - s_begin
            hi = min(end, s_end) - s_begin
            parts.append(block[lo:hi])
        stripe = (
            parts[0]
            if len(parts) == 1
            else sp.vstack(parts, format="csr")
        )
        yield shard, (begin, end), sp.csr_array(stripe)


class ShardStore:
    """Owner of the shared-memory segments of one sharded deployment.

    Build with :meth:`ShardStore.build`; pass each worker its
    :class:`StripeSpec` plus the segment names (all picklable), then
    :meth:`close` exactly once when serving ends.
    """

    def __init__(
        self,
        operator_segment: shared_memory.SharedMemory,
        panel_x: shared_memory.SharedMemory,
        panel_y: shared_memory.SharedMemory,
        specs: list[StripeSpec],
        num_rows: int,
        panel_cols: int,
    ):
        self._operator = operator_segment
        self._panel_x = panel_x
        self._panel_y = panel_y
        self._specs = specs
        self._num_rows = num_rows
        self._panel_cols = panel_cols
        self._closed = False

    @classmethod
    def build(
        cls,
        graph,
        plan: ShardPlan,
        panel_cols: int = DEFAULT_PANEL_COLS,
        previous: "ShardStore | None" = None,
        dirty_shards=None,
    ) -> "ShardStore":
        """Publish ``graph``'s operator stripes for ``plan`` into shared
        memory and size the iterate panels for ``panel_cols`` columns.

        ``previous`` with ``dirty_shards`` enables the partial republish
        a dynamic-graph compaction needs: only the named shards' stripes
        are re-extracted from ``graph``; every clean stripe is copied
        byte for byte from the previous store's segment (the source of
        truth for rows no mutation touched), so republish cost scales
        with the edited stripes, not the graph.  The new store is fully
        independent — the previous one stays valid until its own
        ``close()``.
        """
        n = graph.num_nodes
        if plan.num_rows != n:
            raise ParameterError(
                f"plan covers {plan.num_rows} rows but the graph has {n}"
            )
        if panel_cols < 1:
            raise ParameterError("panel_cols must be at least 1")
        # Crash-safe hygiene: before allocating fresh segments, unlink
        # any left by a dead owner — a deployment that crashed hard last
        # run must not slowly fill /dev/shm.
        reap_orphan_segments()

        if previous is not None and dirty_shards is not None:
            if previous.closed:
                raise ParameterError(
                    "cannot reuse stripes from a closed ShardStore"
                )
            old_specs = previous.specs
            if len(old_specs) != plan.num_shards or any(
                (spec.row_begin, spec.row_end) != plan.shard_rows(shard)
                for shard, spec in enumerate(old_specs)
            ):
                raise ParameterError(
                    "previous store's stripe boundaries do not match the "
                    "plan; partial republish needs an identical ShardPlan"
                )
            dirty = {int(shard) for shard in dirty_shards}
            fresh = {
                shard: stripe
                for shard, _rows, stripe in _operator_stripes(
                    graph, plan, shards=dirty
                )
            }
            stripes = [
                (
                    shard,
                    plan.shard_rows(shard),
                    fresh[shard]
                    if shard in dirty
                    else previous.stripe_arrays(shard),
                )
                for shard in range(plan.num_shards)
            ]
        else:
            stripes = list(_operator_stripes(graph, plan))
        layout: list[dict] = []
        offset = 0
        for _shard, (begin, end), stripe in stripes:
            entry = {}
            for part in ("indptr", "indices", "data"):
                array = getattr(stripe, part)
                offset = _aligned(offset)
                entry[part] = (offset, array.size, array.dtype.str)
                offset += array.nbytes
            layout.append(entry)
        operator_segment = create_segment(max(offset, 1))
        specs: list[StripeSpec] = []
        for shard, (begin, end), stripe in stripes:
            entry = layout[shard]
            for part in ("indptr", "indices", "data"):
                off, count, dtype = entry[part]
                view = np.ndarray(
                    (count,), dtype=dtype, buffer=operator_segment.buf,
                    offset=off,
                )
                np.copyto(view, getattr(stripe, part))
            specs.append(
                StripeSpec(
                    shard=shard,
                    row_begin=begin,
                    row_end=end,
                    num_cols=n,
                    nnz=int(stripe.nnz),
                    indptr_offset=entry["indptr"][0],
                    indices_offset=entry["indices"][0],
                    data_offset=entry["data"][0],
                    index_dtype=entry["indices"][2],
                    arrays=entry,
                )
            )

        panel_bytes = n * panel_cols * np.dtype(np.float64).itemsize
        panel_x = create_segment(panel_bytes)
        panel_y = create_segment(panel_bytes)
        return cls(
            operator_segment, panel_x, panel_y, specs, n, panel_cols
        )

    # -- introspection ---------------------------------------------------------

    @property
    def specs(self) -> list[StripeSpec]:
        return list(self._specs)

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def panel_cols(self) -> int:
        return self._panel_cols

    def stripe_arrays(self, shard: int) -> SimpleNamespace:
        """Zero-copy CSR-array views over one shard's published stripe.

        The returned namespace quacks like the ``csr_array`` stripes
        :meth:`build` extracts (``indptr`` / ``indices`` / ``data`` /
        ``nnz``), which is exactly how a partial republish copies clean
        stripes from the live store without touching the graph.
        """
        spec = self._specs[shard]
        views = {}
        for part in ("indptr", "indices", "data"):
            off, count, dtype = spec.arrays[part]
            views[part] = np.ndarray(
                (count,), dtype=dtype, buffer=self._operator.buf, offset=off
            )
        return SimpleNamespace(nnz=spec.nnz, **views)

    @property
    def segment_names(self) -> tuple[str, str, str]:
        """(operator, X panel, Y panel) segment names."""
        return (
            self._operator.name, self._panel_x.name, self._panel_y.name,
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def nbytes(self) -> int:
        """Total bytes of all shared segments."""
        return (
            self._operator.size + self._panel_x.size + self._panel_y.size
        )

    # -- panel access (creator side) -------------------------------------------

    def panel(
        self, which: str, ncols: int, dtype=np.float64
    ) -> np.ndarray:
        """A ``(num_rows, ncols)`` view over the X or Y panel (``ncols ==
        0`` yields the 1-D SpMV layout).  Rows are packed tightly, so the
        view is C-contiguous for any ``ncols <= panel_cols``."""
        segment = self._panel_x if which == "x" else self._panel_y
        dtype = np.dtype(dtype)
        shape = (
            (self._num_rows,) if ncols == 0 else (self._num_rows, ncols)
        )
        needed = int(np.prod(shape)) * dtype.itemsize
        if needed > segment.size:
            raise ParameterError(
                f"panel holds {segment.size} bytes; {shape} {dtype} needs "
                f"{needed}"
            )
        return np.ndarray(shape, dtype=dtype, buffer=segment.buf)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in (self._operator, self._panel_x, self._panel_y):
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardStore(rows={self._num_rows}, shards={len(self._specs)}, "
            f"panel_cols={self._panel_cols}, closed={self._closed})"
        )
