"""The sharded propagation operator: a graph-protocol facade over worker
processes.

:class:`ShardedOperator` implements exactly the substrate surface the
iterate loops consume — ``num_nodes``, ``propagate``,
``propagate_decayed`` — but executes every product as a **distributed
row-stripe sweep**: the operand is scattered into the shared ``X``
panel, every :class:`~repro.sharding.ShardWorker` computes its own row
stripe of the result with a block-local :func:`repro.kernels.spmm`, and
the stripes are gathered back from ``Y`` and reduced (concatenated in
row order; the dangling-mass correction is applied router-side exactly
as the underlying substrate applies it).

Because each output row is produced by the same kernel arithmetic in the
same accumulation order as the single-process product, a sweep through
the sharded operator is **bitwise identical** to one through the source
graph — which is what lets an unmodified
:class:`~repro.method.PPRMethod` online phase (TPA's family sweep, CPI,
any power-iteration baseline) run against it and reproduce its serial
scores exactly.

Structural attributes the online phases consult (``transition``,
``adjacency``, ``out_neighbors``, ...) delegate to the source graph, so
sparse-iterate shortcuts keep working; only the propagation itself is
distributed.  Operands wider than the shared panels are processed in
column chunks — columns propagate independently, so chunking is bitwise
neutral.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Sequence

import numpy as np

from repro import kernels
from repro.exceptions import ParameterError, WorkerFailure
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.resilience.reaper import reap_orphan_segments
from repro.resilience.supervisor import (
    Supervisor,
    heartbeat_interval_ms,
    missed_beat_threshold,
)
from repro.sharding.plan import ShardPlan
from repro.sharding.store import DEFAULT_PANEL_COLS, ShardStore
from repro.sharding.worker import DEFAULT_STEP_TIMEOUT, ShardWorker

__all__ = ["ShardedOperator"]

#: Attempts one sweep chunk gets before its failure propagates: the
#: original pass plus recoveries.  Each recovery respawns every dead or
#: wedged worker, so repeated failures mean something systemic (a
#: poisoned stripe, a fault plan that kills every generation) and must
#: surface instead of looping.
_SWEEP_ATTEMPTS = 3


class _SweepFailed(Exception):
    """Internal: one step fan-out failed; carries every worker failure
    so recovery can treat died/timeout (respawn) and error (plain
    retry) members differently."""

    def __init__(self, failures: list[WorkerFailure]):
        self.failures = failures
        super().__init__(f"{len(failures)} worker(s) failed")


def _fold_worker_counters(deltas: dict, shard: int) -> None:
    """Fold counter increments a worker shipped on a step reply into
    the router-side registry, adding a ``shard`` label.

    Exporter and CLI then show shard-worker truth — counters earned in
    a child process are invisible otherwise (each process has its own
    registry).  Best-effort: a family name that already exists here
    with different labels must degrade to a dropped delta, never a
    failed sweep.
    """
    registry = obs_metrics.get_registry()
    for name, rows in deltas.items():
        for row in rows:
            try:
                labelnames, labelvalues, delta, help_text = row
                labels = dict(zip(labelnames, labelvalues))
                labels.setdefault("shard", str(shard))
                family = registry.counter(
                    name, help_text, tuple(labels)
                )
                family.labels(**labels).inc(float(delta))
            except Exception:  # noqa: BLE001 - observability, not serving
                continue


def _default_start_method() -> str:
    """``fork`` where safe, else ``spawn``.

    Numba's threading layers are not reliably fork-safe once the parent
    has run a parallel region (which preprocessing always has), so the
    compiled backend defaults to ``spawn`` — its on-disk JIT cache keeps
    the worker warm-up cheap.  The NumPy backend forks, which is fast
    and inherits nothing stateful.
    """
    methods = multiprocessing.get_all_start_methods()
    if kernels.get_backend() == "numba":
        return "spawn" if "spawn" in methods else methods[0]
    return "fork" if "fork" in methods else "spawn"


class ShardedOperator:
    """Distribute a substrate's propagation across shard worker processes.

    Parameters
    ----------
    graph:
        Source substrate: an in-memory :class:`~repro.graph.graph.Graph`
        or any duck-typed operator exposing ``transition_transpose`` or
        DiskGraph-style stripes.  Its rows are published into shared
        memory once, at construction.
    plan:
        The :class:`ShardPlan` assigning row stripes to workers.
    panel_cols:
        Column capacity of the shared iterate panels (wider operands are
        chunked).
    start_method:
        ``multiprocessing`` start method; default picks ``spawn`` under
        the Numba backend and ``fork`` otherwise.
    step_timeout:
        Seconds to wait for any worker's step reply before declaring the
        deployment wedged.
    warm:
        Run one throwaway sweep at construction so workers fault in
        their stripe mappings (and JIT-compile kernels) before traffic.
    pin:
        Pin each worker process to its own disjoint core set
        (:func:`repro.tune.plan_pinning`, NUMA-aware).  Degrades to
        unpinned with a :class:`~repro.tune.PinningWarning` when the
        platform or the allowed cpu set cannot support it; results are
        identical either way.
    supervise:
        Run a :class:`~repro.resilience.Supervisor` that heartbeats the
        workers between sweeps and respawns dead or unresponsive ones
        (default).  Sweeps recover from worker death regardless — the
        supervisor only shortens detection for failures that happen
        while the deployment is idle.
    heartbeat_ms:
        Supervisor heartbeat period; default ``REPRO_HEARTBEAT_MS``
        (1000 ms).
    """

    def __init__(
        self,
        graph,
        plan: ShardPlan,
        panel_cols: int = DEFAULT_PANEL_COLS,
        start_method: str | None = None,
        step_timeout: float = DEFAULT_STEP_TIMEOUT,
        warm: bool = True,
        pin: bool = False,
        supervise: bool = True,
        heartbeat_ms: float | None = None,
    ):
        if plan.num_rows != graph.num_nodes:
            raise ParameterError(
                f"plan covers {plan.num_rows} rows but the graph has "
                f"{graph.num_nodes}"
            )
        self._source = graph
        self._plan = plan
        self._n = int(graph.num_nodes)
        self._step_timeout = float(step_timeout)
        self._steps = 0
        self._republishes = 0
        self._respawns = 0
        self._sweep_retries = 0
        self._closed = False
        #: Called (no args) after every worker respawn — the Router
        #: hooks its metrics counter here.
        self.on_respawn = None
        # Serializes pipe traffic: the protocol is strict request-reply
        # per worker, so supervisor pings must never interleave with a
        # sweep's steps or a republish's remaps.
        self._comm_lock = threading.Lock()
        # Dangling data is copied out of the source so the correction
        # never touches it mid-sweep (and DiskGraph sources stay cold).
        # Mutable substrates are the exception: their dangling set moves
        # with the overlay, so it is re-read live each sweep.
        dangling = getattr(graph, "dangling_nodes", None)
        self._dangling = (
            np.array(dangling, dtype=np.int64)
            if dangling is not None and len(dangling)
            else np.empty(0, dtype=np.int64)
        )
        self._dangling_policy = getattr(graph, "dangling_policy", "error")
        # A mutable substrate (repro.dynamic.DynamicGraph or its permuted
        # view) publishes its immutable *base* into shared memory; the
        # overlay delta is folded in router-side each sweep, and a
        # compaction triggers a partial stripe republish (see _sweep).
        self._dynamic = callable(getattr(graph, "base_snapshot", None))
        if self._dynamic:
            self._published_epoch, publish_source = graph.base_snapshot()
        else:
            self._published_epoch, publish_source = 0, graph
        self._store = ShardStore.build(
            publish_source, plan, panel_cols=panel_cols
        )
        method = (
            start_method if start_method is not None
            else _default_start_method()
        )
        # Retained for respawns: a replacement worker must come up under
        # the same start method and pinning as the one it replaces.
        self._context = multiprocessing.get_context(method)
        self._pinning: list[tuple[int, ...]] | None = None
        if pin:
            from repro.tune.pinning import plan_pinning

            self._pinning = plan_pinning(plan.num_shards)
        self._generations = [0] * plan.num_shards
        self._heartbeat_ms = (
            heartbeat_interval_ms() if heartbeat_ms is None
            else float(heartbeat_ms)
        )
        # A worker that misses this many beats' worth of ping time is
        # declared hung; the sweep path uses the (generous) step timeout
        # instead, since a step legitimately takes compute time.
        self._ping_timeout = (
            self._heartbeat_ms * missed_beat_threshold() / 1e3
        )
        self._supervisor: Supervisor | None = None
        self._workers: list[ShardWorker] = []
        try:
            for index, spec in enumerate(self._store.specs):
                self._workers.append(self._spawn_worker(index, spec))
            for worker in self._workers:
                worker.wait_ready(self._step_timeout)
            if warm:
                # Undecayed probe: warms the stripe mappings and JIT
                # without leaving a needless decay-scaled data copy in
                # every worker's stripe cache (decay=None shares the
                # base arrays zero-copy).
                self.propagate(np.zeros((self._n, 1)))
            if supervise:
                self._supervisor = Supervisor(
                    self._probe_workers,
                    self._repair_worker,
                    name="repro-shard-supervisor",
                    interval_ms=self._heartbeat_ms,
                )
        except BaseException:
            self.close()
            raise

    # -- graph protocol --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def dangling_nodes(self) -> np.ndarray:
        return self._dangling

    @property
    def dangling_policy(self) -> str:
        return self._dangling_policy

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def source(self):
        """The substrate whose operator the shards serve."""
        return self._source

    @property
    def num_shards(self) -> int:
        return self._plan.num_shards

    @property
    def closed(self) -> bool:
        return self._closed

    def __getattr__(self, name: str):
        # Structural delegation (adjacency, transition, out_neighbors,
        # num_edges, ...): anything not about propagation belongs to the
        # source substrate.  Underscored names never delegate — a missing
        # internal is a bug here, not there.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._source, name)

    def propagate(self, x: np.ndarray) -> np.ndarray:
        """``Ã^T x`` via one distributed row-stripe sweep."""
        return self._sweep(x, decay=None, out=None)

    def propagate_decayed(
        self, x: np.ndarray, decay: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``decay · Ã^T x`` via one distributed row-stripe sweep.

        Workers fold ``decay`` into their stripe's value array exactly
        as the in-memory graph pre-scales its operator, so the result is
        bitwise identical to ``graph.propagate_decayed(x, decay)``.
        """
        return self._sweep(x, decay=float(decay), out=out)

    # -- the distributed sweep -------------------------------------------------

    def _sweep(
        self,
        x: np.ndarray,
        decay: float | None,
        out: np.ndarray | None,
    ) -> np.ndarray:
        if self._closed:
            raise RuntimeError("sharded operator is closed")
        x = np.asarray(x)
        if x.shape[0] != self._n or x.ndim not in (1, 2):
            raise ParameterError(
                f"operand shape {x.shape} does not match n={self._n}"
            )
        dtype = np.dtype(np.float32 if x.dtype == np.float32 else np.float64)
        if x.dtype != dtype:
            x = x.astype(dtype)
        if out is not None and (
            out.shape != x.shape
            or out.dtype != dtype
            or not out.flags.c_contiguous
            or np.shares_memory(out, x)
        ):
            out = None
        if out is None:
            out = np.empty(x.shape, dtype=dtype)

        backend = kernels.get_backend()
        # Dynamic sources may be compacted concurrently: each attempt
        # pins one published base epoch, computes against it, and retries
        # if a compaction republished the stripes mid-sweep — so a sweep
        # never mixes two bases' stripes in one result.
        for _attempt in range(4):
            published = self._published_epoch
            if self._dynamic:
                self._maybe_republish()
                published = self._published_epoch
            if x.ndim == 1:
                self._dispatch_chunk(x, out, 0, dtype, decay, backend)
            else:
                width = self._store.panel_cols
                for start in range(0, x.shape[1], width):
                    stop = min(start + width, x.shape[1])
                    # Column slices go to the panel copy as-is: np.copyto
                    # handles the strided source, so no staging copy here.
                    self._dispatch_chunk(
                        x[:, start:stop], out[:, start:stop],
                        stop - start, dtype, decay, backend,
                    )
            if self._dynamic and getattr(self._source, "dirty", False):
                # Fold the overlay delta router-side: workers only ever
                # see the immutable published base, so pending edits are
                # one dense-x-sparse product away, never a republish.
                self._source.apply_delta(x, decay, out)
            dangling, policy = self._live_dangling()
            if dangling.size and policy == "uniform":
                leaked = x[dangling].sum(axis=0)
                if np.any(leaked != 0.0):
                    if decay is None:
                        out += leaked / self._n
                    else:
                        out += (decay / self._n) * leaked
            if not self._dynamic or self._source.base_epoch == published:
                break
        return out

    def _live_dangling(self) -> tuple[np.ndarray, str]:
        """The dangling set the correction must use *now* — re-read from
        a mutable source (edits move it), the construction-time copy
        otherwise."""
        if not self._dynamic:
            return self._dangling, self._dangling_policy
        dangling = self._source.dangling_nodes
        if len(dangling):
            return (
                np.asarray(dangling, dtype=np.int64), self._dangling_policy
            )
        return np.empty(0, dtype=np.int64), self._dangling_policy

    # -- dynamic-source republish ------------------------------------------------

    def republish(self) -> bool:
        """Re-publish stripes if the source was compacted since the last
        publish; returns whether a republish happened.  Sweeps call this
        automatically — it is public for tests and eager callers."""
        if self._closed:
            raise RuntimeError("sharded operator is closed")
        if not self._dynamic:
            return False
        return self._maybe_republish()

    def _maybe_republish(self) -> bool:
        epoch, base = self._source.base_snapshot()
        if epoch == self._published_epoch:
            return False
        # Only stripes holding compaction-dirty rows are re-extracted;
        # clean stripes are copied segment-to-segment inside build().
        rows = self._source.dirty_rows_since(self._published_epoch)
        if rows is None:
            # Compaction history no longer reaches the published epoch —
            # rebuild everything.
            new_store = ShardStore.build(
                base, self._plan, panel_cols=self._store.panel_cols
            )
        else:
            begins = np.array(
                [
                    self._plan.shard_rows(shard)[0]
                    for shard in range(self._plan.num_shards)
                ],
                dtype=np.int64,
            )
            dirty_shards = np.unique(
                np.searchsorted(begins, rows, side="right") - 1
            )
            new_store = ShardStore.build(
                base,
                self._plan,
                panel_cols=self._store.panel_cols,
                previous=self._store,
                dirty_shards=dirty_shards.tolist(),
            )
        try:
            # Every worker rebinds (the panels moved with the store); the
            # old segments are only unlinked once all replies are in, so
            # no worker ever computes against a vanished mapping.  A
            # worker that dies mid-remap — or rebinds but drops its ack —
            # is respawned directly against the *new* store, so the swap
            # completes regardless.
            with self._comm_lock:
                for index, (worker, spec) in enumerate(
                    zip(self._workers, new_store.specs)
                ):
                    try:
                        worker.send_remap(
                            spec, new_store.segment_names, self._step_timeout
                        )
                    except WorkerFailure:
                        self._respawn_worker(
                            index, spec=spec,
                            segments=new_store.segment_names,
                        )
        except BaseException:
            new_store.close()
            raise
        old_store = self._store
        self._store = new_store
        self._published_epoch = epoch
        self._republishes += 1
        obs_metrics.get_registry().counter(
            "repro_republishes_total",
            "Stripe republishes after dynamic-graph compactions.",
        ).inc()
        old_store.close()
        return True

    def _dispatch_chunk(
        self,
        x: np.ndarray,
        out: np.ndarray,
        ncols: int,
        dtype: np.dtype,
        decay: float | None,
        backend: str,
    ) -> None:
        """Scatter one operand chunk, step every worker, gather stripes.

        Worker failures recover *inline*: dead or wedged workers are
        respawned against the live store and the whole chunk re-runs —
        every stripe is recomputed from the intact ``X`` panel, so a
        recovered chunk is bitwise identical to an undisturbed one.
        Column chunks are independent, so recovery never touches chunks
        already gathered.
        """
        context = obs_trace.current_context()
        with self._comm_lock:
            for attempt in range(_SWEEP_ATTEMPTS):
                panel_x = self._store.panel("x", ncols, dtype)
                panel_y = self._store.panel("y", ncols, dtype)
                np.copyto(panel_x, x)
                # Each attempt is its own "sweep" span: a retried chunk
                # shows up as attempt=2 under the same trace id, with the
                # respawned worker's child span hanging beneath it.
                sweep_span = (
                    obs_trace.Span(
                        "sweep",
                        context[0],
                        parent_id=context[1],
                        attempt=attempt + 1,
                        ncols=ncols,
                    )
                    if context is not None
                    else None
                )
                sweep_begin = time.perf_counter()
                try:
                    self._step_all(
                        ncols,
                        dtype,
                        decay,
                        backend,
                        trace=(
                            (context[0], sweep_span.span_id, attempt + 1)
                            if sweep_span is not None
                            else None
                        ),
                    )
                except _SweepFailed as wreck:
                    obs_trace.add_phase(
                        "sweep", time.perf_counter() - sweep_begin
                    )
                    if sweep_span is not None:
                        sweep_span.finish(outcome="retried")
                    if attempt + 1 >= _SWEEP_ATTEMPTS:
                        raise wreck.failures[0]
                    self._sweep_retries += 1
                    obs_metrics.get_registry().counter(
                        "repro_sweep_retries_total",
                        "Sweep chunks re-run after worker failures.",
                    ).inc()
                    self._recover(wreck.failures)
                    continue
                obs_trace.add_phase(
                    "sweep", time.perf_counter() - sweep_begin
                )
                if sweep_span is not None:
                    sweep_span.finish(outcome="ok")
                with obs_trace.phase("gather"):
                    np.copyto(out, panel_y)
                self._steps += 1
                return

    def _step_all(
        self,
        ncols: int,
        dtype: np.dtype,
        decay: float | None,
        backend: str,
        trace: tuple[str, str, int] | None = None,
    ) -> None:
        """One step fan-out; raises :class:`_SweepFailed` with every
        member failure (the fan-in drains all live workers even after
        one fails, so survivors are never left with un-awaited
        replies the sequence numbers would have to discard later).
        Step replies carry each worker's measured sweep seconds (fed to
        the ``repro_sweep_seconds`` histogram) and, for traced requests,
        the worker-side child spans to adopt."""
        failures: list[WorkerFailure] = []
        stepped: list[ShardWorker] = []
        for worker in self._workers:
            try:
                worker.send_step(ncols, dtype, decay, backend, trace=trace)
            except WorkerFailure as failure:
                failures.append(failure)
            else:
                stepped.append(worker)
        sweep_seconds = obs_metrics.get_registry().histogram(
            "repro_sweep_seconds",
            "Worker-measured per-shard sweep step time.",
            labelnames=("shard", "backend"),
        )
        for worker in stepped:
            try:
                detail = worker.wait_ok(self._step_timeout)
            except WorkerFailure as failure:
                failures.append(failure)
            else:
                if isinstance(detail, dict):
                    arrived_at = time.perf_counter()
                    sweep_seconds.labels(
                        shard=worker.shard, backend=backend
                    ).observe(float(detail.get("seconds", 0.0)))
                    if detail.get("spans"):
                        obs_trace.ingest_spans(
                            detail["spans"], rebase_end=arrived_at
                        )
                    if detail.get("profile"):
                        obs_profile.ingest(detail["profile"])
                    if detail.get("counters"):
                        _fold_worker_counters(
                            detail["counters"], worker.shard
                        )
        if failures:
            raise _SweepFailed(failures)

    def _recover(self, failures: list[WorkerFailure]) -> None:
        """Respawn every worker whose failure was process-level.

        ``error`` failures (the worker forwarded an exception) leave the
        process alone — it is healthy and mid-protocol — while ``died``
        and ``timeout`` (hung) workers are killed and replaced.  Called
        with the comm lock held.
        """
        for failure in failures:
            if failure.kind in ("died", "timeout", "init"):
                self._respawn_worker(failure.shard)

    def _respawn_worker(
        self,
        index: int,
        spec=None,
        segments: tuple[str, str, str] | None = None,
    ) -> None:
        """Replace worker ``index`` with a fresh process bound to the
        live store (or the explicit ``spec``/``segments`` of a store
        being swapped in).  Called with the comm lock held."""
        old = self._workers[index]
        old.kill(timeout=self._ping_timeout)
        self._generations[index] += 1
        worker = self._spawn_worker(
            index,
            self._store.specs[index] if spec is None else spec,
            segments=segments,
        )
        worker.wait_ready(self._step_timeout)
        self._workers[index] = worker
        self._respawns += 1
        obs_metrics.get_registry().counter(
            "repro_shard_respawns_total",
            "Shard worker processes replaced after death or hang.",
            labelnames=("shard",),
        ).labels(shard=index).inc()
        hook = self.on_respawn
        if hook is not None:
            hook()

    def _spawn_worker(
        self, index: int, spec, segments: tuple[str, str, str] | None = None
    ) -> ShardWorker:
        return ShardWorker(
            self._context,
            spec,
            self._store.segment_names if segments is None else segments,
            self._plan.num_shards,
            kernels.get_backend(),
            pin_cpus=(
                self._pinning[index] if self._pinning is not None else None
            ),
            generation=self._generations[index],
        )

    # -- supervision -------------------------------------------------------------

    def _probe_workers(self):
        """Unhealthy worker indices, probed without disturbing traffic.

        Process liveness is always checked (lock-free and cheap); the
        deeper pipe ``ping`` only runs when no sweep holds the comm lock
        — a busy deployment is its own liveness proof, and the sweep
        path detects failures faster than any heartbeat."""
        if self._closed:
            return ()
        dead = [
            index for index, worker in enumerate(self._workers)
            if not worker.alive
        ]
        if dead:
            return dead
        if not self._comm_lock.acquire(blocking=False):
            return ()
        try:
            if self._closed:
                return ()
            unhealthy = []
            for index, worker in enumerate(self._workers):
                try:
                    worker.ping(self._ping_timeout)
                except WorkerFailure:
                    unhealthy.append(index)
            return unhealthy
        finally:
            self._comm_lock.release()

    def _repair_worker(self, index: int) -> None:
        if self._closed:
            return
        with self._comm_lock:
            if self._closed:
                return
            worker = self._workers[index]
            if worker.alive:
                try:
                    # It may have been merely slow; a clean ping means
                    # the sequence numbers already absorbed the past.
                    worker.ping(self._ping_timeout)
                    return
                except WorkerFailure:
                    pass
            self._respawn_worker(index)

    # -- introspection / lifecycle ---------------------------------------------

    def shard_stats(self) -> dict:
        """Deployment shape plus sweep counters."""
        return {
            "num_shards": self.num_shards,
            "shard_rows": [
                list(self._plan.shard_rows(s)) for s in range(self.num_shards)
            ],
            "shard_nnz": [spec.nnz for spec in self._store.specs],
            "shared_bytes": self._store.nbytes(),
            "pinning": (
                [list(cpus) for cpus in self._pinning]
                if self._pinning is not None
                else None
            ),
            "steps": self._steps,
            "republishes": self._republishes,
            "published_epoch": self._published_epoch,
            "workers_alive": sum(
                1 for worker in self._workers if worker.alive
            ),
            "respawns": self._respawns,
            "sweep_retries": self._sweep_retries,
            "generations": list(self._generations),
            "supervisor": (
                self._supervisor.stats()
                if self._supervisor is not None
                else None
            ),
        }

    def workers(self) -> Sequence[ShardWorker]:
        return tuple(self._workers)

    def close(self) -> None:
        """Drain and stop every worker, unlink the shared segments, and
        sweep any orphans earlier crashes left behind (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # The supervisor goes first (and is joined): once it is down, no
        # repair can race the worker teardown below for the pipes.
        if self._supervisor is not None:
            try:
                self._supervisor.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for worker in self._workers:
            try:
                worker.stop()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._workers = []
        self._store.close()
        reap_orphan_segments()

    def __enter__(self) -> "ShardedOperator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedOperator(n={self._n}, shards={self.num_shards}, "
            f"closed={self._closed})"
        )
