"""The sharded Engine replica.

:func:`shard_engine` is the implementation behind
:meth:`repro.engine.Engine.shard`: like
:meth:`~repro.engine.Engine.replicate` it produces an Engine that shares
every read-only piece of the source (preprocessed arrays, graph,
reordering, score cache) while owning its own scratch — but instead of
serving on the calling thread, its method is re-bound to a
:class:`~repro.sharding.ShardedOperator`, so every iterate sweep of the
online phase fans out across shard worker processes.

The replica is a :class:`ShardedEngine`: a plain
:class:`~repro.engine.Engine` in every observable way (``batch`` /
``serve`` / ``stats`` behave identically, results are bitwise identical
to the source engine's), plus the lifecycle the worker pool needs
(:meth:`ShardedEngine.close`, context management, :attr:`shards`).
"""

from __future__ import annotations

import threading

from repro import kernels
from repro.engine import Engine
from repro.exceptions import ParameterError
from repro.sharding.operator import ShardedOperator
from repro.sharding.plan import ShardPlan
from repro.sharding.store import DEFAULT_PANEL_COLS
from repro.sharding.worker import DEFAULT_STEP_TIMEOUT

__all__ = ["ShardedEngine", "shard_engine"]


class ShardedEngine(Engine):
    """An Engine replica whose online phase runs across shard workers.

    Never constructed directly — call :meth:`repro.engine.Engine.shard`.
    Close it (or use it as a context manager) when serving ends: that
    stops the worker processes and unlinks the shared-memory segments.
    """

    _shards: ShardedOperator

    @property
    def shards(self) -> ShardedOperator:
        """The distributed operator (plan, workers, shared store)."""
        return self._shards

    def stats(self) -> dict:
        """Engine counters plus the shard deployment's
        (:meth:`ShardedOperator.shard_stats`) under ``"shards"``."""
        merged = super().stats()
        merged["shards"] = self._shards.shard_stats()
        return merged

    def close(self) -> None:
        """Stop the shard workers and release shared memory (idempotent)."""
        self._shards.close()
        Engine.close(self)

    @property
    def closed(self) -> bool:
        return self._shards.closed

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEngine(method={self._method.name}, "
            f"n={self.graph.num_nodes}, shards={self._shards.num_shards}, "
            f"closed={self.closed})"
        )


def shard_engine(
    engine: Engine,
    num_shards: int | None = None,
    plan: ShardPlan | None = None,
    panel_cols: int = DEFAULT_PANEL_COLS,
    start_method: str | None = None,
    step_timeout: float = DEFAULT_STEP_TIMEOUT,
    warm: bool = True,
    pin: bool = False,
    supervise: bool = True,
    heartbeat_ms: float | None = None,
) -> ShardedEngine:
    """Build the sharded replica of ``engine`` (see ``Engine.shard``)."""
    if num_shards is not None and num_shards < 1:
        raise ParameterError("num_shards must be at least 1")
    reordering = engine.reordering
    serving_graph = (
        reordering.graph if reordering is not None else engine.method.graph
    )
    if plan is None:
        shards = 2 if num_shards is None else num_shards
        if reordering is not None:
            plan = ShardPlan.from_slashburn(reordering, shards)
        else:
            plan = ShardPlan.uniform(serving_graph.num_nodes, shards)
    elif num_shards is not None and plan.num_shards != num_shards:
        # An explicit plan fixes the worker count; a contradicting
        # num_shards is almost certainly a bug.
        raise ParameterError(
            f"plan has {plan.num_shards} shards but num_shards="
            f"{num_shards} was requested"
        )
    operator = ShardedOperator(
        serving_graph,
        plan,
        panel_cols=panel_cols,
        start_method=start_method,
        step_timeout=step_timeout,
        warm=warm,
        pin=pin,
        supervise=supervise,
        heartbeat_ms=heartbeat_ms,
    )
    try:
        clone = object.__new__(ShardedEngine)
        clone._tune = getattr(engine, "_tune", None)
        clone._stream_block = engine._stream_block
        clone._memory_budget_bytes = engine._memory_budget_bytes
        clone._reordering = reordering
        clone._preprocess_seconds = 0.0
        clone._method = engine.method.replicate()
        # The re-binding that makes the replica sharded: the method's
        # online phase now sweeps through the distributed operator.
        clone._method._graph = operator
        # Ranking masks and result ids stay in the caller's structural
        # graph, exactly as on the source engine.
        clone._original_graph = engine.graph
        clone._score_cache = engine.cache
        clone._warm_start = engine._warm_start
        epoch_graph = engine.graph
        clone._epoch_graph = (
            epoch_graph
            if callable(getattr(epoch_graph, "epoch_token", None))
            else None
        )
        clone._synced_epoch_token = (
            clone._epoch_graph.epoch_token()
            if clone._epoch_graph is not None
            else None
        )
        clone._hits = 0
        clone._misses = 0
        clone._queries_served = 0
        clone._online_seconds = 0.0
        clone._workspace = kernels.Workspace()
        clone._lock = threading.RLock()
        clone._obs_name = f"engine-{id(clone):x}"
        clone._exporter = None
        clone._owns_exporter = False
        clone._shards = operator
        return clone
    except BaseException:  # pragma: no cover - construction safety
        operator.close()
        raise
