"""Sharded multi-process serving: partition-aligned workers over
shared-memory CSR.

PR 4's :mod:`repro.serving` scales queries across *threads* — replicas
of one Engine overlapping inside compiled kernels.  This package is the
next escape hatch: **processes**.  TPA's own structure (a SlashBurn hub
band plus near-block-diagonal community blocks, and per-block
contributions that are cheap to combine) is exactly the structure a
sharded deployment wants, so the operator's rows are cut on those
frontiers and each shard is owned by one worker process:

* :class:`ShardPlan` — contiguous row stripes cut on SlashBurn block
  starts (hub band pinned to shard 0) or
  :func:`~repro.graph.partition.partition_graph` community boundaries;
  :class:`~repro.kernels.RowTiling`-compatible;
* :class:`ShardStore` — publishes each shard's CSR row stripe plus the
  two iterate panels into ``multiprocessing.shared_memory``; workers map
  them zero-copy, and ``close()`` provably unlinks every segment;
* :class:`ShardWorker` — one process per shard running block-local
  :func:`repro.kernels.spmm` iterate sweep steps over its stripe;
* :class:`ShardedOperator` — the graph-protocol facade that scatters
  each iterate into the shared panel, steps every worker, and gathers
  the partial row stripes back (bitwise identical to the serial
  product);
* :class:`ShardedEngine` / :meth:`repro.engine.Engine.shard` — the
  multi-process sibling of :meth:`~repro.engine.Engine.replicate`;
* :class:`Router` — the serving front end: the same micro-batching
  :class:`~repro.serving.Scheduler` surface as
  :class:`~repro.serving.Server`, dispatching into the sharded engine
  and merging **exact** results (bitwise identical to a serial
  ``Engine.batch``).

Quickstart::

    from repro import QueryRequest, community_graph, create_method
    from repro.sharding import Router

    graph = community_graph(10_000, avg_degree=10, seed=7)
    with Router(create_method("tpa"), graph, num_shards=4,
                reorder="slashburn", cache_size=1024) as router:
        futures = [router.submit(QueryRequest(seed=s, k=10))
                   for s in range(100)]
        results = [f.result() for f in futures]

Benchmark with ``python -m repro shard-bench`` (same report schema as
``serve-bench``; see :mod:`repro.serving.metrics`).
"""

from repro.sharding.engine import ShardedEngine, shard_engine
from repro.sharding.operator import ShardedOperator
from repro.sharding.plan import ShardPlan
from repro.sharding.router import Router, partition_reordering
from repro.sharding.store import ShardStore, StripeSpec
from repro.sharding.worker import ShardWorker

__all__ = [
    "ShardPlan",
    "ShardStore",
    "StripeSpec",
    "ShardWorker",
    "ShardedOperator",
    "ShardedEngine",
    "shard_engine",
    "Router",
    "partition_reordering",
]
