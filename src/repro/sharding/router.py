"""The cross-shard router: the serving front end of a sharded deployment.

:class:`Router` is to :class:`~repro.sharding.ShardedEngine` what
:class:`~repro.serving.Server` is to Engine replicas — and it presents
the **identical client surface**: ``submit(QueryRequest) -> Future``,
blocking ``query``/``batch``, ``stats``, context-managed shutdown, the
same micro-batching :class:`~repro.serving.Scheduler` in front and the
same admission control (:class:`~repro.exceptions.ServerOverloaded`).
A scheduler front end written against ``Server`` drives a ``Router``
unchanged.

Behind the scheduler, the two diverge: where ``Server`` fans requests
*across* Engine replicas (thread concurrency, whole queries in
parallel), the Router runs one dispatcher thread whose sharded engine
fans every iterate sweep *within* a query batch across shard worker
processes — scattering seed blocks into the shared iterate panel,
gathering each shard's partial score stripes, and reducing them into
results **bitwise identical** to a serial ``Engine.batch`` over the
same requests.  Threads scale the paper's workload when queries are
plentiful and small; shards scale it when the graph (or the GIL) is the
bottleneck.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Iterable

import numpy as np

from repro.engine import Engine, QueryRequest, QueryResult
from repro.exceptions import ParameterError
from repro.graph.partition import partition_graph, partition_order
from repro.kernels.reorder import LocalityReordering
from repro.method import PPRMethod
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs.exporter import ObsExporter, start_exporter
from repro.resilience.retry import RetryPolicy
from repro.serving.cache import ScoreCache
from repro.serving.metrics import LatencyStats, front_stats
from repro.serving.scheduler import Scheduler
from repro.serving.server import dispatch_batch
from repro.sharding.plan import ShardPlan

__all__ = ["Router", "partition_reordering"]


def partition_reordering(
    graph,
    num_partitions: int,
    seed: int | np.random.Generator | None = 0,
    iterations: int = 8,
) -> LocalityReordering:
    """A community-aligned node ordering for partition-cut shards.

    Runs :func:`~repro.graph.partition.partition_graph` (explicitly
    seeded — every process derives the same labels), relabels the graph
    so each community is one contiguous row block, and wraps the result
    in a :class:`~repro.kernels.LocalityReordering` whose
    ``block_starts`` are the community frontiers — exactly what
    :meth:`ShardPlan.from_slashburn` packs shard cuts from, and what the
    Engine's ``reorder=`` parameter accepts.
    """
    labels = partition_graph(
        graph, num_partitions, iterations=iterations, seed=seed
    )
    permutation, starts = partition_order(labels)
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(permutation.size)
    return LocalityReordering(
        graph=graph.permute(permutation),
        to_reordered=inverse,
        to_original=permutation,
        num_hubs=0,
        block_starts=starts[starts > 0],
    )


class Router:
    """Micro-batching front end over one sharded Engine.

    Parameters
    ----------
    method:
        The RWR method to serve.  Preprocessed once (in the constructor,
        via the primary Engine), then shared read-only with the sharded
        replica — preprocessing is **not** redone for sharding.
    graph:
        Graph to preprocess for (optional when ``method`` already is).
    num_shards:
        Shard worker-process count.
    plan:
        Explicit :class:`ShardPlan`; the default cuts on the active
        reordering's frontiers (hub band to shard 0 under
        ``reorder="slashburn"``, community boundaries under
        ``reorder="partition"``) or into equal stripes.
    reorder:
        ``None``, ``"slashburn"`` (hub/spoke relabeling, as on the
        Engine), ``"partition"`` (community relabeling via
        :func:`partition_reordering`, cut-aligned with the default
        plan), or a ready :class:`~repro.kernels.LocalityReordering`.
    partition_seed:
        Seed of the ``"partition"`` reordering's label pass (explicit so
        every process agrees on the boundaries).
    max_batch / max_wait_ms / max_pending / cache_size:
        Exactly as on :class:`~repro.serving.Server`.
    stream_block / memory_budget_bytes:
        Forwarded to the primary :class:`~repro.engine.Engine`.
    panel_cols / start_method / step_timeout:
        Forwarded to :meth:`Engine.shard`.
    warm:
        Run one throwaway probe through the sharded engine before
        accepting traffic (default).
    tune:
        A :class:`repro.tune.TuneProfile`.  Supplies defaults for every
        knob the caller leaves at ``None`` — ``num_shards``,
        ``max_batch``, ``max_wait_ms`` — and flows into the primary
        Engine (block width, global tile/thread knobs).  Explicit
        arguments always win over the profile.
    pin:
        Pin each shard worker process to its own core set
        (:func:`repro.tune.plan_pinning`, NUMA-aware).  Default: pin
        exactly when a tuned profile was given; pass ``False`` to
        override.  Degrades to unpinned with a warning where the
        platform cannot pin; results are identical either way.
    supervise:
        Heartbeat the shard worker processes and respawn dead or hung
        ones between sweeps (default; period from ``REPRO_HEARTBEAT_MS``
        unless ``heartbeat_ms`` overrides it).  Respawns count in
        :meth:`stats` whether triggered by the supervisor or by in-sweep
        recovery.
    retry:
        A :class:`~repro.resilience.RetryPolicy` re-running a micro-batch
        whose dispatch failed retryably (worker death the sweep could
        not absorb).  Default: a stock policy — a sharded deployment
        should survive worker loss without clients noticing.  Pass
        ``None`` to fail batches on first error.
    obs_port:
        Attach a live :class:`~repro.obs.ObsExporter` (``/metrics``,
        ``/health``, ``/snapshot``, ``/traces``, ``/profile``) on this
        port (``0`` = ephemeral; read :attr:`exporter`).  Owned by the
        router and shut down by :meth:`close`.  Default ``None``
        consults ``REPRO_OBS_PORT`` and, when set, joins the shared
        per-process listener instead.  ``/health`` answers 503 while
        any shard worker is down or the scheduler is saturated.

    Examples
    --------
    >>> from repro import QueryRequest, community_graph, create_method
    >>> from repro.sharding import Router
    >>> graph = community_graph(2000, avg_degree=10, seed=7)
    >>> with Router(create_method("tpa"), graph, num_shards=2) as router:
    ...     result = router.query(0, k=10)
    """

    def __init__(
        self,
        method: PPRMethod,
        graph=None,
        *,
        num_shards: int | None = None,
        plan: ShardPlan | None = None,
        reorder=None,
        partition_seed: int = 0,
        max_batch: int | None = None,
        max_wait_ms: float | None = None,
        max_pending: int = 1024,
        cache_size: int = 0,
        stream_block: int | str | None = None,
        memory_budget_bytes: int | None = None,
        panel_cols: int | None = None,
        start_method: str | None = None,
        step_timeout: float | None = None,
        warm: bool = True,
        tune=None,
        pin: bool | None = None,
        supervise: bool = True,
        heartbeat_ms: float | None = None,
        retry: RetryPolicy | None = RetryPolicy(),
        obs_port: int | None = None,
    ):
        # Precedence: explicit argument > tuned profile > static default.
        if num_shards is None:
            if plan is not None:
                num_shards = plan.num_shards
            elif tune is not None:
                num_shards = int(tune.shards)
            else:
                num_shards = 2
        if max_batch is None:
            max_batch = int(tune.max_batch) if tune is not None else 32
        if max_wait_ms is None:
            max_wait_ms = float(tune.max_wait_ms) if tune is not None else 2.0
        if pin is None:
            pin = tune is not None
        if cache_size < 0:
            raise ParameterError("cache_size must be non-negative")
        # Cheap argument validation first, before any preprocessing.
        self._scheduler = Scheduler(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
        )
        if reorder == "partition":
            if graph is None:
                raise ParameterError(
                    "reorder='partition' requires the graph"
                )
            reorder = partition_reordering(
                graph, max(num_shards, 2), seed=partition_seed
            )
        self._cache = ScoreCache(cache_size) if cache_size else None
        self._primary = Engine(
            method,
            graph,
            reorder=reorder,
            stream_block=stream_block,
            memory_budget_bytes=memory_budget_bytes,
            cache=self._cache,
            tune=tune,
        )
        self._engine = self._primary.shard(
            num_shards=num_shards,
            plan=plan,
            panel_cols=panel_cols,
            start_method=start_method,
            step_timeout=step_timeout,
            warm=False,  # the operator probe runs inside shard()
            pin=pin,
            supervise=supervise,
            heartbeat_ms=heartbeat_ms,
        )
        if warm:
            # One serial probe through the full sharded online phase:
            # sizes the replica's retained workspace and JIT state before
            # traffic, without polluting stats or cache (serving space,
            # direct method call — same rationale as Server's warm pass).
            probe = np.zeros(1, dtype=np.int64)
            self._engine.method.query_many(probe)
        self._metrics = LatencyStats()
        self._retry = retry
        # Every respawn — supervisor- or sweep-triggered — lands in the
        # router's counters, so the serving report shows them.
        self._engine.shards.on_respawn = (
            lambda: self._metrics.count("respawns")
        )
        self._closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-shard-router", daemon=True
        )
        self._thread.start()
        # Operational surface: sampler (REPRO_PROFILE-gated no-op when
        # off) and HTTP exporter (obs_port= / REPRO_OBS_PORT).
        obs_profile.arm()
        self._obs_name = f"router-{id(self):x}"
        self._exporter, self._owns_exporter = start_exporter(obs_port)
        if self._exporter is not None:
            self._exporter.add_check(self._obs_name, self._health_check)
            self._exporter.add_collector(
                self._obs_name, self._refresh_shard_metrics
            )

    # -- introspection ---------------------------------------------------------

    @property
    def engine(self) -> Engine:
        """The sharded engine answering every batch."""
        return self._engine

    @property
    def num_shards(self) -> int:
        return self._engine.shards.num_shards

    @property
    def plan(self) -> ShardPlan:
        return self._engine.shards.plan

    @property
    def cache(self) -> ScoreCache | None:
        """The shared score cache, when ``cache_size > 0``."""
        return self._cache

    @property
    def metrics(self) -> LatencyStats:
        return self._metrics

    @property
    def exporter(self) -> ObsExporter | None:
        """The attached observability endpoint, if any."""
        return self._exporter

    def _health_check(self) -> dict:
        """Readiness for ``/health``: every shard worker alive and the
        scheduler not saturated.  Runs on exporter scrape threads, so it
        only reads cheap state — no locks, no pipes."""
        if self._closed:
            return {"ready": False, "reason": "closed"}
        shards = self._engine.shards
        workers_alive = sum(1 for w in shards.workers() if w.alive)
        pending = self._scheduler.pending
        max_pending = self._scheduler.max_pending
        saturated = bool(max_pending) and pending >= max_pending
        return {
            "ready": workers_alive == shards.num_shards and not saturated,
            "workers_alive": workers_alive,
            "num_shards": shards.num_shards,
            "pending": pending,
            "max_pending": max_pending,
            "backpressure": saturated,
        }

    def _refresh_shard_metrics(self) -> None:
        """Pre-scrape collector: per-shard respawn generations and the
        alive-worker count as gauges, fresh at render time."""
        if self._closed:
            return
        registry = obs_metrics.get_registry()
        stats = self._engine.shards.shard_stats()
        generation = registry.gauge(
            "repro_shard_generation",
            "Respawn generation of each shard's worker (0 = original).",
            labelnames=("shard",),
        )
        for shard, value in enumerate(stats.get("generations") or ()):
            generation.labels(shard=shard).set(float(value))
        registry.gauge(
            "repro_shard_workers_alive",
            "Shard worker processes currently alive.",
        ).set(float(stats.get("workers_alive", 0)))

    @property
    def pending(self) -> int:
        """Requests currently queued for dispatch."""
        return self._scheduler.pending

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """One merged view: latency snapshot, queue depth, engine
        counters, shard deployment shape, and cache counters.  Shaped
        by :func:`~repro.serving.metrics.front_stats` — the same keys
        :meth:`repro.serving.Server.stats` reports, so consumers never
        branch on which front end answered (``workers`` here is the
        single dispatcher thread; per-process placement lives under
        ``shards["pinning"]``)."""
        snap = self._engine.stats()
        shards = snap["shards"]
        return front_stats(
            self._metrics.snapshot(),
            workers=1,
            pending=self.pending,
            max_batch=self._scheduler.max_batch,
            max_wait_ms=self._scheduler.max_wait_ms,
            overloads=self._scheduler.overloads,
            pinning=shards.get("pinning"),
            queries_served=snap["queries_served"],
            online_seconds=snap["online_seconds"],
            cache_stats=(
                self._cache.stats() if self._cache is not None else None
            ),
            shard_stats=shards,
        )

    # -- the client surface (identical to Server's) ----------------------------

    def submit(self, request: QueryRequest) -> "Future[QueryResult]":
        """Queue one request; returns the future its result lands on.

        Same contract as :meth:`repro.serving.Server.submit`: validation
        happens here on the submitting thread,
        :class:`~repro.exceptions.ServerOverloaded` signals backpressure,
        :class:`RuntimeError` follows :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("router is closed")
        if request.k is not None and request.k < 1:
            raise ParameterError("k must be at least 1")
        self._engine.method.validate_seed(request.seed)
        return self._scheduler.submit(request)

    def query(
        self,
        seed: int,
        k: int | None = None,
        exclude_seed: bool = True,
        exclude_neighbors: bool = False,
        timeout: float | None = None,
    ) -> QueryResult:
        """Blocking convenience wrapper: submit one request, wait."""
        future = self.submit(
            QueryRequest(
                seed=seed, k=k, exclude_seed=exclude_seed,
                exclude_neighbors=exclude_neighbors,
            )
        )
        return future.result(timeout)

    def batch(
        self,
        requests: Iterable[QueryRequest],
        timeout: float | None = None,
    ) -> list[QueryResult]:
        """Submit a request sequence and wait for every result, in
        request order — semantics identical to
        :meth:`repro.serving.Server.batch` (and results bitwise
        identical to a serial ``Engine.batch``)."""
        futures = []
        try:
            for request in requests:
                futures.append(self.submit(request))
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return [future.result(timeout) for future in futures]

    # -- lifecycle -------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down: stop admitting, drain (or cancel) the queue, join
        the dispatcher, stop shard workers, unlink shared memory.

        Idempotent.  After this returns, no worker processes remain and
        no ``/dev/shm`` segment of this deployment exists.
        """
        if self._closed:
            return
        self._closed = True
        if not drain:
            self._scheduler.cancel_pending()
        self._scheduler.close()
        self._thread.join(timeout)
        self._engine.close()
        exporter, self._exporter = self._exporter, None
        if exporter is not None:
            exporter.remove_check(self._obs_name)
            exporter.remove_collector(self._obs_name)
            if self._owns_exporter:
                exporter.close()

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the dispatcher --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        """One thread drains the scheduler into the sharded engine.

        A single dispatcher is the right shape here: the sharded engine
        already parallelizes *inside* each batch (every sweep fans out
        across the worker processes), so a second in-flight batch would
        only contend for the same shard pipes.
        """
        while True:
            batch = self._scheduler.next_batch()
            if batch is None:
                return  # closed and drained
            dispatch_batch(
                self._engine, self._metrics, batch, retry=self._retry
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Router(method={self._engine.method.name}, "
            f"shards={self.num_shards}, pending={self.pending}, "
            f"closed={self._closed})"
        )
