"""Partition-aligned row shards of the propagation operator.

A :class:`ShardPlan` cuts the rows of ``Ã^T`` into contiguous stripes,
one per worker process.  Where a :class:`~repro.kernels.tiling.RowTiling`
schedules tiles *within* one process, a plan assigns row ownership
*across* processes — and it cuts on the same natural frontiers:

* under a SlashBurn ordering, the hub band is pinned to shard 0 and the
  spoke shards close on community-block starts
  (:meth:`ShardPlan.from_slashburn`), so a shard's gathers stay within
  the hot hub prefix plus its own blocks;
* under a :func:`~repro.graph.partition.partition_graph` community
  ordering, shards close on partition boundaries
  (:meth:`ShardPlan.from_block_starts` over
  :func:`~repro.graph.partition.partition_order` starts);
* with no structure, :meth:`ShardPlan.uniform` cuts equal stripes.

Plans are :class:`RowTiling`-compatible: :meth:`ShardPlan.row_tiling`
subdivides each shard into execution tiles whose boundaries include
every shard cut, so a worker's tiled sweep never straddles two shards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.kernels.tiling import RowTiling, row_tiling, tile_rows

__all__ = ["ShardPlan"]


def _pack_on_cuts(
    start: int, end: int, num_shards: int, cuts: np.ndarray | None
) -> list[int]:
    """Boundaries splitting ``[start, end)`` into ``num_shards`` stripes
    of near-equal height, each closed on one of ``cuts`` when a candidate
    lies near the ideal split point (otherwise the ideal point itself —
    an oversized block is split rather than starving a shard)."""
    bounds: list[int] = []
    position = start
    for shard in range(num_shards - 1):
        remaining_shards = num_shards - shard
        ideal = position + max(1, round((end - position) / remaining_shards))
        ideal = min(ideal, end - (remaining_shards - 1))
        cut = ideal
        if cuts is not None and cuts.size:
            candidates = cuts[(cuts > position) & (cuts < end)]
            if candidates.size:
                nearest = int(
                    candidates[np.argmin(np.abs(candidates - ideal))]
                )
                # Snap to the frontier unless that would leave this shard
                # (or the remainder) with less than half its fair share.
                fair = (end - position) / remaining_shards
                if abs(nearest - ideal) <= fair / 2:
                    cut = nearest
        cut = int(min(max(cut, position + 1), end - (remaining_shards - 1)))
        bounds.append(cut)
        position = cut
    bounds.append(end)
    return bounds


@dataclass(frozen=True)
class ShardPlan:
    """A partition of the operator's row range into per-worker stripes.

    Attributes
    ----------
    boundaries:
        ``int64`` array ``[0, b_1, ..., n]``; shard ``s`` owns rows
        ``boundaries[s]..boundaries[s+1]-1``.  Strictly increasing.
    num_hubs:
        Size of the SlashBurn hub prefix the plan was built around
        (``0`` when unordered).  When non-zero, shard 0 always contains
        the whole hub band — the rows every other row gathers from.
    """

    boundaries: np.ndarray
    num_hubs: int = 0

    def __post_init__(self) -> None:
        bounds = np.ascontiguousarray(self.boundaries, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2 or bounds[0] != 0:
            raise ParameterError(
                "shard boundaries must be a 1-D int array starting at 0"
            )
        if not (np.diff(bounds) > 0).all():
            raise ParameterError("shard boundaries must be strictly increasing")
        if not 0 <= self.num_hubs <= int(bounds[-1]):
            raise ParameterError("num_hubs must lie within the row range")
        if self.num_hubs and bounds.size > 2 and int(bounds[1]) < self.num_hubs:
            raise ParameterError(
                "the hub band must be pinned to shard 0 "
                f"(first cut {int(bounds[1])} < num_hubs {self.num_hubs})"
            )
        object.__setattr__(self, "boundaries", bounds)

    # -- introspection ---------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return int(self.boundaries[-1])

    @property
    def num_shards(self) -> int:
        return int(self.boundaries.size - 1)

    def shard_rows(self, shard: int) -> tuple[int, int]:
        """Row range ``[begin, end)`` owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ParameterError(
                f"shard index must lie in [0, {self.num_shards - 1}]"
            )
        return int(self.boundaries[shard]), int(self.boundaries[shard + 1])

    def row_tiling(self, tile_height: int | None = None) -> RowTiling:
        """An execution :class:`RowTiling` compatible with this plan.

        Every shard boundary is a tile boundary (tiles never straddle
        shards), the hub band keeps its pinned frontier, and each shard's
        interior is chunked at the configured tile height — so a worker
        can run its stripe through the tiled SpMM schedule unchanged.
        """
        cuts = [np.asarray([0], dtype=np.int64)]
        for shard in range(self.num_shards):
            begin, end = self.shard_rows(shard)
            hubs = max(0, min(self.num_hubs, end) - begin) if begin < self.num_hubs else 0
            inner = row_tiling(
                end - begin, num_hubs=hubs, tile_height=tile_height
            )
            cuts.append(inner.boundaries[1:] + begin)
        return RowTiling(
            boundaries=np.unique(np.concatenate(cuts)),
            num_hubs=self.num_hubs,
            tile_height=tile_height if tile_height is not None else tile_rows(),
        )

    # -- builders --------------------------------------------------------------

    @classmethod
    def uniform(cls, num_rows: int, num_shards: int) -> "ShardPlan":
        """Equal-height stripes with no structural alignment."""
        _validate_counts(num_rows, num_shards)
        bounds = [0] + _pack_on_cuts(0, num_rows, num_shards, None)
        return cls(boundaries=np.asarray(bounds, dtype=np.int64))

    @classmethod
    def from_block_starts(
        cls,
        num_rows: int,
        num_shards: int,
        block_starts: np.ndarray,
        num_hubs: int = 0,
    ) -> "ShardPlan":
        """Shards closed on community-block frontiers.

        ``block_starts`` lists the first row of each community block
        (e.g. :func:`repro.graph.partition.partition_order` starts, or
        SlashBurn block starts); shard cuts snap to the nearest frontier
        around each equal split point.  With ``num_hubs > 0`` the hub
        band is pinned to shard 0 and only the spoke rows are packed
        across the remaining shards.
        """
        _validate_counts(num_rows, num_shards)
        if not 0 <= num_hubs <= num_rows:
            raise ParameterError("num_hubs must lie in [0, num_rows]")
        cuts = np.unique(np.asarray(block_starts, dtype=np.int64))
        cuts = cuts[(cuts > num_hubs) & (cuts < num_rows)]
        if num_hubs == 0 or num_shards == 1:
            bounds = [0] + _pack_on_cuts(0, num_rows, num_shards, cuts)
            return cls(
                boundaries=np.asarray(bounds, dtype=np.int64),
                num_hubs=num_hubs,
            )
        if num_shards > num_rows - num_hubs + 1:
            raise ParameterError(
                f"cannot cut {num_rows - num_hubs} spoke rows into "
                f"{num_shards - 1} shards"
            )
        # Shard 0 = the hub band (plus its share of spoke rows when the
        # band is large); spokes pack into the remaining shards on block
        # frontiers.
        first_cut = max(
            num_hubs,
            _pack_on_cuts(0, num_rows, num_shards, cuts)[0],
        )
        first_cut = min(first_cut, num_rows - (num_shards - 1))
        bounds = [0, first_cut] + _pack_on_cuts(
            first_cut, num_rows, num_shards - 1, cuts
        )
        return cls(
            boundaries=np.asarray(bounds, dtype=np.int64), num_hubs=num_hubs
        )

    @classmethod
    def from_slashburn(cls, ordering, num_shards: int) -> "ShardPlan":
        """A plan aligned to a SlashBurn ordering: hub band pinned to
        shard 0, spoke shards closed on block starts.

        ``ordering`` is a
        :class:`~repro.kernels.reorder.LocalityReordering` (what
        ``Engine(reorder="slashburn")`` carries) or a
        :class:`~repro.graph.slashburn.SlashBurnOrdering`.
        """
        num_hubs = int(ordering.num_hubs)
        if hasattr(ordering, "block_boundaries"):  # SlashBurnOrdering
            starts = ordering.block_boundaries()
            num_rows = int(ordering.permutation.size)
        else:  # LocalityReordering
            starts = np.asarray(ordering.block_starts, dtype=np.int64)
            num_rows = int(ordering.graph.num_nodes)
        if num_hubs >= num_rows:
            # Degenerate ordering (everything a hub): nothing to pin,
            # fall back to plain equal stripes.
            return cls.uniform(num_rows, num_shards)
        return cls.from_block_starts(
            num_rows, num_shards, starts, num_hubs=num_hubs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardPlan(rows={self.num_rows}, shards={self.num_shards}, "
            f"hubs={self.num_hubs})"
        )


def _validate_counts(num_rows: int, num_shards: int) -> None:
    if num_rows < 1:
        raise ParameterError("a shard plan needs at least one row")
    if num_shards < 1:
        raise ParameterError("num_shards must be at least 1")
    if num_shards > num_rows:
        raise ParameterError("num_shards cannot exceed the row count")
