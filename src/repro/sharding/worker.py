"""The shard worker process and its parent-side handle.

Each :class:`ShardWorker` is one OS process owning one row stripe of the
propagation operator.  Its loop is deliberately tiny: wait for a command
on its pipe, run one **block-local iterate sweep step** — a
:func:`repro.kernels.spmm` (or ``spmv``) of its stripe against the full
shared iterate panel ``X``, written into its own row slice of ``Y`` —
and reply.  All heavy state (the CSR stripe, the panels) lives in shared
memory mapped zero-copy; the pipes carry only small command tuples, so a
step costs one roundtrip per worker regardless of graph size.

The protocol is strict request-reply with **sequence numbers**: every
command carries a monotonically increasing ``seq`` the worker echoes in
its reply, and the parent discards replies older than the one it awaits.
That is what makes recovery sound — after a timed-out step is retried, a
late reply from the slow (but alive) worker cannot be mistaken for the
retry's answer, so a recovered sweep stays bitwise identical.

Failures surface as typed :class:`~repro.exceptions.WorkerFailure`
(``died`` / ``timeout`` / ``error`` / ``init``), which the sweep retry
and the :class:`~repro.resilience.Supervisor` use to decide between
respawn (process-level failure) and plain retry (step-level error).

Workers pre-scale their stripe's value array by the commanded decay
(scaled then cast, exactly as :meth:`Graph._operator_for` builds the
in-memory decayed operator) and cache the scaled copy per
``(decay, dtype)``, so steady serving touches only the SpMM itself.
Because every output row is computed with the same per-row arithmetic
and accumulation order as the single-process kernels, the sharded sweep
is **bitwise identical** to the serial one — the property the router's
equivalence tests pin down.

Each worker stamps its process with
:func:`repro.kernels.set_shard_annotation`, registers itself with the
fault-injection harness (scope ``shard<i>``, its respawn generation),
and honors the :mod:`repro.resilience.faults` injection points the
chaos suite drives.
"""

from __future__ import annotations

import signal
import time
import traceback
from multiprocessing.connection import Connection

import numpy as np
import scipy.sparse as sp

from repro.exceptions import WorkerFailure
from repro.obs.logs import get_logger
from repro.sharding.store import StripeSpec, attach_segment

__all__ = ["ShardWorker", "shard_worker_main"]

_log = get_logger("sharding.worker")

#: Default seconds the parent waits for one step reply before declaring
#: the worker hung.  Generous: a cold Numba worker may JIT-compile its
#: kernels inside the first step.
DEFAULT_STEP_TIMEOUT = 300.0


def _counter_deltas(registry, shipped: dict) -> dict:
    """Counter increments earned since the last call.

    ``shipped`` caches the last-shipped value per ``(family, labelnames,
    labelvalues)``; seeding it once right after fork means values the
    child *inherited* from the parent's registry never ship.  The format
    is pipe-friendly: ``{name: [[labelnames, labelvalues, delta, help]]}``.
    """
    deltas: dict = {}
    for name, family in registry.families().items():
        if family.kind != "counter":
            continue
        labelnames = family.labelnames
        for key, child in family.children().items():
            token = (name, labelnames, key)
            value = float(child.value)
            delta = value - shipped.get(token, 0.0)
            if delta > 0:
                shipped[token] = value
                deltas.setdefault(name, []).append(
                    [list(labelnames), list(key), delta, family.help]
                )
    return deltas


def _spec_payload(spec: StripeSpec) -> dict:
    """The picklable recipe a child needs to rebuild its stripe views."""
    return {
        "shard": spec.shard,
        "row_begin": spec.row_begin,
        "row_end": spec.row_end,
        "num_cols": spec.num_cols,
        "nnz": spec.nnz,
        "indptr_offset": spec.indptr_offset,
        "indices_offset": spec.indices_offset,
        "data_offset": spec.data_offset,
        "index_dtype": spec.index_dtype,
    }


def shard_worker_main(
    payload: dict,
    segments: tuple[str, str, str],
    num_shards: int,
    backend: str,
    conn: Connection,
    pin_cpus: tuple[int, ...] | None = None,
    generation: int = 0,
) -> None:
    """Child-process entry: serve step commands until told to stop.

    Importable at module level so it works under both the ``fork`` and
    ``spawn`` start methods.  ``pin_cpus`` (from a
    :func:`repro.tune.plan_pinning` plan) pins this worker to its own
    core set and caps its kernel threads to that set's size — placement
    only, never results: a failed pin warns and the worker serves
    unpinned.  ``generation`` counts respawns of this shard's worker
    (0 = original), so targeted fault clauses can hit exactly one
    incarnation.
    """
    from repro import kernels
    from repro.obs import metrics as obs_metrics
    from repro.obs import profile as obs_profile
    from repro.resilience import faults

    # A forked child inherits the parent's resolved fault plan and its
    # visit counters — both wrong here.  Re-resolve from the environment
    # with fresh counters, under this worker's scope.  Same hygiene for
    # the profiler: the inherited sampler object has no live thread and
    # the inherited samples are the parent's, not ours.
    faults.reset_fault_plan()
    obs_profile.reset_after_fork()

    # Mutable binding state: the "remap" command (a partial republish
    # after a dynamic-graph compaction) swaps the worker onto a new
    # store's segments mid-serve, so everything derived from the mapped
    # buffers lives here rather than in loop-invariant locals.
    state: dict = {"segments": (), "views": (), "cache": {}}

    def unbind() -> None:
        # Views into the buffers must die before the mappings close.
        state["views"] = ()
        state["cache"] = {}
        for segment in state["segments"]:
            try:
                segment.close()
            except Exception:  # pragma: no cover - interpreter exit
                pass
        state["segments"] = ()

    def bind(spec: dict, names: tuple) -> None:
        unbind()
        # Workers inherit the creator's resource tracker (fork and spawn
        # alike), so attaching must not disturb its bookkeeping — see
        # attach_segment.
        operator_shm = attach_segment(names[0])
        panel_x = attach_segment(names[1])
        panel_y = attach_segment(names[2])
        state["segments"] = (operator_shm, panel_x, panel_y)
        rows = spec["row_end"] - spec["row_begin"]
        indptr = np.ndarray(
            (rows + 1,), dtype=spec["index_dtype"],
            buffer=operator_shm.buf, offset=spec["indptr_offset"],
        )
        indices = np.ndarray(
            (spec["nnz"],), dtype=spec["index_dtype"],
            buffer=operator_shm.buf, offset=spec["indices_offset"],
        )
        base_data = np.ndarray(
            (spec["nnz"],), dtype=np.float64,
            buffer=operator_shm.buf, offset=spec["data_offset"],
        )
        state["views"] = (indptr, indices, base_data)
        # Fault the stripe's pages in from this worker (first-touch /
        # warm): the serving loop then never stalls on a cold mapping,
        # and on a pinned worker the pages are pulled toward its node.
        from repro.tune.pinning import first_touch

        first_touch(indptr, indices, base_data)
        n = spec["num_cols"]
        cache: dict = {}
        state["cache"] = cache

        def stripe_for(decay: float | None, dtype: np.dtype) -> sp.csr_array:
            key = (decay, dtype.name)
            stripe = cache.get(key)
            if stripe is None:
                stripe = sp.csr_array(
                    (kernels.scaled_values(base_data, decay, dtype),
                     indices, indptr),
                    shape=(rows, n),
                )
                cache[key] = stripe
            return stripe

        state["stripe_for"] = stripe_for
        state["n"] = n
        state["begin"] = spec["row_begin"]
        state["end"] = spec["row_end"]
        state["panel_x"] = panel_x
        state["panel_y"] = panel_y

    try:
        shard = payload["shard"]
        kernels.set_shard_annotation(f"{shard}/{num_shards}")
        faults.set_scope(f"shard{shard}", generation)
        kernels.set_backend(backend)
        # Armed like REPRO_FAULTS: re-read from the (inherited)
        # environment, sampler started in *this* process.
        obs_profile.arm()
        registry = obs_metrics.get_registry()
        steps_total = registry.counter(
            "repro_worker_steps_total",
            help_text="Sweep steps completed inside shard worker processes",
            labelnames=("shard",),
        ).labels(shard=shard)
        step_seconds_total = registry.counter(
            "repro_worker_step_seconds_total",
            help_text="Cumulative in-worker sweep seconds",
            labelnames=("shard",),
        ).labels(shard=shard)
        # Baseline the shipping cache on whatever counter values the
        # fork carried over, so only this process's increments ship.
        shipped: dict = {}
        _counter_deltas(registry, shipped)
        if pin_cpus:
            from repro.tune.pinning import pin_current

            if pin_current(pin_cpus):
                # The kernels should not oversubscribe the worker's own
                # cores; thread count never changes results (bitwise
                # contract), only placement.
                kernels.set_num_threads(len(pin_cpus))
        bind(payload, segments)
        conn.send(("ready", 0, shard))
        while True:
            try:
                command = conn.recv()
            except EOFError:  # parent vanished: exit quietly
                return
            verb = command[0]
            seq = (
                command[1]
                if len(command) > 1 and isinstance(command[1], int)
                else 0
            )
            try:
                if verb == "stop":
                    hang = faults.fire("hang_on_stop")
                    if hang is not None:
                        # A worker wedged so hard even SIGTERM is lost:
                        # the parent's stop() must escalate to SIGKILL.
                        signal.signal(signal.SIGTERM, signal.SIG_IGN)
                        time.sleep(float(hang.get("seconds", 60)))
                    conn.send(("ok", seq, None))
                    return
                if verb == "ping":
                    conn.send(("ok", seq, shard))
                    continue
                if verb == "remap":
                    _, _, new_payload, new_segments = command
                    bind(new_payload, new_segments)
                    if faults.fire("drop_remap_ack") is not None:
                        # Rebound but silent: the parent times out and
                        # must respawn against the new store.
                        continue
                    conn.send(("ok", seq, shard))
                    continue
                if verb != "step":
                    raise ValueError(f"unknown shard command {verb!r}")
                if faults.fire("poison_batch") is not None:
                    raise RuntimeError("injected fault: poisoned batch")
                faults.fire_kill("kill_before_sweep")
                # Older 6-tuple steps (no trace element) remain valid:
                # respawn during a rolling upgrade must not wedge on an
                # unpacking mismatch.
                _, _, ncols, dtype_name, decay, want_backend = command[:6]
                trace = command[6] if len(command) > 6 else None
                if want_backend != kernels.get_backend():
                    kernels.set_backend(want_backend)
                dtype = np.dtype(dtype_name)
                stripe = state["stripe_for"](decay, dtype)
                n = state["n"]
                begin, end = state["begin"], state["end"]
                panel_x, panel_y = state["panel_x"], state["panel_y"]
                step_begin = time.perf_counter()
                if ncols == 0:
                    x = np.ndarray((n,), dtype=dtype, buffer=panel_x.buf)
                    y = np.ndarray((n,), dtype=dtype, buffer=panel_y.buf)
                    kernels.spmv(stripe, x, out=y[begin:end])
                else:
                    x = np.ndarray(
                        (n, ncols), dtype=dtype, buffer=panel_x.buf
                    )
                    y = np.ndarray(
                        (n, ncols), dtype=dtype, buffer=panel_y.buf
                    )
                    kernels.spmm(stripe, x, out=y[begin:end])
                step_end = time.perf_counter()
                steps_total.inc()
                step_seconds_total.inc(step_end - step_begin)
                faults.fire_kill("kill_mid_sweep")
                faults.fire_delay("delay_reply")
                # The reply detail carries the worker-side measurement
                # (and, when the step was traced, a child span for the
                # parent to adopt) back across the pipe — the only way
                # a trace can see inside another process.  Profiler
                # samples and counter increments ride the same reply:
                # no second channel, and the parent's merged view
                # converges on worker truth one step behind at worst.
                detail: dict = {"seconds": step_end - step_begin}
                if obs_profile.running():
                    folded = obs_profile.drain_local()
                    if folded:
                        detail["profile"] = folded
                if obs_metrics._enabled:
                    counter_deltas = _counter_deltas(registry, shipped)
                    if counter_deltas:
                        detail["counters"] = counter_deltas
                if trace is not None:
                    trace_id, parent_span_id, attempt = trace
                    from repro.obs import trace as obs_trace

                    span = obs_trace.Span(
                        "sweep_shard",
                        trace_id,
                        parent_id=parent_span_id,
                        begin=step_begin,
                        shard=shard,
                        generation=generation,
                        attempt=attempt,
                    )
                    span.end = step_end
                    detail["spans"] = [span.to_dict()]
                conn.send(("ok", seq, detail))
                faults.fire_kill("kill_after_sweep")
            except Exception:  # noqa: BLE001 - forwarded to the router
                conn.send(("err", seq, traceback.format_exc()))
    finally:
        unbind()
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


class ShardWorker:
    """Parent-side handle of one shard worker process.

    Parameters
    ----------
    context:
        The ``multiprocessing`` context to spawn under.
    spec:
        The worker's stripe (from :attr:`ShardStore.specs`).
    segments:
        The store's ``(operator, X, Y)`` segment names.
    num_shards:
        Total worker count (for the shard annotation).
    backend:
        Kernel backend name the worker starts on.
    pin_cpus:
        Optional cpu ids this worker pins itself to at startup (one
        entry of a :func:`repro.tune.plan_pinning` plan).
    generation:
        Respawn generation of this shard's worker (0 = spawned at
        deployment construction; each respawn increments it).
    """

    def __init__(
        self,
        context,
        spec: StripeSpec,
        segments: tuple[str, str, str],
        num_shards: int,
        backend: str,
        pin_cpus: tuple[int, ...] | None = None,
        generation: int = 0,
    ):
        self.spec = spec
        self.pin_cpus = pin_cpus
        self.generation = int(generation)
        payload = _spec_payload(spec)
        parent_conn, child_conn = context.Pipe()
        self._conn = parent_conn
        self._seq = 0
        self._awaiting = 0
        self._process = context.Process(
            target=shard_worker_main,
            args=(
                payload, segments, num_shards, backend, child_conn,
                pin_cpus, self.generation,
            ),
            name=f"repro-shard-{spec.shard}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    @property
    def shard(self) -> int:
        return self.spec.shard

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    @property
    def pid(self) -> int | None:
        return self._process.pid

    def _next_seq(self) -> int:
        self._seq += 1
        self._awaiting = self._seq
        return self._seq

    def _send(self, command: tuple) -> None:
        try:
            self._conn.send(command)
        except (BrokenPipeError, OSError) as error:
            raise WorkerFailure(
                self.shard, "died", f"send failed: {error}"
            ) from error

    def wait_ready(self, timeout: float) -> None:
        reply = self._receive(timeout)
        if reply[0] != "ready":
            raise WorkerFailure(
                self.shard, "init", f"failed to initialize: {reply[2]}"
            )

    def send_step(
        self,
        ncols: int,
        dtype: np.dtype,
        decay: float | None,
        backend: str,
        trace: tuple[str, str, int] | None = None,
    ) -> None:
        """Command one sweep step.  ``trace`` is the optional
        ``(trace_id, parent_span_id, attempt)`` triple of a traced
        request — the worker answers with a child span to adopt."""
        self._send(
            (
                "step", self._next_seq(), ncols, np.dtype(dtype).name,
                decay, backend, trace,
            )
        )

    def send_remap(
        self, spec: StripeSpec, segments: tuple[str, str, str],
        timeout: float,
    ) -> None:
        """Rebind the worker onto a republished store's segments.

        The worker drops its stripe views and scaled-value cache,
        detaches the old segments, and attaches the new ones; the reply
        is awaited so the caller knows the old store can be closed.
        """
        self.spec = spec
        self._send(("remap", self._next_seq(), _spec_payload(spec), segments))
        self.wait_ok(timeout)

    def ping(self, timeout: float) -> None:
        self._send(("ping", self._next_seq()))
        self.wait_ok(timeout)

    def wait_ok(self, timeout: float):
        """Await the reply to the last command sent, discarding stale
        replies (answers to commands a recovery pass abandoned).
        Returns the reply's detail payload (step timing + shipped
        spans for step commands, the shard id for ping/remap)."""
        deadline = time.perf_counter() + timeout
        while True:
            remaining = max(deadline - time.perf_counter(), 0.0)
            reply = self._receive(remaining)
            status, seq, detail = reply[0], reply[1], reply[2]
            if seq < self._awaiting:
                continue  # stale reply to an abandoned command
            if status != "ok":
                raise WorkerFailure(
                    self.shard, "error", f"step failed:\n{detail}"
                )
            return detail

    def _receive(self, timeout: float):
        try:
            ready = self._conn.poll(timeout)
        except (BrokenPipeError, OSError) as error:
            raise WorkerFailure(
                self.shard, "died", f"pipe failed: {error}"
            ) from error
        if not ready:
            raise WorkerFailure(
                self.shard, "timeout",
                f"no reply within {timeout:g}s (alive={self.alive})",
            )
        try:
            return self._conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerFailure(
                self.shard, "died", "worker process died"
            ) from error

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate terminate → kill if it will
        not.  A worker ignoring both the stop command and SIGTERM (hung
        in native code, or chaos-injected) is SIGKILLed — shutdown must
        never hang on a wedged child."""
        try:
            self._conn.send(("stop", self._next_seq()))
            self._conn.poll(timeout)
        except (BrokenPipeError, OSError):
            _log.info(
                "shard %d pipe already gone during stop", self.shard
            )
        self._process.join(timeout)
        if self._process.is_alive():
            _log.warning(
                "shard %d (pid %s) ignored stop; escalating to SIGTERM",
                self.shard, self.pid,
            )
            self._process.terminate()
            self._process.join(timeout)
        if self._process.is_alive():
            _log.warning(
                "shard %d (pid %s) survived SIGTERM; escalating to SIGKILL",
                self.shard, self.pid,
            )
            self._process.kill()
            self._process.join(timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass

    def kill(self, timeout: float = 5.0) -> None:
        """SIGKILL the worker outright (recovery path: it is already
        considered dead or wedged; no goodbye protocol)."""
        try:
            self._process.kill()
        except Exception:  # pragma: no cover - already gone
            pass
        self._process.join(timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardWorker(shard={self.shard}, "
            f"rows=[{self.spec.row_begin}, {self.spec.row_end}), "
            f"generation={self.generation}, alive={self.alive})"
        )
