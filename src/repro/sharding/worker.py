"""The shard worker process and its parent-side handle.

Each :class:`ShardWorker` is one OS process owning one row stripe of the
propagation operator.  Its loop is deliberately tiny: wait for a command
on its pipe, run one **block-local iterate sweep step** — a
:func:`repro.kernels.spmm` (or ``spmv``) of its stripe against the full
shared iterate panel ``X``, written into its own row slice of ``Y`` —
and reply.  All heavy state (the CSR stripe, the panels) lives in shared
memory mapped zero-copy; the pipes carry only small command tuples, so a
step costs one roundtrip per worker regardless of graph size.

Workers pre-scale their stripe's value array by the commanded decay
(scaled then cast, exactly as :meth:`Graph._operator_for` builds the
in-memory decayed operator) and cache the scaled copy per
``(decay, dtype)``, so steady serving touches only the SpMM itself.
Because every output row is computed with the same per-row arithmetic
and accumulation order as the single-process kernels, the sharded sweep
is **bitwise identical** to the serial one — the property the router's
equivalence tests pin down.

Each worker stamps its process with
:func:`repro.kernels.set_shard_annotation`, so any
:func:`repro.kernels.cache_token` minted inside it names the stripe it
ran on.
"""

from __future__ import annotations

import traceback
from multiprocessing.connection import Connection

import numpy as np
import scipy.sparse as sp

from repro.sharding.store import StripeSpec, attach_segment

__all__ = ["ShardWorker", "shard_worker_main"]

#: Default seconds the parent waits for one step reply before declaring
#: the worker hung.  Generous: a cold Numba worker may JIT-compile its
#: kernels inside the first step.
DEFAULT_STEP_TIMEOUT = 300.0


def _spec_payload(spec: StripeSpec) -> dict:
    """The picklable recipe a child needs to rebuild its stripe views."""
    return {
        "shard": spec.shard,
        "row_begin": spec.row_begin,
        "row_end": spec.row_end,
        "num_cols": spec.num_cols,
        "nnz": spec.nnz,
        "indptr_offset": spec.indptr_offset,
        "indices_offset": spec.indices_offset,
        "data_offset": spec.data_offset,
        "index_dtype": spec.index_dtype,
    }


def shard_worker_main(
    payload: dict,
    segments: tuple[str, str, str],
    num_shards: int,
    backend: str,
    conn: Connection,
    pin_cpus: tuple[int, ...] | None = None,
) -> None:
    """Child-process entry: serve step commands until told to stop.

    Importable at module level so it works under both the ``fork`` and
    ``spawn`` start methods.  ``pin_cpus`` (from a
    :func:`repro.tune.plan_pinning` plan) pins this worker to its own
    core set and caps its kernel threads to that set's size — placement
    only, never results: a failed pin warns and the worker serves
    unpinned.
    """
    from repro import kernels

    # Mutable binding state: the "remap" command (a partial republish
    # after a dynamic-graph compaction) swaps the worker onto a new
    # store's segments mid-serve, so everything derived from the mapped
    # buffers lives here rather than in loop-invariant locals.
    state: dict = {"segments": (), "views": (), "cache": {}}

    def unbind() -> None:
        # Views into the buffers must die before the mappings close.
        state["views"] = ()
        state["cache"] = {}
        for segment in state["segments"]:
            try:
                segment.close()
            except Exception:  # pragma: no cover - interpreter exit
                pass
        state["segments"] = ()

    def bind(spec: dict, names: tuple) -> None:
        unbind()
        # Workers inherit the creator's resource tracker (fork and spawn
        # alike), so attaching must not disturb its bookkeeping — see
        # attach_segment.
        operator_shm = attach_segment(names[0])
        panel_x = attach_segment(names[1])
        panel_y = attach_segment(names[2])
        state["segments"] = (operator_shm, panel_x, panel_y)
        rows = spec["row_end"] - spec["row_begin"]
        indptr = np.ndarray(
            (rows + 1,), dtype=spec["index_dtype"],
            buffer=operator_shm.buf, offset=spec["indptr_offset"],
        )
        indices = np.ndarray(
            (spec["nnz"],), dtype=spec["index_dtype"],
            buffer=operator_shm.buf, offset=spec["indices_offset"],
        )
        base_data = np.ndarray(
            (spec["nnz"],), dtype=np.float64,
            buffer=operator_shm.buf, offset=spec["data_offset"],
        )
        state["views"] = (indptr, indices, base_data)
        # Fault the stripe's pages in from this worker (first-touch /
        # warm): the serving loop then never stalls on a cold mapping,
        # and on a pinned worker the pages are pulled toward its node.
        from repro.tune.pinning import first_touch

        first_touch(indptr, indices, base_data)
        n = spec["num_cols"]
        cache: dict = {}
        state["cache"] = cache

        def stripe_for(decay: float | None, dtype: np.dtype) -> sp.csr_array:
            key = (decay, dtype.name)
            stripe = cache.get(key)
            if stripe is None:
                stripe = sp.csr_array(
                    (kernels.scaled_values(base_data, decay, dtype),
                     indices, indptr),
                    shape=(rows, n),
                )
                cache[key] = stripe
            return stripe

        state["stripe_for"] = stripe_for
        state["n"] = n
        state["begin"] = spec["row_begin"]
        state["end"] = spec["row_end"]
        state["panel_x"] = panel_x
        state["panel_y"] = panel_y

    try:
        shard = payload["shard"]
        kernels.set_shard_annotation(f"{shard}/{num_shards}")
        kernels.set_backend(backend)
        if pin_cpus:
            from repro.tune.pinning import pin_current

            if pin_current(pin_cpus):
                # The kernels should not oversubscribe the worker's own
                # cores; thread count never changes results (bitwise
                # contract), only placement.
                kernels.set_num_threads(len(pin_cpus))
        bind(payload, segments)
        conn.send(("ready", shard))
        while True:
            try:
                command = conn.recv()
            except EOFError:  # parent vanished: exit quietly
                return
            verb = command[0]
            try:
                if verb == "stop":
                    conn.send(("ok", None))
                    return
                if verb == "ping":
                    conn.send(("ok", shard))
                    continue
                if verb == "remap":
                    _, new_payload, new_segments = command
                    bind(new_payload, new_segments)
                    conn.send(("ok", shard))
                    continue
                if verb != "step":
                    raise ValueError(f"unknown shard command {verb!r}")
                _, ncols, dtype_name, decay, want_backend = command
                if want_backend != kernels.get_backend():
                    kernels.set_backend(want_backend)
                dtype = np.dtype(dtype_name)
                stripe = state["stripe_for"](decay, dtype)
                n = state["n"]
                begin, end = state["begin"], state["end"]
                panel_x, panel_y = state["panel_x"], state["panel_y"]
                if ncols == 0:
                    x = np.ndarray((n,), dtype=dtype, buffer=panel_x.buf)
                    y = np.ndarray((n,), dtype=dtype, buffer=panel_y.buf)
                    kernels.spmv(stripe, x, out=y[begin:end])
                else:
                    x = np.ndarray(
                        (n, ncols), dtype=dtype, buffer=panel_x.buf
                    )
                    y = np.ndarray(
                        (n, ncols), dtype=dtype, buffer=panel_y.buf
                    )
                    kernels.spmm(stripe, x, out=y[begin:end])
                conn.send(("ok", None))
            except Exception:  # noqa: BLE001 - forwarded to the router
                conn.send(("err", traceback.format_exc()))
    finally:
        unbind()
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


class ShardWorker:
    """Parent-side handle of one shard worker process.

    Parameters
    ----------
    context:
        The ``multiprocessing`` context to spawn under.
    spec:
        The worker's stripe (from :attr:`ShardStore.specs`).
    segments:
        The store's ``(operator, X, Y)`` segment names.
    num_shards:
        Total worker count (for the shard annotation).
    backend:
        Kernel backend name the worker starts on.
    pin_cpus:
        Optional cpu ids this worker pins itself to at startup (one
        entry of a :func:`repro.tune.plan_pinning` plan).
    """

    def __init__(
        self,
        context,
        spec: StripeSpec,
        segments: tuple[str, str, str],
        num_shards: int,
        backend: str,
        pin_cpus: tuple[int, ...] | None = None,
    ):
        self.spec = spec
        self.pin_cpus = pin_cpus
        payload = _spec_payload(spec)
        parent_conn, child_conn = context.Pipe()
        self._conn = parent_conn
        self._process = context.Process(
            target=shard_worker_main,
            args=(
                payload, segments, num_shards, backend, child_conn, pin_cpus,
            ),
            name=f"repro-shard-{spec.shard}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    @property
    def shard(self) -> int:
        return self.spec.shard

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def wait_ready(self, timeout: float) -> None:
        reply = self._receive(timeout)
        if reply[0] != "ready":
            raise RuntimeError(
                f"shard {self.shard} failed to initialize: {reply[1]}"
            )

    def send_step(
        self, ncols: int, dtype: np.dtype, decay: float | None, backend: str
    ) -> None:
        self._conn.send(("step", ncols, np.dtype(dtype).name, decay, backend))

    def send_remap(
        self, spec: StripeSpec, segments: tuple[str, str, str],
        timeout: float,
    ) -> None:
        """Rebind the worker onto a republished store's segments.

        The worker drops its stripe views and scaled-value cache,
        detaches the old segments, and attaches the new ones; the reply
        is awaited so the caller knows the old store can be closed.
        """
        self.spec = spec
        self._conn.send(("remap", _spec_payload(spec), segments))
        self.wait_ok(timeout)

    def ping(self, timeout: float) -> None:
        self._conn.send(("ping",))
        self.wait_ok(timeout)

    def wait_ok(self, timeout: float) -> None:
        reply = self._receive(timeout)
        if reply[0] != "ok":
            raise RuntimeError(
                f"shard {self.shard} step failed:\n{reply[1]}"
            )

    def _receive(self, timeout: float):
        if not self._conn.poll(timeout):
            raise RuntimeError(
                f"shard {self.shard} did not reply within {timeout:g}s "
                f"(alive={self.alive})"
            )
        try:
            return self._conn.recv()
        except EOFError as error:
            raise RuntimeError(
                f"shard {self.shard} worker process died"
            ) from error

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it will not."""
        try:
            self._conn.send(("stop",))
            self._conn.poll(timeout)
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardWorker(shard={self.shard}, "
            f"rows=[{self.spec.row_begin}, {self.spec.row_end}), "
            f"alive={self.alive})"
        )
