"""The sustained-updates-versus-query-latency benchmark.

:func:`run_update_bench` drives a serving front end (a
:class:`~repro.serving.Server` or a :class:`~repro.sharding.Router`)
with the same closed-loop client threads as ``serve-bench`` /
``shard-bench``, while a mutator thread hammers the underlying
:class:`~repro.dynamic.DynamicGraph` with edge-update batches and
periodic compactions.  The question it answers is the operational one a
static benchmark cannot: **how many updates per second can the graph
absorb before query latency degrades**, with every cache-repair and
epoch-resync cost (re-preprocessing, stripe republish, warm restarts)
charged to the numbers it actually shows up in.

The mutator inserts fresh random edges and retires its oldest inserts,
so the steady-state graph stays within ``backlog`` edges of the
original — the measured rate is a sustained churn rate, not a
grow-only append rate.  Deletions only ever target edges the benchmark
itself inserted, which keeps every mutation legal under any dangling
policy.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.serving.loadgen import LoadReport, run_closed_loop
from repro.serving.metrics import bench_report

__all__ = ["UpdateBenchResult", "run_update_bench"]


@dataclass
class UpdateBenchResult:
    """Outcome of one update benchmark: the closed-loop query report
    plus the mutator's sustained-rate counters."""

    load: LoadReport
    updates_attempted: int
    updates_applied: int
    compactions: int
    update_seconds: float

    @property
    def updates_per_second(self) -> float:
        if self.update_seconds <= 0.0:
            return 0.0
        return self.updates_applied / self.update_seconds

    def document(self, *, config: dict | None = None) -> dict:
        """The versioned JSON document (``repro-serving-report/1`` with
        ``updates_*`` fields) both the CLI and ``benchmarks/record.py``
        persist."""
        doc = bench_report(
            self.load, kind="update-bench", config=config or {}
        )
        doc.update(self.update_fields())
        return doc

    def update_fields(self) -> dict:
        """Just the ``updates_*`` fields (for merging into an existing
        trajectory entry)."""
        return {
            "updates_attempted": int(self.updates_attempted),
            "updates_applied": int(self.updates_applied),
            "updates_compactions": int(self.compactions),
            "updates_seconds": float(self.update_seconds),
            "updates_per_second": float(self.updates_per_second),
        }


def run_update_bench(
    server,
    graph,
    seeds,
    *,
    k: int | None = 10,
    clients: int = 4,
    requests_per_client: int = 100,
    update_batch: int = 8,
    compact_every: int = 256,
    backlog: int = 1024,
    rng_seed: int = 0,
) -> UpdateBenchResult:
    """Measure sustained update throughput against query latency.

    Parameters
    ----------
    server:
        Any scheduler front end (``submit``/``stats``) serving over
        ``graph`` — the mutations must be visible to its engines.
    graph:
        The live :class:`~repro.dynamic.DynamicGraph` under the server.
    seeds:
        Seed pool the closed-loop clients cycle over.
    update_batch:
        Edges per mutation call (one lock acquisition each).
    compact_every:
        Applied mutations between ``compact()`` calls; ``0`` disables
        compaction so the run measures pure overlay-mode serving.
    backlog:
        Ceiling on benchmark-inserted edges alive at once; beyond it the
        mutator retires its oldest inserts (churn, not growth).
    """
    if update_batch < 1:
        raise ParameterError("update_batch must be at least 1")
    if compact_every < 0:
        raise ParameterError("compact_every must be non-negative")
    if backlog < update_batch:
        raise ParameterError("backlog must be at least update_batch")
    n = graph.num_nodes
    rng = np.random.default_rng(rng_seed)
    stop = threading.Event()
    counters = {"attempted": 0, "applied": 0, "compactions": 0,
                "seconds": 0.0}
    failure: list[BaseException] = []

    def mutate() -> None:
        inserted: deque[tuple[int, int]] = deque()
        applied_since_compact = 0
        begin = time.perf_counter()
        try:
            while not stop.is_set():
                pairs = list(
                    zip(
                        rng.integers(0, n, size=update_batch).tolist(),
                        rng.integers(0, n, size=update_batch).tolist(),
                    )
                )
                counters["attempted"] += len(pairs)
                done = graph.add_edges(pairs)
                counters["applied"] += done
                applied_since_compact += done
                inserted.extend(pairs)
                while len(inserted) > backlog:
                    victims = [
                        inserted.popleft()
                        for _ in range(min(update_batch, len(inserted)))
                    ]
                    counters["attempted"] += len(victims)
                    done = graph.remove_edges(victims)
                    counters["applied"] += done
                    applied_since_compact += done
                if compact_every and applied_since_compact >= compact_every:
                    graph.compact()
                    counters["compactions"] += 1
                    applied_since_compact = 0
        except BaseException as error:  # surfaced after the load run
            failure.append(error)
        finally:
            counters["seconds"] = time.perf_counter() - begin

    mutator = threading.Thread(
        target=mutate, name="repro-update-bench-mutator", daemon=True
    )
    mutator.start()
    try:
        load = run_closed_loop(
            server,
            seeds,
            k=k,
            clients=clients,
            requests_per_client=requests_per_client,
        )
    finally:
        stop.set()
        mutator.join()
    if failure:
        raise failure[0]
    return UpdateBenchResult(
        load=load,
        updates_attempted=counters["attempted"],
        updates_applied=counters["applied"],
        compactions=counters["compactions"],
        update_seconds=counters["seconds"],
    )
