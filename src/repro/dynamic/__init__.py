"""Dynamic graphs: delta-overlay edge updates over the immutable substrates.

The package layers mutability over the repo's build-once CSR world:

* :class:`DeltaOverlay` — an append-only log of edge inserts/deletes,
  compiled on demand into a sparse delta operator through the same
  :func:`repro.kernels.scaled_values` contract as every decayed
  operator;
* :class:`DynamicGraph` — a graph-protocol facade (base product + delta
  fold) CPI/TPA and all baselines run on unmodified, with
  :meth:`~DynamicGraph.compact` folding the overlay into a fresh base
  whose results are bitwise identical to a from-scratch build;
* :data:`OVERLAY_TOLERANCE` — the documented ≤1e-12 accuracy tier of
  overlay-mode (uncompacted) results, surfaced in every
  :func:`repro.kernels.cache_token` minted against a dirty graph;
* :func:`run_update_bench` — the sustained-updates-versus-query-latency
  benchmark behind the ``update-bench`` CLI command.
"""

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.overlay import OVERLAY_TOLERANCE, DeltaOverlay

__all__ = [
    "DeltaOverlay",
    "DynamicGraph",
    "OVERLAY_TOLERANCE",
    "run_update_bench",
]


def run_update_bench(*args, **kwargs):
    """Lazy alias for :func:`repro.dynamic.bench.run_update_bench`
    (keeps ``import repro.dynamic`` free of serving imports)."""
    from repro.dynamic.bench import run_update_bench as _run

    return _run(*args, **kwargs)
