"""The mutable graph facade: a delta overlay over an immutable base.

:class:`DynamicGraph` satisfies the graph protocol the iterate loops
consume (``num_nodes``, ``propagate``, ``propagate_decayed``,
``dangling_nodes``, ...), so CPI/TPA and every power-iteration baseline
run unmodified on a mutating graph.  Internally it is two layers:

* an immutable base :class:`~repro.graph.Graph` (rebuilt only by
  :meth:`compact`), and
* a :class:`~repro.dynamic.DeltaOverlay` of pending edge mutations,
  compiled on demand into a delta operator ``Δ`` with
  ``Ã'^T == Ã^T + Δ``.

A propagation while mutations are pending evaluates the base-CSR product
through the usual :mod:`repro.kernels` dispatch (``spmv`` /
``spmm_tiled`` / ``spmm``) **plus** one sparse delta fold, then applies
the uniform-dangling correction with the *current* (overlay-aware)
dangling set.  The two-term evaluation is exact up to the float rounding
of the overlay's ``1/d_new - 1/d_old`` corrections — the documented
:data:`~repro.dynamic.OVERLAY_TOLERANCE` tier.  After :meth:`compact`
the overlay is empty and every call delegates straight to the fresh
base, whose spliced CSR is canonically identical to a from-scratch
build — results are then **bitwise identical** to a fresh
:class:`~repro.graph.Graph` on the same edge set.

Epochs: :meth:`epoch_token` names the exact graph generation —
``"{epoch}"`` when clean, ``"{epoch}+{events}~overlay-1e-12"`` while
deltas are pending — and :func:`repro.kernels.cache_token` folds it into
every cache key, so a mutated graph can never hit a stale
``ScoreCache``/LRU entry.

Structural CSR attributes (``transition``, ``adjacency``, ...) are only
exposed while the graph is clean; while mutations are pending they raise
:class:`AttributeError`, which flips the ``hasattr`` gates guarding the
sparse-iterate shortcuts (gathered first iterates, CSR banned-mask
expansion) over to their substrate-agnostic fallbacks.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.dynamic.overlay import DeltaOverlay
from repro.exceptions import DanglingNodeError, GraphFormatError, ParameterError
from repro.graph.graph import DanglingPolicy, Graph
from repro.obs import metrics as obs_metrics

__all__ = ["DynamicGraph"]


def _mutation_counter():
    return obs_metrics.get_registry().counter(
        "repro_graph_mutations_total",
        "Edge-set changes applied to dynamic graphs (epoch-token bumps).",
        labelnames=("op",),
    )

#: Compaction epochs of dirty-row history retained for incremental shard
#: republish; republishes falling further behind rebuild every stripe.
_HISTORY_LIMIT = 32


def _edge_pairs(edges) -> np.ndarray:
    """Normalize an edge argument to an ``(k, 2)`` int64 array.

    Accepts an iterable of ``(src, dst)`` pairs or an ``(k, 2)`` array.
    """
    if not isinstance(edges, np.ndarray):
        edges = list(edges)
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim == 1 and arr.size == 2:
        return arr.reshape(1, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphFormatError(
            "edges must be an iterable of (src, dst) pairs or a (k, 2) array"
        )
    return arr


def _graph_from_adjacency(adjacency: sp.csr_array, policy: str) -> Graph:
    """Build a :class:`Graph` around an already-canonical adjacency CSR.

    The spliced adjacency :meth:`DynamicGraph.compact` produces has
    sorted, duplicate-free rows with all-ones data — exactly the
    canonical form ``Graph.__init__`` reaches after ``sum_duplicates`` —
    so running it through the same ``_finalize`` yields transition
    operators bitwise identical to a from-scratch build on the same edge
    set.
    """
    graph = object.__new__(Graph)
    graph._n = int(adjacency.shape[0])
    graph._dangling_policy = policy
    graph._finalize(adjacency)
    return graph


def _folded_product(
    base: Graph,
    delta: sp.csr_array | None,
    dangling: np.ndarray,
    policy: str,
    x: np.ndarray,
    decay: float | None,
    out: np.ndarray | None,
) -> np.ndarray:
    """One overlay-mode propagation: base product + delta fold + current
    dangling correction.

    Mirrors :meth:`Graph.propagate` / :meth:`Graph.propagate_decayed`
    term by term, except the base product is the *bare* operator (the
    base's own dangling correction would use the pre-mutation dangling
    set) and the rank-one correction uses the overlay-aware one.
    """
    dtype = np.dtype(np.float32 if x.dtype == np.float32 else np.float64)
    operator = base.decayed_operator(decay, dtype)
    if out is not None and (
        out.shape != x.shape
        or out.dtype != operator.data.dtype
        or not out.flags.c_contiguous
        or out is x
    ):
        out = None
    tiling = base.spmm_tiling
    if x.ndim == 1:
        y = kernels.spmv(operator, x, out=out)
    elif tiling is not None:
        y = kernels.spmm_tiled(operator, x, out=out, tiling=tiling)
    else:
        y = kernels.spmm(operator, x, out=out)
    if delta is not None:
        if x.ndim == 1:
            y += kernels.spmv(delta, x)
        else:
            y += kernels.spmm(delta, x)
    if dangling.size and policy == "uniform":
        leaked = x[dangling].sum(axis=0)
        if np.any(leaked != 0.0):
            if decay is None:
                y += leaked / base.num_nodes
            else:
                y += (decay / base.num_nodes) * leaked
    return y


class DynamicGraph:
    """A mutable graph: an immutable base plus a delta overlay.

    Parameters
    ----------
    base:
        The initial :class:`~repro.graph.Graph`.  Its dangling policy is
        inherited; ``"selfloop"`` is rejected (a structural rewrite per
        mutation would defeat the overlay), use ``"error"`` or
        ``"uniform"``.

    Notes
    -----
    Thread-safe: mutations, products and compaction serialize on one
    internal lock; products snapshot their operands under the lock and
    compute outside it, so queries concurrent with a mutation stream see
    some consistent recent generation, never a torn one.
    """

    def __init__(self, base: Graph):
        if base.dangling_policy == "selfloop":
            raise ParameterError(
                "DynamicGraph does not support the 'selfloop' dangling "
                "policy (every mutation could rewrite loop structure); "
                "use 'error' or 'uniform'"
            )
        self._lock = threading.RLock()
        self._base = base
        self._overlay = DeltaOverlay(base)
        self._epoch = 0
        # (epoch, operator rows rebuilt by that compaction) — consumed by
        # dirty_rows_since for incremental shard republish.
        self._history: list[tuple[int, np.ndarray]] = []
        self._out_degree_cache: tuple[int, np.ndarray] | None = None

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Sequence[tuple[int, int]],
        dangling: DanglingPolicy = "error",
    ) -> "DynamicGraph":
        return cls(Graph.from_edges(n, edges, dangling=dangling))

    # -- epochs ----------------------------------------------------------------

    @property
    def base_graph(self) -> Graph:
        """The current immutable base (pre-overlay) graph."""
        return self._base

    @property
    def base_epoch(self) -> int:
        """Number of compactions applied so far."""
        return self._epoch

    def base_snapshot(self) -> tuple[int, Graph]:
        """Atomic ``(base_epoch, base_graph)`` pair (for republishers)."""
        with self._lock:
            return self._epoch, self._base

    @property
    def dirty(self) -> bool:
        """Whether mutations are pending (overlay mode)."""
        with self._lock:
            return self._overlay.touched

    @property
    def mutation_events(self) -> int:
        """Monotone count of applied mutations across all epochs."""
        with self._lock:
            return self._overlay.events

    def epoch_token(self) -> str:
        """The graph-generation component of :func:`kernels.cache_token`.

        ``"{epoch}"`` when clean; ``"{epoch}+{events}~overlay-1e-12"``
        while mutations are pending.  The ``~overlay-1e-12`` suffix makes
        the documented overlay accuracy tier
        (:data:`~repro.dynamic.OVERLAY_TOLERANCE`) explicit in every
        cache key minted against an uncompacted graph, the same way the
        dtype component already exposes the float32 tier.  Tokens are
        unique across the graph's lifetime: the mutation counter never
        resets, so no clean/dirty state ever repeats a token.
        """
        with self._lock:
            if not self._overlay.touched:
                return f"{self._epoch}"
            return f"{self._epoch}+{self._overlay.events}~overlay-1e-12"

    # -- mutation --------------------------------------------------------------

    def add_edges(self, edges) -> int:
        """Apply edge inserts; return how many changed the edge set.

        Self-loops and already-present edges are no-ops (mirroring the
        simple-digraph normalization of :class:`Graph`).  Under the
        ``"error"`` dangling policy inserts can never create a dangling
        node, so they are always legal.
        """
        pairs = _edge_pairs(edges)
        applied = 0
        with self._lock:
            for source, target in pairs:
                if self._overlay.add(int(source), int(target)):
                    applied += 1
            if applied:
                self._out_degree_cache = None
        if applied:
            _mutation_counter().labels(op="add").inc(applied)
        return applied

    def remove_edges(self, edges) -> int:
        """Apply edge deletes; return how many changed the edge set.

        Removing an absent edge is a no-op.  Under the ``"error"``
        dangling policy a delete that would empty a node's out-edge set
        raises :class:`DanglingNodeError` *before* being applied
        (previously applied edges of the batch remain applied).
        """
        pairs = _edge_pairs(edges)
        applied = 0
        with self._lock:
            for source, target in pairs:
                source, target = int(source), int(target)
                if self._dangling_policy_unlocked() == "error":
                    current = self._overlay.neighbors_of(source)
                    if current.size == 1 and current[0] == target:
                        raise DanglingNodeError(
                            f"removing edge {source}->{target} would leave "
                            f"node {source} dangling under the 'error' "
                            "policy"
                        )
                if self._overlay.remove(source, target):
                    applied += 1
            if applied:
                self._out_degree_cache = None
        if applied:
            _mutation_counter().labels(op="remove").inc(applied)
        return applied

    def _dangling_policy_unlocked(self) -> str:
        return self._base.dangling_policy

    # -- compaction ------------------------------------------------------------

    def compact(self) -> np.ndarray:
        """Fold the overlay into a fresh immutable base.

        Splices the adjacency CSR — untouched rows are block-copied from
        the old base, touched rows get their new sorted neighbor lists —
        and refinalizes it through the exact normalization pipeline a
        from-scratch build runs, so post-compact results are bitwise
        identical to a fresh :class:`Graph` on the same edge set.  Bumps
        the base epoch, clears the overlay, carries any attached SpMM
        tiling over, and returns the sorted operator rows (``Ã^T``
        destinations) whose stripe content changed — what a sharded
        deployment must republish.  No-op (no epoch bump) when nothing
        is pending.
        """
        with self._lock:
            if not self._overlay.touched:
                return np.empty(0, dtype=np.int64)
            dirty = self._overlay.dirty_operator_rows().copy()
            adjacency = self._splice_adjacency()
            new_base = _graph_from_adjacency(
                adjacency, self._base.dangling_policy
            )
            tiling = self._base.spmm_tiling
            if tiling is not None:
                new_base.set_spmm_tiling(tiling)
            events = self._overlay.events
            self._base = new_base
            self._overlay = DeltaOverlay(new_base, events=events)
            self._epoch += 1
            self._history.append((self._epoch, dirty))
            del self._history[:-_HISTORY_LIMIT]
            self._out_degree_cache = None
            obs_metrics.get_registry().counter(
                "repro_compactions_total",
                "Dynamic-graph compactions (base epoch bumps).",
            ).inc()
            obs_metrics.get_registry().gauge(
                "repro_graph_epoch", "Current dynamic-graph base epoch."
            ).set(self._epoch)
            return dirty

    def dirty_rows_since(self, epoch: int) -> np.ndarray | None:
        """Operator rows changed by compactions after ``epoch``.

        Returns the sorted union of dirty rows of every compaction with
        epoch greater than ``epoch``, an empty array when up to date, or
        ``None`` when the history no longer covers that span (the caller
        must then treat every row as dirty).
        """
        with self._lock:
            epoch = int(epoch)
            if epoch >= self._epoch:
                return np.empty(0, dtype=np.int64)
            entries = [rows for (e, rows) in self._history if e > epoch]
            if len(entries) != self._epoch - epoch:
                return None
            return np.unique(np.concatenate(entries))

    def _splice_adjacency(self) -> sp.csr_array:
        """The overlay graph's adjacency, rebuilt row-spliced: untouched
        row stripes are block-copied from the base CSR; only touched rows
        are rebuilt."""
        base_adj = self._base.adjacency
        n = self._base.num_nodes
        indptr_old = base_adj.indptr
        indices_old = base_adj.indices
        touched = self._overlay.touched_sources
        counts = np.diff(indptr_old).astype(np.int64)
        new_rows: dict[int, np.ndarray] = {}
        for source in touched:
            neighbors = self._overlay.neighbors_of(source)
            new_rows[source] = neighbors
            counts[source] = neighbors.size
        indptr_new = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr_new[1:])
        total = int(indptr_new[-1])
        indices_new = np.empty(total, dtype=indices_old.dtype)
        previous = 0
        for source in [*touched, n]:
            if source > previous:
                indices_new[indptr_new[previous]:indptr_new[source]] = (
                    indices_old[indptr_old[previous]:indptr_old[source]]
                )
            if source < n:
                row = new_rows[source]
                indices_new[indptr_new[source]:indptr_new[source + 1]] = row
                previous = source + 1
        return sp.csr_array(
            (np.ones(total, dtype=np.float64), indices_new, indptr_new),
            shape=(n, n),
        )

    # -- propagation -----------------------------------------------------------

    def _product_state(self, decay: float | None, dtype):
        """Consistent (base, delta, dangling, policy) snapshot, or the
        clean fast path marker."""
        with self._lock:
            base = self._base
            if not self._overlay.touched:
                return True, base, None, None, None
            delta = self._overlay.delta_operator(decay, dtype)
            dangling = self._overlay.dangling_nodes()
            return False, base, delta, dangling, base.dangling_policy

    def propagate(self, x: np.ndarray) -> np.ndarray:
        """``Ã'^T x`` of the *current* (overlay-included) graph."""
        x = np.asarray(x)
        dtype = np.dtype(np.float32 if x.dtype == np.float32 else np.float64)
        clean, base, delta, dangling, policy = self._product_state(None, dtype)
        if clean:
            return base.propagate(x)
        return _folded_product(base, delta, dangling, policy, x, None, None)

    def propagate_decayed(
        self, x: np.ndarray, decay: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``decay · Ã'^T x`` of the current (overlay-included) graph."""
        x = np.asarray(x)
        decay = float(decay)
        dtype = np.dtype(np.float32 if x.dtype == np.float32 else np.float64)
        clean, base, delta, dangling, policy = self._product_state(decay, dtype)
        if clean:
            return base.propagate_decayed(x, decay, out=out)
        return _folded_product(base, delta, dangling, policy, x, decay, out)

    def apply_delta(
        self, x: np.ndarray, decay: float | None, y: np.ndarray
    ) -> np.ndarray:
        """Add the compiled overlay fold ``Δ(decay) @ x`` into ``y``.

        No dangling correction — this is the router-side hook a
        :class:`~repro.sharding.ShardedOperator` adds on top of its
        gathered base-stripe sweep so the distributed product tracks the
        overlay without republishing per mutation.
        """
        x = np.asarray(x)
        dtype = np.dtype(np.float32 if x.dtype == np.float32 else np.float64)
        with self._lock:
            if not self._overlay.touched:
                return y
            delta = self._overlay.delta_operator(decay, dtype)
        if delta is not None:
            if x.ndim == 1:
                y += kernels.spmv(delta, x)
            else:
                y += kernels.spmm(delta, x)
        return y

    def overlay_snapshot(self):
        """``(events, rows, cols, vals)`` of the pending delta in base
        coordinates, or ``None`` when clean — what a permuted view needs
        to compile its translated delta."""
        with self._lock:
            if not self._overlay.touched:
                return None
            rows, cols, vals = self._overlay.delta_coo()
            return self._overlay.events, rows, cols, vals

    # -- graph protocol (overlay-aware) ----------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._base.num_nodes

    @property
    def num_edges(self) -> int:
        with self._lock:
            return self._base.num_edges + self._overlay.edge_count_delta()

    @property
    def out_degree(self) -> np.ndarray:
        with self._lock:
            if not self._overlay.touched:
                return self._base.out_degree
            cached = self._out_degree_cache
            if cached is not None and cached[0] == self._overlay.events:
                return cached[1]
            degree = self._base.out_degree.copy()
            for source in self._overlay.touched_sources:
                degree[source] = self._overlay.out_degree_of(source)
            self._out_degree_cache = (self._overlay.events, degree)
            return degree

    @property
    def dangling_nodes(self) -> np.ndarray:
        with self._lock:
            if not self._overlay.touched:
                return self._base.dangling_nodes
            return self._overlay.dangling_nodes()

    @property
    def dangling_policy(self) -> str:
        return self._base.dangling_policy

    def out_neighbors(self, node: int) -> np.ndarray:
        with self._lock:
            return self._overlay.neighbors_of(int(node))

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        with self._lock:
            if not self._overlay.touched:
                return self._base.edges()
            adjacency = self._splice_adjacency()
        coo = adjacency.tocoo()
        return coo.row.astype(np.int64), coo.col.astype(np.int64)

    # -- structural CSR surface (clean only) -----------------------------------

    def _clean_base(self, name: str) -> Graph:
        with self._lock:
            if self._overlay.touched:
                raise AttributeError(
                    f"{name} is stale while overlay mutations are pending; "
                    "call compact() first"
                )
            return self._base

    @property
    def adjacency(self) -> sp.csr_array:
        return self._clean_base("adjacency").adjacency

    @property
    def transition(self) -> sp.csr_array:
        return self._clean_base("transition").transition

    @property
    def transition_transpose(self) -> sp.csr_array:
        return self._clean_base("transition_transpose").transition_transpose

    @property
    def in_degree(self) -> np.ndarray:
        return self._clean_base("in_degree").in_degree

    def in_neighbors(self, node: int) -> np.ndarray:
        return self._clean_base("in_neighbors").in_neighbors(node)

    def undirected_view(self) -> sp.csr_array:
        return self._clean_base("undirected_view").undirected_view()

    # -- execution hints -------------------------------------------------------

    @property
    def spmm_tiling(self):
        return self._base.spmm_tiling

    def set_spmm_tiling(self, tiling) -> None:
        with self._lock:
            self._base.set_spmm_tiling(tiling)

    def permute(self, perm: np.ndarray) -> "_PermutedDynamicGraph":
        """A live relabeled view (old node ``perm[i]`` becomes new node
        ``i``) that tracks this graph's mutations and compactions —
        what ``Engine(reorder=...)`` serves against."""
        return _PermutedDynamicGraph(self, perm)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"DynamicGraph(n={self._base.num_nodes}, "
                f"m={self.num_edges}, epoch={self._epoch}, "
                f"pending={len(self._overlay.touched_sources)})"
            )


class _PermutedDynamicGraph:
    """A relabeled live view of a :class:`DynamicGraph`.

    :meth:`Graph.permute` on the immutable graph returns a frozen copy;
    on a dynamic graph the serving side needs the *view* to track the
    root's mutations, so this object lazily re-permutes the base on
    every compaction and re-translates the pending delta on every
    mutation generation.  It exposes the same protocol surface as
    :class:`DynamicGraph` (products, dangling data, epoch token, the
    clean-only CSR attributes) in view coordinates.
    """

    def __init__(self, parent: DynamicGraph, perm: np.ndarray):
        perm = np.asarray(perm, dtype=np.int64)
        n = parent.num_nodes
        if perm.shape != (n,) or not np.array_equal(
            np.sort(perm), np.arange(n)
        ):
            raise GraphFormatError("perm must be a permutation of 0..n-1")
        self._parent = parent
        self._perm = perm.copy()
        self._inverse = np.empty_like(perm)
        self._inverse[perm] = np.arange(n)
        self._lock = threading.RLock()
        self._synced_epoch = -1
        self._base: Graph | None = None
        self._tiling = None
        # Translated delta operators keyed (events, decay, dtype name).
        self._delta_cache: dict[tuple[int, float | None, str], sp.csr_array | None] = {}
        self._sync()

    def _sync(self) -> Graph:
        """Re-permute the base iff the parent compacted since last time."""
        with self._lock:
            epoch, base = self._parent.base_snapshot()
            if epoch != self._synced_epoch:
                permuted = base.permute(self._perm)
                if self._tiling is not None:
                    permuted.set_spmm_tiling(self._tiling)
                self._base = permuted
                self._synced_epoch = epoch
                self._delta_cache.clear()
            return self._base

    def _translated_delta(
        self, decay: float | None, dtype: np.dtype
    ) -> sp.csr_array | None:
        snapshot = self._parent.overlay_snapshot()
        if snapshot is None:
            return None
        events, rows, cols, vals = snapshot
        key = (events, decay, np.dtype(dtype).name)
        with self._lock:
            if key in self._delta_cache:
                return self._delta_cache[key]
            if len(self._delta_cache) > 8:
                self._delta_cache.clear()
            n = self._perm.size
            if rows.size:
                delta = sp.csr_array(
                    (kernels.scaled_values(vals, decay, dtype),
                     (self._inverse[rows], self._inverse[cols])),
                    shape=(n, n),
                )
            else:
                delta = None
            self._delta_cache[key] = delta
            return delta

    # -- products --------------------------------------------------------------

    def _folded(self, x, decay, out):
        x = np.asarray(x)
        dtype = np.dtype(np.float32 if x.dtype == np.float32 else np.float64)
        # Snapshot base + delta + dangling of one generation; retry when
        # a compaction slides in between the reads (a handful of cheap
        # pointer reads — the loop converges immediately in practice).
        for _ in range(8):
            base = self._sync()
            dirty = self._parent.dirty
            delta = self._translated_delta(decay, dtype) if dirty else None
            dangling = self.dangling_nodes if dirty else None
            if self._parent.base_epoch == self._synced_epoch:
                break
        if not dirty:
            if decay is None:
                return base.propagate(x)
            return base.propagate_decayed(x, decay, out=out)
        return _folded_product(
            base, delta, dangling, self._parent.dangling_policy,
            x, decay, out,
        )

    def propagate(self, x: np.ndarray) -> np.ndarray:
        return self._folded(x, None, None)

    def propagate_decayed(
        self, x: np.ndarray, decay: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        return self._folded(x, float(decay), out)

    def apply_delta(
        self, x: np.ndarray, decay: float | None, y: np.ndarray
    ) -> np.ndarray:
        """View-coordinate overlay fold (see :meth:`DynamicGraph.apply_delta`)."""
        x = np.asarray(x)
        dtype = np.dtype(np.float32 if x.dtype == np.float32 else np.float64)
        delta = self._translated_delta(decay, dtype)
        if delta is not None:
            if x.ndim == 1:
                y += kernels.spmv(delta, x)
            else:
                y += kernels.spmm(delta, x)
        return y

    # -- epochs / protocol -----------------------------------------------------

    def epoch_token(self) -> str:
        return self._parent.epoch_token()

    @property
    def base_epoch(self) -> int:
        return self._parent.base_epoch

    def base_snapshot(self) -> tuple[int, Graph]:
        with self._lock:
            epoch, _ = self._parent.base_snapshot()
            # Sync so the returned graph matches the returned epoch even
            # when the parent compacted since our last product.
            base = self._sync()
            return self._synced_epoch, base

    def dirty_rows_since(self, epoch: int) -> np.ndarray | None:
        rows = self._parent.dirty_rows_since(epoch)
        if rows is None:
            return None
        return np.sort(self._inverse[rows])

    @property
    def dirty(self) -> bool:
        return self._parent.dirty

    @property
    def num_nodes(self) -> int:
        return self._parent.num_nodes

    @property
    def num_edges(self) -> int:
        return self._parent.num_edges

    @property
    def dangling_policy(self) -> str:
        return self._parent.dangling_policy

    @property
    def dangling_nodes(self) -> np.ndarray:
        parent_dangling = self._parent.dangling_nodes
        if not parent_dangling.size:
            return parent_dangling
        return np.sort(self._inverse[parent_dangling])

    @property
    def out_degree(self) -> np.ndarray:
        return self._parent.out_degree[self._perm]

    def out_neighbors(self, node: int) -> np.ndarray:
        original = self._parent.out_neighbors(int(self._perm[node]))
        return np.sort(self._inverse[original])

    # -- structural CSR surface (clean only) -----------------------------------

    def _clean_base(self, name: str) -> Graph:
        if self._parent.dirty:
            raise AttributeError(
                f"{name} is stale while overlay mutations are pending; "
                "call compact() first"
            )
        return self._sync()

    @property
    def adjacency(self) -> sp.csr_array:
        return self._clean_base("adjacency").adjacency

    @property
    def transition(self) -> sp.csr_array:
        return self._clean_base("transition").transition

    @property
    def transition_transpose(self) -> sp.csr_array:
        return self._clean_base("transition_transpose").transition_transpose

    @property
    def spmm_tiling(self):
        return self._tiling

    def set_spmm_tiling(self, tiling) -> None:
        with self._lock:
            self._tiling = tiling
            if self._base is not None:
                self._base.set_spmm_tiling(tiling)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_PermutedDynamicGraph(n={self.num_nodes}, "
            f"epoch={self._synced_epoch})"
        )
