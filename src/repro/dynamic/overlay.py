"""The delta overlay: an append-only edge-mutation log over a frozen CSR.

Every substrate in the repo is build-once — :class:`~repro.graph.Graph`,
``DiskGraph``, and the shard stripes are immutable CSR.  A
:class:`DeltaOverlay` layers edge inserts and deletes over such a base
without touching it: mutations are recorded per *source* node (the only
granularity at which row normalization changes), and the overlay compiles
them on demand into a sparse **delta operator** ``Δ`` such that

.. math::

    \\tilde{A}'^\\top \\;=\\; \\tilde{A}^\\top + \\Delta,

where ``Ã'`` is the row-normalized adjacency of the mutated graph.  An
edge mutation at source ``u`` rescales *every* surviving out-edge of
``u`` (the row weight moves from ``1/d_old`` to ``1/d_new``), so ``Δ``
has one entry per (old ∪ new) neighbor of each touched source:

* inserted edge ``u→v``:   ``+1/d_new``,
* deleted edge ``u→v``:    ``-1/d_old`` (the base entry cancels exactly:
  ``1/d_old - 1/d_old == 0.0`` in floats),
* surviving edge ``u→v``:  ``1/d_new - 1/d_old`` (a correction whose
  float rounding is the source of the documented ``1e-12`` overlay
  accuracy tier — see :data:`repro.dynamic.OVERLAY_TOLERANCE`).

The compiled delta is an ordinary CSR in the ``Ã^T`` layout (rows are
destinations), so :class:`~repro.dynamic.DynamicGraph` evaluates the
fold with the same :func:`repro.kernels.spmv` / :func:`~repro.kernels.spmm`
kernels as the base product, and decayed/cast variants are derived
through :func:`repro.kernels.scaled_values` — the decayed-operator
contract keeps exactly one implementation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["DeltaOverlay", "OVERLAY_TOLERANCE"]

#: Documented accuracy tier of overlay-mode results: while mutations are
#: pending (before :meth:`~repro.dynamic.DynamicGraph.compact`), score
#: vectors agree with a from-scratch rebuild of the mutated graph to
#: within this L1 bound — the rounding of the ``1/d_new - 1/d_old``
#: corrections above, amplified through the convergent CPI series.  The
#: tier is explicit in :func:`repro.kernels.cache_token` (the epoch
#: component carries an ``~overlay-1e-12`` suffix while deltas are
#: pending), the same way the float32 policy already is.
OVERLAY_TOLERANCE = 1e-12


class DeltaOverlay:
    """Append-only COO edge log of inserts/deletes over a base graph.

    Not thread-safe on its own — :class:`~repro.dynamic.DynamicGraph`
    serializes every access under its lock.

    Parameters
    ----------
    base:
        The immutable base :class:`~repro.graph.Graph` the overlay
        shadows.  Never mutated.
    events:
        Starting value of the mutation counter.  ``DynamicGraph.compact``
        threads the old overlay's counter into its replacement so the
        counter stays monotone across compactions and no two distinct
        overlay states ever share an epoch token.
    """

    def __init__(self, base: Graph, events: int = 0):
        self._base = base
        # Touched source -> its *current* out-neighbor set (base rows are
        # materialized lazily on first touch).
        self._neighbors: dict[int, set[int]] = {}
        # Monotone count of applied mutations; the epoch-token component
        # that keeps caches honest while deltas are pending.
        self._events = int(events)
        # Compiled delta operators: the float64 un-decayed master plus
        # scaled/cast variants keyed (decay, dtype name), exactly like
        # Graph._operator_cache.  Invalidated by every mutation.
        self._delta_master: sp.csr_array | None = None
        self._delta_cache: dict[tuple[float | None, str], sp.csr_array] = {}
        self._dirty_rows: np.ndarray | None = None
        self._dangling: np.ndarray | None = None

    # -- introspection ---------------------------------------------------------

    @property
    def base(self) -> Graph:
        return self._base

    @property
    def events(self) -> int:
        """Number of applied mutations (monotone; never reset)."""
        return self._events

    @property
    def touched(self) -> bool:
        """Whether any source node has pending mutations."""
        return bool(self._neighbors)

    @property
    def touched_sources(self) -> list[int]:
        return sorted(self._neighbors)

    def neighbors_of(self, source: int) -> np.ndarray:
        """Current (overlay-aware) out-neighbors of ``source``, sorted."""
        current = self._neighbors.get(source)
        if current is None:
            return np.asarray(self._base.out_neighbors(source), dtype=np.int64)
        return np.fromiter(sorted(current), dtype=np.int64, count=len(current))

    def out_degree_of(self, source: int) -> int:
        current = self._neighbors.get(source)
        if current is None:
            return int(self._base.out_degree[source])
        return len(current)

    def edge_count_delta(self) -> int:
        """Edge-count difference of the overlay graph versus the base."""
        total = 0
        for source, current in self._neighbors.items():
            total += len(current) - int(self._base.out_degree[source])
        return total

    # -- mutation --------------------------------------------------------------

    def _current(self, source: int) -> set[int]:
        current = self._neighbors.get(source)
        if current is None:
            current = set(self._base.out_neighbors(source).tolist())
            self._neighbors[source] = current
        return current

    def _check_endpoint(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self._base.num_nodes:
            raise GraphFormatError(
                f"edge endpoints must lie in [0, {self._base.num_nodes - 1}];"
                f" got {node}"
            )
        return node

    def add(self, source: int, target: int) -> bool:
        """Record the insert ``source → target``; True when it changed
        the edge set (duplicates and self-loops are no-ops, mirroring
        :class:`~repro.graph.Graph`'s simple-digraph normalization)."""
        source = self._check_endpoint(source)
        target = self._check_endpoint(target)
        if source == target:
            return False
        current = self._neighbors.get(source)
        if current is None:
            # Probe the base row first: a duplicate insert must leave no
            # trace (materializing the row would mark the source touched
            # and dirty the epoch token for a mutation that never was).
            if bool(np.isin(target, self._base.out_neighbors(source))):
                return False
            current = self._current(source)
        elif target in current:
            return False
        current.add(target)
        self._invalidate()
        return True

    def remove(self, source: int, target: int) -> bool:
        """Record the delete ``source → target``; True when the edge
        existed.  Removing a missing edge is a no-op."""
        source = self._check_endpoint(source)
        target = self._check_endpoint(target)
        current = self._neighbors.get(source)
        if current is None:
            if not bool(np.isin(target, self._base.out_neighbors(source))):
                return False
            current = self._current(source)
        elif target not in current:
            return False
        current.discard(target)
        self._invalidate()
        return True

    def _invalidate(self) -> None:
        self._events += 1
        self._delta_master = None
        self._delta_cache.clear()
        self._dirty_rows = None
        self._dangling = None

    # -- derived state ---------------------------------------------------------

    def dangling_nodes(self) -> np.ndarray:
        """Overlay-aware dangling set: base dangling nodes minus touched
        sources that gained edges, plus touched sources left empty."""
        if self._dangling is None:
            dangling = set(self._base.dangling_nodes.tolist())
            for source, current in self._neighbors.items():
                if current:
                    dangling.discard(source)
                else:
                    dangling.add(source)
            self._dangling = np.fromiter(
                sorted(dangling), dtype=np.int64, count=len(dangling)
            )
        return self._dangling

    def dirty_operator_rows(self) -> np.ndarray:
        """Rows of ``Ã^T`` (destination nodes) whose stored entries the
        pending mutations change — the stripes :meth:`compact` must
        rebuild and a sharded deployment must republish."""
        if self._dirty_rows is None:
            rows: set[int] = set()
            for source in self._neighbors:
                rows.update(self._base.out_neighbors(source).tolist())
                rows.update(self._neighbors[source])
            self._dirty_rows = np.fromiter(
                sorted(rows), dtype=np.int64, count=len(rows)
            )
        return self._dirty_rows

    def delta_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The un-decayed float64 delta as ``(rows, cols, vals)`` COO
        triplets in the ``Ã^T`` layout (``rows`` are destinations,
        ``cols`` are the touched sources).  Exact-zero corrections are
        dropped."""
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        out_degree = self._base.out_degree
        for source in sorted(self._neighbors):
            current = self._neighbors[source]
            base_nb = self._base.out_neighbors(source)
            d_old = float(out_degree[source])
            w_old = 1.0 / d_old if d_old > 0 else 0.0
            w_new = 1.0 / len(current) if current else 0.0
            targets = np.union1d(
                np.asarray(base_nb, dtype=np.int64),
                np.fromiter(current, dtype=np.int64, count=len(current)),
            )
            if not targets.size:
                continue
            in_new = np.isin(targets, np.fromiter(
                current, dtype=np.int64, count=len(current)
            )) if current else np.zeros(targets.size, dtype=bool)
            in_old = np.isin(targets, np.asarray(base_nb, dtype=np.int64))
            # new weight minus old weight, per surviving/inserted/deleted
            # target — each factor the identical 1/d quotient the base
            # normalization computes.
            delta = np.where(in_new, w_new, 0.0) - np.where(in_old, w_old, 0.0)
            keep = delta != 0.0
            if not keep.any():
                continue
            rows.append(targets[keep])
            cols.append(np.full(int(keep.sum()), source, dtype=np.int64))
            vals.append(delta[keep])
        if not rows:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=np.float64)
        return (
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
        )

    def delta_operator(
        self, decay: float | None, dtype=np.float64
    ) -> sp.csr_array | None:
        """The compiled delta ``Δ`` (or ``decay · Δ``) as an ``(n, n)``
        CSR in the ``Ã^T`` layout, or ``None`` when no entries exist.

        The float64 un-decayed master is compiled once per mutation
        generation; every other ``(decay, dtype)`` variant is derived
        from its value array through :func:`repro.kernels.scaled_values`
        (index arrays shared), exactly as
        :meth:`repro.graph.Graph.decayed_operator` builds the base
        decayed operator.
        """
        if self._delta_master is None:
            rows, cols, vals = self.delta_coo()
            n = self._base.num_nodes
            self._delta_master = sp.csr_array(
                (vals, (rows, cols)), shape=(n, n)
            )
        master = self._delta_master
        if master.nnz == 0:
            return None
        dtype = np.dtype(dtype)
        if decay is None and dtype == np.float64:
            return master
        key = (decay, dtype.name)
        scaled = self._delta_cache.get(key)
        if scaled is None:
            scaled = sp.csr_array(
                (kernels.scaled_values(master.data, decay, dtype),
                 master.indices, master.indptr),
                shape=master.shape,
            )
            self._delta_cache[key] = scaled
        return scaled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaOverlay(sources={len(self._neighbors)}, "
            f"events={self._events})"
        )
