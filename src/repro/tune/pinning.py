"""Core / NUMA placement for shard workers and server threads.

The numba ``prange`` kernels and the shared-memory shard stripes are
bandwidth-bound; when the OS migrates a worker between cores (or across
NUMA nodes) mid-run, its cache- and node-local working set goes with it.
This module computes a *pinning plan* — disjoint CPU sets, one per
worker, round-robined across NUMA nodes — and applies it with
``os.sched_setaffinity``.

Everything degrades to unpinned, loudly but harmlessly:

* no ``sched_setaffinity`` on the platform (macOS, Windows) — plan is
  ``None``, a :class:`PinningWarning` is emitted;
* affinity mask / cgroup cpuset smaller than the requested worker count
  — same;
* a pin call rejected by the kernel at apply time — that worker keeps
  running unpinned.

Pinning never changes results (the kernels' per-row accumulation order
is schedule-independent), so the plan is pure placement: correctness
tests run it on fake topologies, perf claims come from CI's multi-core
``tune-smoke`` leg.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.tune.fingerprint import affinity_cpus, numa_nodes

__all__ = [
    "PinningWarning",
    "cpu_topology",
    "plan_pinning",
    "pin_current",
    "first_touch",
]


class PinningWarning(RuntimeWarning):
    """A pinning request degraded to unpinned execution."""


def cpu_topology(
    sysfs: str = "/sys/devices/system/node",
    affinity: Iterable[int] | None = None,
) -> list[tuple[int, ...]]:
    """CPU pools grouped by NUMA node, restricted to the affinity mask.

    Returns one tuple of cpu ids per NUMA node that still owns at least
    one allowed cpu; with no sysfs topology (non-Linux, containers that
    hide ``/sys``) the whole affinity mask becomes a single pseudo-node.
    """
    allowed = set(affinity_cpus() if affinity is None else affinity)
    pools: list[tuple[int, ...]] = []
    for node_id, cpus in sorted(numa_nodes(sysfs).items()):
        in_mask = tuple(c for c in cpus if c in allowed)
        if in_mask:
            pools.append(in_mask)
    if not pools:
        pools = [tuple(sorted(allowed)) if allowed else (0,)]
    return pools


def plan_pinning(
    workers: int,
    cpus_per_worker: int | None = None,
    topology: Sequence[Sequence[int]] | None = None,
) -> list[tuple[int, ...]] | None:
    """Disjoint CPU sets for ``workers`` workers, or ``None`` if pinning
    cannot help on this machine.

    Workers are placed on the node with the most unassigned cpus first,
    so they spread across NUMA nodes and each worker's set stays within
    one node.  Each worker receives ``total // workers`` cpus (capped by
    ``cpus_per_worker`` when given, never below 1).  Degrades to ``None``
    with a :class:`PinningWarning` when the platform has no
    ``sched_setaffinity`` or the allowed cpus (affinity mask ∩ cgroup
    cpuset) cannot give every worker its own core — oversubscribed
    pinning is worse than the OS scheduler.
    """
    if workers < 1:
        raise ParameterError(f"need at least one worker to pin, got {workers}")
    if not hasattr(os, "sched_setaffinity"):
        warnings.warn(
            "this platform has no sched_setaffinity; running unpinned",
            PinningWarning,
            stacklevel=2,
        )
        return None
    if topology is None:
        topology = cpu_topology()
    pools = [list(dict.fromkeys(int(c) for c in node)) for node in topology]
    pools = [pool for pool in pools if pool]
    total = sum(len(pool) for pool in pools)
    if total < workers:
        warnings.warn(
            f"cannot pin {workers} workers to {total} allowed cpu(s) "
            "(affinity mask or cgroup cpuset too small); running unpinned",
            PinningWarning,
            stacklevel=2,
        )
        return None
    share = total // workers
    if cpus_per_worker is not None:
        share = min(share, max(1, int(cpus_per_worker)))
    share = max(1, share)
    plan: list[tuple[int, ...]] = []
    for _ in range(workers):
        index = max(range(len(pools)), key=lambda i: len(pools[i]))
        pool = pools[index]
        take = min(share, len(pool))
        plan.append(tuple(pool[:take]))
        del pool[:take]
    return plan


def pin_current(cpus: Iterable[int]) -> bool:
    """Pin the calling thread/process to ``cpus``; ``True`` on success.

    Failures (platform without affinity syscalls, cpus outside the
    cgroup cpuset, empty set) warn and return ``False`` — the caller
    keeps running unpinned.
    """
    setter = getattr(os, "sched_setaffinity", None)
    requested = {int(c) for c in cpus}
    if setter is None:
        warnings.warn(
            "this platform has no sched_setaffinity; running unpinned",
            PinningWarning,
            stacklevel=2,
        )
        return False
    try:
        setter(0, requested)
    except (OSError, ValueError) as exc:
        warnings.warn(
            f"could not pin to cpus {sorted(requested)}: {exc}; "
            "running unpinned",
            PinningWarning,
            stacklevel=2,
        )
        return False
    return True


def first_touch(*arrays: np.ndarray, page_bytes: int = 4096) -> int:
    """Touch one element per page of each array from the calling thread.

    Faults the arrays' pages into the caller's locality domain — for
    freshly mapped shared-memory stripes this warms the worker's page
    tables and, on a pinned worker, pulls the pages toward its NUMA node
    before the serving loop starts.  (True first-touch *placement* only
    applies to pages never written before; stripes copied parent-side
    are already placed, so for them this is a best-effort warm.)  Returns
    the number of elements touched; purely a read, never mutates.
    """
    touched = 0
    for array in arrays:
        arr = np.asarray(array)
        if arr.size == 0:
            continue
        flat = arr.reshape(-1) if arr.flags.c_contiguous else arr.ravel()
        stride = max(1, page_bytes // max(1, flat.itemsize))
        sample = flat[::stride]
        # The reduction forces the reads; the value is discarded.
        np.add.reduce(sample, axis=None)
        touched += int(sample.size)
    return touched
