"""Hardware autotuning and placement for the serving stack.

Every perf-critical knob in the repo used to be a static default:
``tile_rows`` (kernel tiling), ``stream_block`` (Engine block width),
``max_batch``/``max_wait_ms`` (Scheduler), worker and shard counts,
Numba thread count.  This package measures the actual machine and picks
them, in three layers:

1. **Measurement** — :func:`repro.tune.probe.probe_measurements` times
   the real kernels (``spmv``/``spmm``/``spmm_tiled``/
   ``select_top_k_many``) on the live graph (or a scaled stand-in)
   across a small grid of tile heights, block widths, and thread counts.
2. **Decision** — :func:`autotune` wraps the probe in a versioned
   on-disk cache (``~/.cache/repro/tune-<machine-fingerprint>.json``)
   keyed on a hardware fingerprint; :class:`TuneProfile` holds the
   picked knobs, ``TuneProfile.apply()`` installs the process-global
   ones, and ``Engine(tune=...)`` / ``Server(tune=...)`` /
   ``Router(tune=...)`` resolve the per-instance ones.  Precedence is
   always ``explicit arg > env var > tuned profile > static default``.
3. **Placement** — :mod:`repro.tune.pinning` pins shard worker
   processes and server worker threads to disjoint cores, NUMA-aware
   when ``/sys/devices/system/node`` exists, degrading to unpinned with
   a :class:`~repro.tune.pinning.PinningWarning` everywhere else.

None of it changes results: tuning and pinning pick schedules, and
every schedule is bitwise identical by the kernel layer's contract
(asserted across thread counts and pinned/unpinned runs in the suite).
"""

from __future__ import annotations

from repro.tune.fingerprint import (
    MachineFingerprint,
    machine_fingerprint,
)
from repro.tune.pinning import (
    PinningWarning,
    cpu_topology,
    first_touch,
    pin_current,
    plan_pinning,
)
from repro.tune.probe import probe_measurements
from repro.tune.profile import (
    PROFILE_SCHEMA,
    TuneProfile,
    autotune,
    cache_dir,
    cache_path,
    derive_profile,
    load_cached,
)

__all__ = [
    "MachineFingerprint",
    "machine_fingerprint",
    "PinningWarning",
    "cpu_topology",
    "plan_pinning",
    "pin_current",
    "first_touch",
    "probe_measurements",
    "PROFILE_SCHEMA",
    "TuneProfile",
    "autotune",
    "derive_profile",
    "cache_dir",
    "cache_path",
    "load_cached",
]
