"""Tuned profiles: measurements → knob recommendations, cached on disk.

A :class:`TuneProfile` bundles a machine fingerprint, the raw probe
measurements, and the knobs derived from them.  Profiles round-trip
through a versioned JSON cache under ``~/.cache/repro/`` (respecting
``XDG_CACHE_HOME``; ``REPRO_TUNE_CACHE`` overrides the directory
outright, which tests use) named ``tune-<fingerprint-key>.json`` — the
fingerprint key hashes CPU model, topology, affinity, cgroup quota,
backend, dtype, and library versions, so invalidation is structural:
a changed machine simply never finds the old file.

Precedence contract (enforced by :meth:`TuneProfile.apply` and the
``tune=`` parameters on Engine / Server / Router)::

    explicit argument  >  environment variable  >  tuned profile  >  static default

``apply()`` therefore skips any global knob whose environment override
is set: ``REPRO_KERNEL_TILE`` beats the tuned ``tile_rows``,
``REPRO_KERNEL_THREADS`` beats the tuned thread count.  Constructor
sites skip the profile whenever the caller passed an explicit value.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.exceptions import ParameterError
from repro.tune.fingerprint import MachineFingerprint, machine_fingerprint

__all__ = [
    "PROFILE_SCHEMA",
    "TuneProfile",
    "cache_dir",
    "cache_path",
    "load_cached",
    "derive_profile",
    "autotune",
]

PROFILE_SCHEMA = "repro-tune-profile/1"

#: Scheduler-knob clamps: a tuned micro-batch must stay inside the range
#: the Scheduler's own validation (and sane latency) accepts.
_MIN_BATCH, _MAX_BATCH = 8, 1024
_MIN_WAIT_MS, _MAX_WAIT_MS = 0.5, 8.0


def cache_dir() -> Path:
    """Directory tuned profiles are cached in (created on first save)."""
    override = os.environ.get("REPRO_TUNE_CACHE", "").strip()
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_path(fingerprint: MachineFingerprint) -> Path:
    """The cache file a profile for ``fingerprint`` lives at."""
    return cache_dir() / f"tune-{fingerprint.key()}.json"


@dataclass(frozen=True)
class TuneProfile:
    """Fingerprint + measurements + the knobs derived from them."""

    fingerprint: MachineFingerprint
    measurements: dict
    tile_rows: int
    stream_block: int
    kernel_threads: int | None
    workers: int
    shards: int
    max_batch: int
    max_wait_ms: float
    probe_seconds: float
    created_at: str = ""

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "fingerprint": self.fingerprint.to_dict(),
            "fingerprint_key": self.fingerprint.key(),
            "measurements": self.measurements,
            "tile_rows": int(self.tile_rows),
            "stream_block": int(self.stream_block),
            "kernel_threads": (
                None if self.kernel_threads is None else int(self.kernel_threads)
            ),
            "workers": int(self.workers),
            "shards": int(self.shards),
            "max_batch": int(self.max_batch),
            "max_wait_ms": float(self.max_wait_ms),
            "probe_seconds": float(self.probe_seconds),
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuneProfile":
        schema = payload.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ParameterError(
                f"unsupported tune-profile schema {schema!r}; "
                f"expected {PROFILE_SCHEMA!r}"
            )
        kernel_threads = payload.get("kernel_threads")
        return cls(
            fingerprint=MachineFingerprint.from_dict(
                payload.get("fingerprint", {})
            ),
            measurements=dict(payload.get("measurements", {})),
            tile_rows=int(payload["tile_rows"]),
            stream_block=int(payload["stream_block"]),
            kernel_threads=(
                None if kernel_threads is None else int(kernel_threads)
            ),
            workers=int(payload["workers"]),
            shards=int(payload["shards"]),
            max_batch=int(payload["max_batch"]),
            max_wait_ms=float(payload["max_wait_ms"]),
            probe_seconds=float(payload.get("probe_seconds", 0.0)),
            created_at=str(payload.get("created_at", "")),
        )

    def save(self, path: str | Path | None = None) -> Path:
        """Write the profile as JSON; defaults to its cache location."""
        target = Path(path) if path is not None else cache_path(self.fingerprint)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "TuneProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def apply(self) -> dict[str, object]:
        """Apply the profile's *global* knobs; returns what happened.

        Sets the kernel tile height and thread count — the two knobs
        with process-global state — honoring the precedence contract:
        a set ``REPRO_KERNEL_TILE`` / ``REPRO_KERNEL_THREADS`` wins over
        the profile and the knob is reported ``"env-override"`` instead
        of applied.  Per-instance knobs (``stream_block``, worker/shard
        counts, scheduler limits) are resolved at the constructors that
        accept ``tune=``; ``apply()`` deliberately does not touch them.
        """
        from repro import kernels

        applied: dict[str, object] = {}
        if os.environ.get("REPRO_KERNEL_TILE", "").strip():
            applied["tile_rows"] = "env-override"
        else:
            kernels.set_tile_rows(self.tile_rows)
            applied["tile_rows"] = self.tile_rows
        if os.environ.get("REPRO_KERNEL_THREADS", "").strip():
            applied["kernel_threads"] = "env-override"
        elif self.kernel_threads is not None:
            kernels.set_num_threads(self.kernel_threads)
            applied["kernel_threads"] = self.kernel_threads
        else:
            applied["kernel_threads"] = None
        return applied

    def matches(self, fingerprint: MachineFingerprint) -> bool:
        """Whether this profile was measured under ``fingerprint``."""
        return self.fingerprint.key() == fingerprint.key()


def _argmin(table: dict) -> int | None:
    """Key of the smallest value; ties break toward the smaller key."""
    if not table:
        return None
    return int(min(table.items(), key=lambda kv: (kv[1], int(kv[0])))[0])


def derive_profile(
    fingerprint: MachineFingerprint,
    measurements: dict,
    probe_seconds: float,
    created_at: str = "",
) -> TuneProfile:
    """Turn raw probe measurements into a :class:`TuneProfile`.

    Measured knobs (``tile_rows``, ``stream_block``, ``kernel_threads``)
    take the fastest grid cell — ``stream_block`` by *per-column* time,
    since a wider product always costs more in total but may amortize
    better.  Placement knobs (``workers``, ``shards``) come from the
    fingerprint: one shard per NUMA node when there are several,
    otherwise up to four shards over the effective cores, and the
    remaining cores become each shard's kernel threads.
    """
    tiles = {int(k): float(v) for k, v in measurements.get(
        "spmm_tile_seconds", {}).items()}
    blocks = {int(k): float(v) for k, v in measurements.get(
        "spmm_block_seconds", {}).items()}
    threads = {int(k): float(v) for k, v in measurements.get(
        "spmm_thread_seconds", {}).items()}

    from repro.kernels.tiling import DEFAULT_TILE_ROWS

    tile_rows = _argmin(tiles) or DEFAULT_TILE_ROWS
    per_column = {w: s / w for w, s in blocks.items()}
    stream_block = _argmin(per_column) or 128
    kernel_threads = _argmin(threads)

    cores = fingerprint.effective_cpus()
    numa_count = len(fingerprint.numa)
    if numa_count > 1:
        shards = min(numa_count, cores)
    else:
        shards = max(1, min(4, cores))
    workers = max(1, min(4, cores))
    if kernel_threads is not None:
        # One shard process per core group; its kernels use the rest.
        kernel_threads = max(1, min(kernel_threads, cores // shards or 1))

    max_batch = max(_MIN_BATCH, min(_MAX_BATCH, int(stream_block)))
    block_seconds = blocks.get(int(stream_block))
    if block_seconds is None:
        max_wait_ms = 2.0
    else:
        # Coalescing longer than one block product buys nothing.
        max_wait_ms = min(
            _MAX_WAIT_MS, max(_MIN_WAIT_MS, block_seconds * 1e3)
        )

    return TuneProfile(
        fingerprint=fingerprint,
        measurements=dict(measurements),
        tile_rows=int(tile_rows),
        stream_block=int(stream_block),
        kernel_threads=kernel_threads,
        workers=int(workers),
        shards=int(shards),
        max_batch=int(max_batch),
        max_wait_ms=float(round(max_wait_ms, 3)),
        probe_seconds=float(probe_seconds),
        created_at=created_at,
    )


def load_cached(
    fingerprint: MachineFingerprint | None = None,
) -> TuneProfile | None:
    """The cached profile for this machine, or ``None``.

    ``None`` covers every miss mode the same way: no cache file, a
    corrupt file, an old schema version, or a profile whose fingerprint
    no longer matches (the key is in the filename *and* re-checked in
    the payload, so a renamed file cannot smuggle stale knobs in).
    """
    if fingerprint is None:
        fingerprint = machine_fingerprint()
    path = cache_path(fingerprint)
    try:
        profile = TuneProfile.load(path)
    except (OSError, ValueError, KeyError, ParameterError):
        return None
    if not profile.matches(fingerprint):
        return None
    return profile


def autotune(
    graph=None,
    *,
    force: bool = False,
    save: bool = True,
    **probe_kwargs,
) -> TuneProfile:
    """The tuned profile for this machine: cached if available, else
    freshly measured (and saved unless ``save=False``).

    ``force=True`` re-measures even when a cached profile exists.  Extra
    keyword arguments go to
    :func:`repro.tune.probe.probe_measurements` (grid and graph-size
    controls).
    """
    from datetime import datetime, timezone

    from repro.tune.probe import probe_measurements

    fingerprint = machine_fingerprint()
    if not force:
        cached = load_cached(fingerprint)
        if cached is not None:
            return cached
    begin = time.perf_counter()
    measurements = probe_measurements(
        graph, fingerprint=fingerprint, **probe_kwargs
    )
    probe_seconds = time.perf_counter() - begin
    profile = derive_profile(
        fingerprint,
        measurements,
        probe_seconds,
        created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )
    if save:
        profile.save()
    return profile


def _replace(profile: TuneProfile, **fields) -> TuneProfile:
    """Dataclass ``replace`` re-exported for tests building variants."""
    return replace(profile, **fields)
