"""Hardware fingerprinting for the autotuner.

A :class:`MachineFingerprint` captures everything that makes a tuned
profile transferable — or not: CPU model, logical core count, the CPU
set this process may actually run on (``sched_getaffinity``), NUMA
topology, any cgroup CPU quota (containers routinely grant 1.5 cores of
a 64-core host), the kernel backend and compute dtype, and the library
versions the measured kernels compile under.  Profiles are cached on
disk keyed by :meth:`MachineFingerprint.key`, so a profile tuned inside
a quota-limited container never configures a bare-metal run and a
Numba-measured profile never configures the NumPy fallback.

The same fingerprint is stamped into every ``benchmarks/record.py``
entry and every serving bench report, so single-core authoring-container
numbers are distinguishable from CI multi-core numbers at a glance.

Everything here degrades gracefully: missing ``/proc``, ``/sys`` or
cgroup files simply leave fields ``None`` (macOS, restricted sandboxes).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from dataclasses import dataclass, field

import numpy as np


def _read_text(path: str) -> str | None:
    try:
        with open(path, "r", encoding="ascii") as handle:
            return handle.read()
    except OSError:
        return None


def _cpu_model(proc_cpuinfo: str = "/proc/cpuinfo") -> str | None:
    """The first ``model name`` line of ``/proc/cpuinfo`` (Linux)."""
    text = _read_text(proc_cpuinfo)
    if text is None:
        return platform.processor() or None
    for line in text.splitlines():
        if line.lower().startswith("model name"):
            _, _, value = line.partition(":")
            return value.strip() or None
    return platform.processor() or None


def parse_cpulist(text: str) -> tuple[int, ...]:
    """Parse the kernel's cpulist format (``"0-3,8-11"``) into cpu ids."""
    cpus: list[int] = []
    for chunk in text.strip().split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        start, dash, end = chunk.partition("-")
        if dash:
            cpus.extend(range(int(start), int(end) + 1))
        else:
            cpus.append(int(chunk))
    return tuple(sorted(set(cpus)))


def numa_nodes(
    sysfs: str = "/sys/devices/system/node",
) -> dict[int, tuple[int, ...]]:
    """NUMA node id -> cpu ids, from sysfs.  Empty when unavailable."""
    nodes: dict[int, tuple[int, ...]] = {}
    try:
        entries = sorted(os.listdir(sysfs))
    except OSError:
        return nodes
    for entry in entries:
        if not entry.startswith("node") or not entry[4:].isdigit():
            continue
        text = _read_text(os.path.join(sysfs, entry, "cpulist"))
        if text is None:
            continue
        cpus = parse_cpulist(text)
        if cpus:
            nodes[int(entry[4:])] = cpus
    return nodes


def cgroup_cpu_quota(cgroup_root: str = "/sys/fs/cgroup") -> float | None:
    """Effective CPU quota in cores from cgroup v2 or v1, else ``None``.

    cgroup v2 exposes ``cpu.max`` (``"<quota> <period>"`` or ``"max
    <period>"``); v1 exposes ``cpu/cpu.cfs_quota_us`` / ``cfs_period_us``
    with ``-1`` meaning unlimited.  Unlimited quotas return ``None`` —
    only an actual restriction is worth recording.
    """
    text = _read_text(os.path.join(cgroup_root, "cpu.max"))
    if text is not None:
        quota_str, _, period_str = text.strip().partition(" ")
        if quota_str != "max":
            try:
                quota, period = float(quota_str), float(period_str)
            except ValueError:
                return None
            if quota > 0 and period > 0:
                return quota / period
        return None
    quota_text = _read_text(os.path.join(cgroup_root, "cpu", "cpu.cfs_quota_us"))
    period_text = _read_text(
        os.path.join(cgroup_root, "cpu", "cpu.cfs_period_us")
    )
    if quota_text is None or period_text is None:
        return None
    try:
        quota, period = float(quota_text), float(period_text)
    except ValueError:
        return None
    if quota > 0 and period > 0:
        return quota / period
    return None


def affinity_cpus() -> tuple[int, ...]:
    """CPU ids this process may run on (all cpus where unsupported)."""
    getter = getattr(os, "sched_getaffinity", None)
    if getter is None:
        return tuple(range(os.cpu_count() or 1))
    try:
        return tuple(sorted(getter(0)))
    except OSError:  # pragma: no cover - exotic kernels
        return tuple(range(os.cpu_count() or 1))


def _numba_version() -> str | None:
    from repro.kernels import numba_available

    if not numba_available():
        return None
    try:
        import numba
    except ImportError:  # pragma: no cover - race with uninstall
        return None
    return str(numba.__version__)


@dataclass(frozen=True)
class MachineFingerprint:
    """Identity of (machine, numeric configuration) a profile is valid for."""

    cpu_model: str | None
    cpu_count: int
    affinity: tuple[int, ...]
    numa: dict[int, tuple[int, ...]] = field(default_factory=dict)
    cgroup_quota: float | None = None
    backend: str = "numpy"
    dtype: str = "float64"
    numba_version: str | None = None
    numpy_version: str = ""

    def effective_cpus(self) -> int:
        """Cores genuinely available: affinity mask capped by cgroup quota."""
        cores = len(self.affinity) or 1
        if self.cgroup_quota is not None:
            cores = min(cores, max(1, int(self.cgroup_quota)))
        return cores

    def to_dict(self) -> dict:
        return {
            "cpu_model": self.cpu_model,
            "cpu_count": self.cpu_count,
            "affinity": list(self.affinity),
            "numa": {str(k): list(v) for k, v in sorted(self.numa.items())},
            "cgroup_quota": self.cgroup_quota,
            "backend": self.backend,
            "dtype": self.dtype,
            "numba_version": self.numba_version,
            "numpy_version": self.numpy_version,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MachineFingerprint":
        return cls(
            cpu_model=payload.get("cpu_model"),
            cpu_count=int(payload.get("cpu_count", 1)),
            affinity=tuple(int(c) for c in payload.get("affinity", ())),
            numa={
                int(k): tuple(int(c) for c in v)
                for k, v in payload.get("numa", {}).items()
            },
            cgroup_quota=payload.get("cgroup_quota"),
            backend=str(payload.get("backend", "numpy")),
            dtype=str(payload.get("dtype", "float64")),
            numba_version=payload.get("numba_version"),
            numpy_version=str(payload.get("numpy_version", "")),
        )

    def key(self) -> str:
        """Short stable digest naming the profile cache file.

        Hashes every field: a backend flip, an affinity change, a new
        quota, or a library upgrade each produce a different key, which
        is exactly the invalidation policy — stale profiles are never
        *read*, they are simply never found.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def machine_fingerprint(
    backend: str | None = None, dtype: str | None = None
) -> MachineFingerprint:
    """Fingerprint the current process's machine and kernel configuration."""
    from repro import kernels

    return MachineFingerprint(
        cpu_model=_cpu_model(),
        cpu_count=os.cpu_count() or 1,
        affinity=affinity_cpus(),
        numa=numa_nodes(),
        cgroup_quota=cgroup_cpu_quota(),
        backend=backend if backend is not None else kernels.get_backend(),
        dtype=(
            dtype
            if dtype is not None
            else np.dtype(kernels.compute_dtype()).name
        ),
        numba_version=_numba_version(),
        numpy_version=str(np.__version__),
    )
