"""Micro-benchmark probe: time the actual kernels on the actual machine.

The measure-then-pick idiom (DGL's ASV kernel benchmarks run the same
way): every knob the serving stack exposes is decided by timing the
kernels it gates —

* ``spmm_tiled`` across a small grid of tile heights → ``tile_rows``;
* ``spmm`` across a grid of operand widths → ``stream_block`` (and the
  scheduler's ``max_batch``/``max_wait_ms``, which bound how wide a
  micro-batch can grow and how long coalescing may stall it);
* ``spmm`` across a thread-count grid (Numba backend only) →
  ``kernels.set_num_threads`` — thread counts never change results, so
  the grid only trades wall-clock;
* ``spmv`` and ``select_top_k_many`` once each, recorded for the
  trajectory (they share the SpMM's winning configuration).

Timings are best-of-N wall clock on the live graph when it is small
enough, otherwise on a scaled synthetic stand-in with the same average
degree (recorded in the measurements, so a proxy probe is never mistaken
for a native one).  The whole probe is budgeted to stay well under the
60-second ceiling ``repro tune`` promises.
"""

from __future__ import annotations

import time

import numpy as np

from repro import kernels
from repro.tune.fingerprint import MachineFingerprint

__all__ = [
    "DEFAULT_TILE_GRID",
    "DEFAULT_BLOCK_GRID",
    "probe_measurements",
]

#: Tile heights the probe races (DEFAULT_TILE_ROWS and one step each way).
DEFAULT_TILE_GRID = (1024, 4096, 16384)

#: Stream-block widths the probe races (the Engine default 128 included).
DEFAULT_BLOCK_GRID = (32, 64, 128, 256)

#: Probe graphs larger than this are replaced by a same-degree stand-in.
_MAX_PROBE_NODES = 50_000

#: Ranking width of the top-k sample (matches benchmarks/record.py).
_PROBE_TOPK = 100


def _best_of(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - begin)
    return min(samples)


def _thread_grid(fingerprint: MachineFingerprint) -> tuple[int, ...]:
    """Powers of two up to the effective core count, the count included."""
    cores = fingerprint.effective_cpus()
    grid = []
    n = 1
    while n < cores:
        grid.append(n)
        n *= 2
    grid.append(cores)
    return tuple(dict.fromkeys(grid))


def _probe_graph(graph, nodes: int, avg_degree: int):
    """The live graph when it fits the probe budget, else a stand-in."""
    from repro.graph.generators import community_graph

    if graph is not None and graph.num_nodes <= _MAX_PROBE_NODES:
        return graph, False
    if graph is not None:
        nodes = _MAX_PROBE_NODES
        avg_degree = max(1, round(graph.num_edges / graph.num_nodes))
    return (
        community_graph(
            nodes,
            avg_degree=avg_degree,
            num_communities=max(8, nodes // 500),
            seed=7,
        ),
        graph is not None,
    )


def probe_measurements(
    graph=None,
    *,
    nodes: int = 8000,
    avg_degree: int = 12,
    tile_grid: tuple[int, ...] = DEFAULT_TILE_GRID,
    block_grid: tuple[int, ...] = DEFAULT_BLOCK_GRID,
    thread_grid: tuple[int, ...] | None = None,
    repeats: int = 3,
    fingerprint: MachineFingerprint | None = None,
) -> dict:
    """Run the micro-bench grid; returns the raw measurements dict.

    ``graph`` is the live serving graph (``None`` builds a synthetic
    community graph of ``nodes``/``avg_degree``).  All timings are
    best-of-``repeats`` seconds.  The thread grid runs only on the Numba
    backend and always restores the prior thread policy — probing must
    not leave the process reconfigured.
    """
    from repro.tune.fingerprint import machine_fingerprint

    if fingerprint is None:
        fingerprint = machine_fingerprint()
    graph, scaled = _probe_graph(graph, nodes, avg_degree)
    dtype = kernels.compute_dtype()
    rng = np.random.default_rng(0)
    n = graph.num_nodes
    operator = graph.decayed_operator(1.0, dtype=dtype)

    widths = tuple(sorted({int(w) for w in block_grid if int(w) >= 1}))
    max_width = max(widths)
    mat = rng.random((n, max_width)).astype(dtype)
    mat_out = np.empty_like(mat)
    vec = rng.random(n).astype(dtype)
    vec_out = np.empty_like(vec)

    # Warm-up pass: JIT compilation and page faults land here, not in a
    # grid cell (a cold first cell would crown whatever ran second).
    kernels.spmv(operator, vec, out=vec_out)
    kernels.spmm(operator, mat, out=mat_out)

    spmv_seconds = _best_of(
        lambda: kernels.spmv(operator, vec, out=vec_out), repeats
    )

    blocks: dict[int, float] = {}
    for width in widths:
        x = np.ascontiguousarray(mat[:, :width])
        out = np.empty_like(x)
        kernels.spmm(operator, x, out=out)
        blocks[width] = _best_of(
            lambda x=x, out=out: kernels.spmm(operator, x, out=out), repeats
        )

    tiles: dict[int, float] = {}
    ref_width = min(64, max_width)
    tile_x = np.ascontiguousarray(mat[:, :ref_width])
    tile_out = np.empty_like(tile_x)
    for height in sorted({int(t) for t in tile_grid if int(t) >= 1}):
        tiling = kernels.row_tiling(n, tile_height=height)
        kernels.spmm_tiled(operator, tile_x, out=tile_out, tiling=tiling)
        tiles[height] = _best_of(
            lambda tiling=tiling: kernels.spmm_tiled(
                operator, tile_x, out=tile_out, tiling=tiling
            ),
            repeats,
        )

    k = min(_PROBE_TOPK, n - 1)
    scores = np.ascontiguousarray(mat[:, :ref_width].T)
    topk_out = np.empty((scores.shape[0], k), dtype=np.int64)
    kernels.select_top_k_many(scores, k, out=topk_out)
    topk_seconds = _best_of(
        lambda: kernels.select_top_k_many(scores, k, out=topk_out), repeats
    )

    threads: dict[int, float] = {}
    if kernels.get_backend() == "numba":
        if thread_grid is None:
            thread_grid = _thread_grid(fingerprint)
        previous = kernels.kernel_threads()
        try:
            for count in thread_grid:
                kernels.set_num_threads(int(count))
                applied = kernels.num_threads()
                if applied in threads:  # clamped duplicates collapse
                    continue
                kernels.spmm(operator, tile_x, out=tile_out)
                threads[applied] = _best_of(
                    lambda: kernels.spmm(operator, tile_x, out=tile_out),
                    repeats,
                )
        finally:
            kernels.set_num_threads(previous)

    return {
        "graph": {
            "nodes": int(n),
            "edges": int(graph.num_edges),
            "scaled_standin": bool(scaled),
        },
        "backend": kernels.get_backend(),
        "dtype": np.dtype(dtype).name,
        "repeats": int(repeats),
        "spmv_seconds": spmv_seconds,
        "topk_seconds": topk_seconds,
        "topk_k": int(k),
        "spmm_block_seconds": {str(w): s for w, s in blocks.items()},
        "spmm_tile_seconds": {str(t): s for t, s in tiles.items()},
        "spmm_thread_seconds": {str(c): s for c, s in threads.items()},
    }
