"""Method registry: one place that knows how to build every RWR method.

Before the engine existed, the CLI and the experiment harness each kept
their own ad-hoc ``name -> factory`` dict; this module replaces both.
Names are matched case-insensitively with ``-``/``_`` stripped, so
``"TPA"``, ``"tpa"``, ``"NB_LIN"`` and ``"nblin"`` all resolve, as do the
paper-style aliases (``"BEAR_APPROX"`` for ``bear``).

>>> from repro.engine import available_methods, create_method
>>> "tpa" in available_methods()
True
>>> create_method("tpa", s_iteration=5, t_iteration=10).name
'TPA'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines import (
    BiPPR,
    BRPPR,
    BearApprox,
    BePI,
    FastPPR,
    Fora,
    HubPPR,
    NBLin,
    RPPR,
)
from repro.core.cpi import CPIMethod
from repro.core.tpa import TPA
from repro.exceptions import ParameterError
from repro.method import PPRMethod

__all__ = [
    "MethodSpec",
    "register_method",
    "available_methods",
    "create_method",
    "method_spec",
]


@dataclass(frozen=True)
class MethodSpec:
    """Registry entry for one method family.

    Attributes
    ----------
    name:
        Canonical registry key (lowercase, e.g. ``"tpa"``).
    factory:
        Constructor; keyword arguments from :func:`create_method` are
        forwarded verbatim.
    description:
        One-line summary shown by tooling.
    aliases:
        Alternative spellings accepted by :func:`create_method`.
    """

    name: str
    factory: Callable[..., PPRMethod]
    description: str
    aliases: tuple[str, ...] = ()


_REGISTRY: dict[str, MethodSpec] = {}
_LOOKUP: dict[str, str] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "").replace("_", "")


def register_method(
    name: str,
    factory: Callable[..., PPRMethod],
    description: str = "",
    aliases: tuple[str, ...] = (),
) -> MethodSpec:
    """Register a method family under ``name`` (plus ``aliases``).

    Raises :class:`~repro.exceptions.ParameterError` when a spelling
    collides with an already-registered method.
    """
    spec = MethodSpec(name, factory, description, tuple(aliases))
    for spelling in (name, *aliases):
        key = _normalize(spelling)
        if key in _LOOKUP and _LOOKUP[key] != name:
            raise ParameterError(
                f"method name {spelling!r} collides with registered "
                f"method {_LOOKUP[key]!r}"
            )
    _REGISTRY[name] = spec
    for spelling in (name, *aliases):
        _LOOKUP[_normalize(spelling)] = name
    return spec


def available_methods() -> tuple[str, ...]:
    """Canonical names of every registered method, sorted."""
    return tuple(sorted(_REGISTRY))


def method_spec(name: str) -> MethodSpec:
    """Resolve ``name`` (canonical or alias, any case) to its spec."""
    key = _normalize(name)
    if key not in _LOOKUP:
        known = ", ".join(available_methods())
        raise ParameterError(f"unknown method {name!r}; available: {known}")
    return _REGISTRY[_LOOKUP[key]]


def create_method(name: str, **params) -> PPRMethod:
    """Construct a method by registry name, forwarding ``params``.

    >>> create_method("bear", hub_ratio=0.01).name
    'BEAR_APPROX'
    """
    return method_spec(name).factory(**params)


# -- the built-in suite ---------------------------------------------------------

register_method(
    "tpa", TPA,
    "Two-Phase Approximation (the paper's method): stranger vector "
    "preprocessing, family + scaled-neighbor online phase.",
)
register_method(
    "cpi", CPIMethod,
    "Exact RWR by Cumulative Power Iteration (Algorithm 1), run to "
    "convergence; the no-preprocessing exact reference.",
)
register_method(
    "brppr", BRPPR,
    "Boundary-Restricted PPR (Gleich & Polito 2006): converged restricted "
    "solves with frontier expansion; online-only.",
)
register_method(
    "rppr", RPPR,
    "Restricted PPR: like BRPPR but activates vertices on the fly during "
    "a single sweep to convergence.",
)
register_method(
    "fora", Fora,
    "FORA/FORA+ (Wang et al. 2017): forward push plus indexed "
    "Monte-Carlo walks.",
)
register_method(
    "bear", BearApprox,
    "BEAR-APPROX (Shin et al. 2015): SlashBurn ordering + block "
    "elimination with a drop tolerance.",
    aliases=("bear_approx",),
)
register_method(
    "hubppr", HubPPR,
    "HubPPR (Wang et al. 2016): bidirectional estimation with hub "
    "indexes, adapted to whole-vector queries.",
)
register_method(
    "nblin", NBLin,
    "NB_LIN (Tong et al. 2008): community partitioning, low-rank "
    "cross-part, Sherman-Morrison-Woodbury solve.",
    aliases=("nb_lin",),
)
register_method(
    "bepi", BePI,
    "BePI (Jung et al. 2017): exact block elimination with an iterative "
    "Schur solve; the paper's ground truth.",
)
register_method(
    "bippr", BiPPR,
    "BiPPR (Lofgren et al. 2016): bidirectional pair estimation adapted "
    "to whole-vector queries.",
)
register_method(
    "fastppr", FastPPR,
    "FAST-PPR (Lofgren et al. 2014): frontier-based bidirectional pair "
    "estimation adapted to whole-vector queries.",
)
