"""The batched query engine: preprocess once, answer seed batches forever.

The paper motivates TPA with serving workloads — Twitter's "Who to Follow"
runs top-500 RWR queries for millions of users against one preprocessed
graph.  :class:`Engine` packages that lifecycle: it owns a preprocessed
:class:`~repro.method.PPRMethod`, validates request batches in bulk, routes
them through the vectorized :meth:`~repro.method.PPRMethod.query_many`
online phase, optionally caches score vectors per seed (LRU), and returns
:class:`QueryResult` records that carry the measurements every consumer
used to re-derive by hand (wall-time, preprocessed bytes, error bound).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro import kernels
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.kernels import select_top_k_many
from repro.method import PPRMethod, banned_mask, banned_mask_many, select_top_k

__all__ = ["QueryRequest", "QueryResult", "Engine"]

#: Default column-block width of the streamed top-k path: batches larger
#: than this are scored block by block with selection fused into the
#: loop, so the full ``n x batch`` score matrix never materializes.
_DEFAULT_STREAM_BLOCK = 128


@dataclass(frozen=True)
class QueryRequest:
    """One RWR query against a preprocessed graph.

    Attributes
    ----------
    seed:
        Query node (compact id).
    k:
        ``None`` requests the full score vector; an integer requests the
        top-``k`` ranking instead (ids plus their scores).
    exclude_seed:
        For top-k requests, drop the seed from the ranking (it always
        carries at least mass ``c``).  Ignored for full-vector requests.
    exclude_neighbors:
        For top-k requests, also drop the seed's existing out-neighbors —
        the recommendation setting where known links are not re-suggested.
    """

    seed: int
    k: int | None = None
    exclude_seed: bool = True
    exclude_neighbors: bool = False


@dataclass(frozen=True)
class QueryResult:
    """Structured outcome of one query.

    Exactly one of ``scores`` / (``top_nodes``, ``top_scores``) is
    populated, matching the request shape.

    Attributes
    ----------
    seed:
        The queried node.
    method:
        Name of the answering method (e.g. ``"TPA"``).
    seconds:
        Online wall-time attributed to this query.  Queries answered from
        one batched online pass share its wall-time evenly; cache hits
        report ``0.0``.
    preprocessed_bytes:
        Size of the method's resident preprocessed data.
    scores:
        Full length-``n`` score vector (full-vector requests only).
    top_nodes:
        Top-``k`` node ids, best first (top-k requests only; may be
        shorter than ``k`` when exclusions leave fewer nodes).
    top_scores:
        Scores of ``top_nodes``.
    error_bound:
        The method's guaranteed L1 error bound, when it provides one
        (e.g. TPA's Theorem 2 bound ``2(1-c)^S``); ``None`` otherwise.
    cached:
        Whether the score vector was reused rather than computed for this
        request (an LRU-cache hit or an intra-batch duplicate seed).
    """

    seed: int
    method: str
    seconds: float
    preprocessed_bytes: int
    scores: np.ndarray | None = None
    top_nodes: np.ndarray | None = None
    top_scores: np.ndarray | None = None
    error_bound: float | None = None
    cached: bool = False


class Engine:
    """Preprocess-once / query-many facade over a :class:`PPRMethod`.

    Parameters
    ----------
    method:
        The RWR method.  If it is not yet preprocessed, ``graph`` is
        required and preprocessing runs in the constructor (timed; see
        :attr:`preprocess_seconds`).  An already-preprocessed method is
        adopted as-is, e.g. one rebuilt via ``TPA.load``.
    graph:
        Graph to preprocess for.  Optional when ``method`` is already
        bound to one.
    cache_size:
        Capacity (in seeds) of the optional LRU score-vector cache; ``0``
        (default) disables caching.  Cached vectors are stored read-only
        and keyed by ``(seed, backend, compute dtype)`` — switching the
        kernel backend or the float32 policy mid-serve can never replay a
        vector computed under the previous numeric configuration.
    reorder:
        ``"slashburn"`` relabels the graph into SlashBurn hub/spoke order
        before preprocessing (:func:`repro.kernels.locality_reordering`),
        which clusters each CSR row's column gathers and makes the
        blocked ``(n, B)`` SpMM of the online phase cache friendly.  A
        hub-aligned row tiling is attached to the serving graph at the
        same time (:meth:`~repro.kernels.LocalityReordering.spmm_tiling`,
        tunable via ``REPRO_KERNEL_TILE`` /
        :func:`repro.kernels.set_tile_rows`), so every batched iterate
        runs the tiled SpMM schedule.  The engine translates seeds and
        results at the boundary, so callers keep using original node ids
        throughout.  Requires ``graph`` (an already-preprocessed method
        is bound to its node ordering).  ``None`` (default) serves in the
        input ordering.
    stream_block:
        Column-block width of the streamed top-k path (default 128).
        :meth:`serve` always scores at most this many seeds at a time,
        and :meth:`batch` switches to the same streamed schedule when a
        cache-less batch of pure top-k requests has more distinct seeds
        than one block — selection is fused into the block loop, so the
        full ``n x batch`` score matrix never materializes.

    Examples
    --------
    >>> from repro import Engine, community_graph, create_method
    >>> graph = community_graph(1000, avg_degree=10, seed=7)
    >>> engine = Engine(create_method("tpa"), graph)
    >>> result = engine.query(0, k=10)
    >>> result.top_nodes.shape
    (10,)
    """

    def __init__(
        self,
        method: PPRMethod,
        graph: Graph | None = None,
        cache_size: int = 0,
        reorder: str | None = None,
        stream_block: int | None = None,
    ):
        if cache_size < 0:
            raise ParameterError("cache_size must be non-negative")
        if reorder not in (None, "slashburn"):
            raise ParameterError(
                f"unknown reorder strategy {reorder!r}; "
                "choose 'slashburn' or None"
            )
        if stream_block is None:
            stream_block = _DEFAULT_STREAM_BLOCK
        elif stream_block < 1:
            raise ParameterError("stream_block must be at least 1")
        self._stream_block = int(stream_block)
        self._reordering: kernels.LocalityReordering | None = None
        if reorder is not None:
            if graph is None:
                raise ParameterError(
                    "reorder requires the graph (a preprocessed method is "
                    "already bound to its node ordering)"
                )
            self._reordering = kernels.locality_reordering(graph)
        self._original_graph = graph
        serving_graph = (
            self._reordering.graph if self._reordering is not None else graph
        )
        if self._reordering is not None:
            # Hub-aware tiled execution for every blocked product on the
            # serving operator: the whole point of the SlashBurn order.
            serving_graph.set_spmm_tiling(self._reordering.spmm_tiling())
        if serving_graph is None:
            if not method.is_preprocessed:
                raise ParameterError(
                    "Engine needs a graph to preprocess for, or an "
                    "already-preprocessed method"
                )
            self._preprocess_seconds = 0.0
        elif method.is_preprocessed and method.graph is serving_graph:
            self._preprocess_seconds = 0.0
        else:
            begin = time.perf_counter()
            method.preprocess(serving_graph)
            self._preprocess_seconds = time.perf_counter() - begin
        self._method = method
        self._cache_size = int(cache_size)
        self._cache: OrderedDict[tuple[int, str], np.ndarray] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._queries_served = 0
        self._online_seconds = 0.0
        # Retained serving scratch: per-request banned masks, masked-copy
        # selection buffers, and the reorder gather of the streamed path
        # all reuse these instead of allocating per request.
        self._workspace = kernels.Workspace()

    # -- introspection ---------------------------------------------------------

    @property
    def method(self) -> PPRMethod:
        """The wrapped method (preprocessed)."""
        return self._method

    @property
    def graph(self) -> Graph:
        """The graph in the caller's node-id space (the original graph
        when a locality reordering is active — all request seeds and
        result ids are expressed in it)."""
        if self._original_graph is not None:
            return self._original_graph
        return self._method.graph

    @property
    def reordering(self) -> "kernels.LocalityReordering | None":
        """The active SlashBurn locality reordering, if any."""
        return self._reordering

    @property
    def preprocess_seconds(self) -> float:
        """Wall-time of the preprocessing run the engine performed
        (``0.0`` when it adopted an already-preprocessed method)."""
        return self._preprocess_seconds

    def error_bound(self) -> float | None:
        """The method's guaranteed L1 error bound, if it exposes one."""
        bound = getattr(self._method, "error_bound", None)
        if callable(bound):
            return float(bound())
        return None

    def stats(self) -> dict[str, float]:
        """Serving counters: queries, online seconds, cache hits/misses."""
        return {
            "queries_served": self._queries_served,
            "online_seconds": self._online_seconds,
            "cache_hits": self._hits,
            "cache_misses": self._misses,
            "cache_entries": len(self._cache),
        }

    # -- the online phase ------------------------------------------------------

    def query(
        self,
        seed: int,
        k: int | None = None,
        exclude_seed: bool = True,
        exclude_neighbors: bool = False,
    ) -> QueryResult:
        """Answer a single request (convenience wrapper over :meth:`batch`)."""
        request = QueryRequest(
            seed=seed, k=k, exclude_seed=exclude_seed,
            exclude_neighbors=exclude_neighbors,
        )
        return self.batch([request])[0]

    def batch(self, requests: Iterable[QueryRequest]) -> list[QueryResult]:
        """Answer a request batch with one vectorized online pass.

        Seeds are validated in bulk; distinct uncached seeds are scored by
        a single :meth:`~repro.method.PPRMethod.query_many` call (duplicate
        seeds and cache hits are answered from the same vectors).  Results
        come back in request order.

        Large cache-less batches of pure top-k requests stream instead:
        distinct seeds are scored ``stream_block`` at a time and each
        block's rankings are extracted before the next block is computed,
        so peak memory is one ``n x stream_block`` panel rather than the
        full ``n x batch`` matrix.  Results are identical to the
        materialized path.
        """
        requests = list(requests)
        if not requests:
            return []
        # Validate the whole batch before any compute: a malformed request
        # must not waste (or half-account) a full online pass.
        for request in requests:
            if request.k is not None and request.k < 1:
                raise ParameterError("k must be at least 1")
        seeds = self._method.validate_seeds([r.seed for r in requests])

        if self._cache_size == 0 and all(r.k is not None for r in requests):
            distinct = np.unique(seeds)
            if distinct.size > self._stream_block:
                return self._batch_streamed(requests, seeds)

        # Distinct seeds that truly need the online phase, in first-seen
        # order; everything else is a cache or intra-batch duplicate hit.
        scored: dict[int, np.ndarray | None] = {}
        fresh: list[int] = []
        fresh_set: set[int] = set()
        for seed in seeds.tolist():
            if seed in scored:
                continue
            hit = self._cache_get(seed)
            if hit is not None:
                scored[seed] = hit
                self._hits += 1
            else:
                scored[seed] = None  # placeholder, filled below
                fresh.append(seed)
                fresh_set.add(seed)
                self._misses += 1

        per_query_seconds = 0.0
        if fresh:
            query_seeds = np.asarray(fresh, dtype=np.int64)
            if self._reordering is not None:
                query_seeds = self._reordering.to_reordered[query_seeds]
            begin = time.perf_counter()
            matrix = self._method.query_many(query_seeds)
            elapsed = time.perf_counter() - begin
            per_query_seconds = elapsed / len(fresh)
            self._online_seconds += elapsed
            for row, seed in enumerate(fresh):
                vector = matrix[row]
                if self._reordering is not None:
                    # Back to the caller's node ids: everything below
                    # (cache, exclusion masks, rankings) runs in the
                    # original space.
                    vector = self._reordering.scores_to_original(vector)
                vector = np.ascontiguousarray(vector)
                if self._cache_size:
                    vector.setflags(write=False)
                    self._cache_put(seed, vector)
                scored[seed] = vector

        bytes_resident = self._method.preprocessed_bytes()
        bound = self.error_bound()
        results = []
        for request, seed in zip(requests, seeds.tolist()):
            vector = scored[seed]
            was_fresh = seed in fresh_set
            # Later duplicates of a freshly computed seed are reuse, not
            # compute — charge the batch wall-time once per distinct seed.
            fresh_set.discard(seed)
            base = QueryResult(
                seed=seed,
                method=self._method.name,
                seconds=per_query_seconds if was_fresh else 0.0,
                preprocessed_bytes=bytes_resident,
                error_bound=bound,
                cached=not was_fresh,
            )
            if request.k is None:
                results.append(replace(base, scores=vector))
            else:
                picks = self._rank(vector, seed, request)
                results.append(
                    replace(base, top_nodes=picks, top_scores=vector[picks])
                )
        self._queries_served += len(results)
        return results

    def _rank(
        self, vector: np.ndarray, seed: int, request: QueryRequest
    ) -> np.ndarray:
        """Top-k selection for one request, allocation-free on repeat:
        the banned mask and the masked score copy live in the engine's
        retained workspace instead of being rebuilt per call."""
        n = self.graph.num_nodes
        banned = None
        if request.exclude_seed or request.exclude_neighbors:
            banned = banned_mask(
                self.graph, seed, request.exclude_seed,
                request.exclude_neighbors,
                out=self._workspace.request("rank.banned", (n,), np.bool_),
            )
        return select_top_k(
            vector, request.k, banned,
            scratch=self._workspace.request("rank.masked", (n,), np.float64),
        )

    def _batch_streamed(
        self, requests: list[QueryRequest], seeds: np.ndarray
    ) -> list[QueryResult]:
        """The fused top-k schedule behind :meth:`batch`.

        Distinct seeds are scored ``stream_block`` at a time; every block
        row is ranked (and, under a reordering, translated back to
        original ids) immediately, then the block is reused for the next
        panel — the full score matrix never exists.  Result records match
        the materialized path exactly: the first request of each distinct
        seed carries its share of the block wall-time, duplicates are
        flagged ``cached``.
        """
        requests_by_seed: dict[int, list[int]] = {}
        order: list[int] = []
        for index, seed in enumerate(seeds.tolist()):
            if seed not in requests_by_seed:
                requests_by_seed[seed] = []
                order.append(seed)
            requests_by_seed[seed].append(index)
        self._misses += len(order)

        # The serving shape — every request wants the same (k, exclusion)
        # ranking — runs each block through one compiled
        # select_top_k_many call; mixed batches rank per request (still
        # streamed, just without the fused kernel).
        shapes = {
            (r.k, r.exclude_seed, r.exclude_neighbors) for r in requests
        }
        fused_shape = shapes.pop() if len(shapes) == 1 else None
        bytes_resident = self._method.preprocessed_bytes()
        bound = self.error_bound()
        results: list[QueryResult | None] = [None] * len(requests)
        block = self._stream_block
        for start in range(0, len(order), block):
            chunk = np.asarray(order[start : start + block], dtype=np.int64)
            query_seeds = chunk
            if self._reordering is not None:
                query_seeds = self._reordering.to_reordered[chunk]
            begin = time.perf_counter()
            matrix = self._method.query_many(query_seeds)
            elapsed = time.perf_counter() - begin
            per_query_seconds = elapsed / chunk.size
            self._online_seconds += elapsed
            if self._reordering is not None:
                # Back to the caller's id space in one gather (retained
                # panel buffer; masks and rankings run in original ids).
                panel = self._workspace.request(
                    "stream.original", matrix.shape, matrix.dtype
                )
                np.take(matrix, self._reordering.to_reordered, axis=1,
                        out=panel)
                matrix = panel
            picks_block = (
                self._rank_block(matrix, chunk, *fused_shape)
                if fused_shape is not None
                else None
            )
            for row, seed in enumerate(chunk.tolist()):
                vector = matrix[row]
                for position, index in enumerate(requests_by_seed[seed]):
                    request = requests[index]
                    if picks_block is not None:
                        padded = picks_block[row]
                        picks = padded[padded >= 0]  # strips -1; copies
                    else:
                        picks = self._rank(vector, seed, request)
                    results[index] = QueryResult(
                        seed=seed,
                        method=self._method.name,
                        seconds=per_query_seconds if position == 0 else 0.0,
                        preprocessed_bytes=bytes_resident,
                        error_bound=bound,
                        cached=position > 0,
                        top_nodes=picks,
                        top_scores=vector[picks],
                    )
        self._queries_served += len(requests)
        return results

    def _rank_block(
        self,
        matrix: np.ndarray,
        chunk: np.ndarray,
        k: int,
        exclude_seed: bool,
        exclude_neighbors: bool,
    ) -> np.ndarray:
        """Fused selection for one streamed block of a homogeneous batch:
        vectorized exclusion masks plus one ``select_top_k_many`` call,
        all scratch drawn from the retained workspace.  ``chunk`` holds
        the block's seeds in caller id space; returns the ``-1``-padded
        ``(len(chunk), k)`` id matrix (a retained buffer — rows are
        copied out by the caller)."""
        banned = None
        if exclude_seed or exclude_neighbors:
            banned = banned_mask_many(
                self.graph, chunk, exclude_seed, exclude_neighbors,
                out=self._workspace.request(
                    "stream.banned", matrix.shape, np.bool_
                ),
            )
        return select_top_k_many(
            matrix, k, banned=banned,
            out=self._workspace.request(
                "stream.picks", (matrix.shape[0], int(k)), np.int64
            ),
        )

    def serve(
        self,
        seeds: Sequence[int] | np.ndarray,
        k: int,
        exclude_seeds: bool = True,
        exclude_neighbors: bool = False,
    ) -> np.ndarray:
        """Throughput path: top-``k`` ids for a whole seed batch.

        Skips the per-request bookkeeping of :meth:`batch` and returns the
        ``(len(seeds), k)`` ``int64`` ranking matrix built from
        :meth:`~repro.method.PPRMethod.top_k_many` (rows padded with
        ``-1`` when exclusions leave fewer than ``k`` nodes).  This is the
        paper's Who-to-Follow shape: millions of users, top-500 each.

        The batch is streamed ``stream_block`` seeds at a time, with the
        compiled :func:`repro.kernels.select_top_k_many` selection fused
        into each block — only ``block * k`` ids survive a block, so
        arbitrarily large batches serve in constant memory.
        """
        seeds_arr = self._method.validate_seeds(seeds)
        if self._reordering is not None:
            seeds_arr = self._reordering.to_reordered[seeds_arr]
        block = self._stream_block
        begin = time.perf_counter()
        if seeds_arr.size <= block:
            rankings = self._method.top_k_many(
                seeds_arr, k, exclude_seeds=exclude_seeds,
                exclude_neighbors=exclude_neighbors,
            )
        else:
            rankings = np.empty((seeds_arr.size, int(k)), dtype=np.int64)
            for start in range(0, seeds_arr.size, block):
                stop = min(start + block, seeds_arr.size)
                rankings[start:stop] = self._method.top_k_many(
                    seeds_arr[start:stop], k, exclude_seeds=exclude_seeds,
                    exclude_neighbors=exclude_neighbors,
                )
        self._online_seconds += time.perf_counter() - begin
        if self._reordering is not None:
            rankings = self._reordering.ids_to_original(rankings)
        self._queries_served += rankings.shape[0]
        return rankings

    # -- LRU cache -------------------------------------------------------------
    #
    # Keys are (seed, kernels.cache_token()): the token names the active
    # backend and compute dtype, so a float32 run can never be answered
    # from a cached float64 vector (or vice versa), and entries computed
    # under a different backend never masquerade as the current one's.

    def _cache_get(self, seed: int) -> np.ndarray | None:
        if not self._cache_size:
            return None
        key = (seed, kernels.cache_token())
        vector = self._cache.get(key)
        if vector is not None:
            self._cache.move_to_end(key)
        return vector

    def _cache_put(self, seed: int, vector: np.ndarray) -> None:
        key = (seed, kernels.cache_token())
        self._cache[key] = vector
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop every cached score vector."""
        self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(method={self._method.name}, "
            f"n={self.graph.num_nodes}, cache={self._cache_size})"
        )
