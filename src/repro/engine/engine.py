"""The batched query engine: preprocess once, answer seed batches forever.

The paper motivates TPA with serving workloads — Twitter's "Who to Follow"
runs top-500 RWR queries for millions of users against one preprocessed
graph.  :class:`Engine` packages that lifecycle: it owns a preprocessed
:class:`~repro.method.PPRMethod`, validates request batches in bulk, routes
them through the vectorized :meth:`~repro.method.PPRMethod.query_many`
online phase, optionally caches score vectors per seed (LRU), and returns
:class:`QueryResult` records that carry the measurements every consumer
used to re-derive by hand (wall-time, preprocessed bytes, error bound).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro import kernels
from repro.exceptions import ParameterError
from repro.graph.graph import Graph
from repro.kernels import select_top_k_many
from repro.method import PPRMethod, banned_mask, banned_mask_many, select_top_k
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.serving.cache import ScoreCache

__all__ = ["QueryRequest", "QueryResult", "Engine"]

#: Default column-block width of the streamed top-k path: batches larger
#: than this are scored block by block with selection fused into the
#: loop, so the full ``n x batch`` score matrix never materializes.
_DEFAULT_STREAM_BLOCK = 128

#: Memory budget backing ``stream_block="auto"`` when the caller gives
#: none: the streamed panels (method ping-pong iterates + score panel +
#: exclusion mask) stay within ~64 MiB.
_DEFAULT_STREAM_BUDGET_BYTES = 64 << 20

#: Ceiling of the derived block width — beyond this the fused selection
#: kernels stop gaining and latency per block dominates.
_MAX_STREAM_BLOCK = 4096


@dataclass(frozen=True)
class QueryRequest:
    """One RWR query against a preprocessed graph.

    Attributes
    ----------
    seed:
        Query node (compact id).
    k:
        ``None`` requests the full score vector; an integer requests the
        top-``k`` ranking instead (ids plus their scores).
    exclude_seed:
        For top-k requests, drop the seed from the ranking (it always
        carries at least mass ``c``).  Ignored for full-vector requests.
    exclude_neighbors:
        For top-k requests, also drop the seed's existing out-neighbors —
        the recommendation setting where known links are not re-suggested.
    deadline_ms:
        Serving-path queue deadline.  A request still waiting in the
        scheduler this many milliseconds after submission fails fast
        with :class:`~repro.exceptions.DeadlineExceeded` instead of
        dispatching; once a batch starts computing it always completes.
        ``None`` (default) waits indefinitely.  Ignored by direct
        ``Engine.query`` / ``Engine.batch`` calls, and excluded from
        cache identity — a deadline bounds queueing, not the answer.
    """

    seed: int
    k: int | None = None
    exclude_seed: bool = True
    exclude_neighbors: bool = False
    deadline_ms: float | None = None


@dataclass(frozen=True)
class QueryResult:
    """Structured outcome of one query.

    Exactly one of ``scores`` / (``top_nodes``, ``top_scores``) is
    populated, matching the request shape.

    Attributes
    ----------
    seed:
        The queried node.
    method:
        Name of the answering method (e.g. ``"TPA"``).
    seconds:
        Online wall-time attributed to this query.  Queries answered from
        one batched online pass share its wall-time evenly; cache hits
        report ``0.0``.
    preprocessed_bytes:
        Size of the method's resident preprocessed data.
    scores:
        Full length-``n`` score vector (full-vector requests only).
    top_nodes:
        Top-``k`` node ids, best first (top-k requests only; may be
        shorter than ``k`` when exclusions leave fewer nodes).
    top_scores:
        Scores of ``top_nodes``.
    error_bound:
        The method's guaranteed L1 error bound, when it provides one
        (e.g. TPA's Theorem 2 bound ``2(1-c)^S``); ``None`` otherwise.
    cached:
        Whether the score vector was reused rather than computed for this
        request (an LRU-cache hit or an intra-batch duplicate seed).
    """

    seed: int
    method: str
    seconds: float
    preprocessed_bytes: int
    scores: np.ndarray | None = None
    top_nodes: np.ndarray | None = None
    top_scores: np.ndarray | None = None
    error_bound: float | None = None
    cached: bool = False


class Engine:
    """Preprocess-once / query-many facade over a :class:`PPRMethod`.

    Parameters
    ----------
    method:
        The RWR method.  If it is not yet preprocessed, ``graph`` is
        required and preprocessing runs in the constructor (timed; see
        :attr:`preprocess_seconds`).  An already-preprocessed method is
        adopted as-is, e.g. one rebuilt via ``TPA.load``.
    graph:
        Graph to preprocess for.  Optional when ``method`` is already
        bound to one.
    cache_size:
        Capacity (in seeds) of the optional LRU score-vector cache; ``0``
        (default) disables caching.  Cached vectors are stored read-only
        and keyed by ``(seed, backend, compute dtype)`` — switching the
        kernel backend or the float32 policy mid-serve can never replay a
        vector computed under the previous numeric configuration.  The
        cache itself is a thread-safe
        :class:`~repro.serving.cache.ScoreCache`.
    cache:
        An existing :class:`~repro.serving.cache.ScoreCache` to use
        instead of a private one — this is how
        :class:`~repro.serving.Server` makes all its Engine replicas
        share one cache.  Mutually exclusive with ``cache_size``.
    reorder:
        ``"slashburn"`` relabels the graph into SlashBurn hub/spoke order
        before preprocessing (:func:`repro.kernels.locality_reordering`),
        which clusters each CSR row's column gathers and makes the
        blocked ``(n, B)`` SpMM of the online phase cache friendly.  A
        hub-aligned row tiling is attached to the serving graph at the
        same time (:meth:`~repro.kernels.LocalityReordering.spmm_tiling`,
        tunable via ``REPRO_KERNEL_TILE`` /
        :func:`repro.kernels.set_tile_rows`), so every batched iterate
        runs the tiled SpMM schedule.  The engine translates seeds and
        results at the boundary, so callers keep using original node ids
        throughout.  Requires ``graph`` (an already-preprocessed method
        is bound to its node ordering).  A caller-built
        :class:`~repro.kernels.LocalityReordering` over ``graph`` is
        accepted too — :class:`repro.sharding.Router` passes the
        community-aligned ordering it derives from
        :func:`~repro.graph.partition.partition_graph` this way.
        ``None`` (default) serves in the input ordering.
    stream_block:
        Column-block width of the streamed top-k path (default 128).
        :meth:`serve` always scores at most this many seeds at a time,
        and :meth:`batch` switches to the same streamed schedule when a
        cache-less batch of pure top-k requests has more distinct seeds
        than one block — selection is fused into the block loop, so the
        full ``n x batch`` score matrix never materializes.  Pass
        ``"auto"`` to derive the width from the graph size, the active
        compute dtype, and a memory budget instead: the streamed working
        set (two method iterate panels, the score panel, the exclusion
        mask) is sized to fit ``memory_budget_bytes``.
    memory_budget_bytes:
        The budget behind ``stream_block="auto"`` (default 64 MiB).
        Giving a budget alone implies ``"auto"``; combining it with a
        fixed integer width is a :class:`ParameterError`.
    tune:
        A :class:`repro.tune.TuneProfile` (e.g. from
        :func:`repro.tune.autotune`).  Its process-global knobs are
        installed via :meth:`~repro.tune.TuneProfile.apply` (tile
        height, kernel threads — each skipped when its environment
        variable overrides it), and its ``stream_block`` becomes this
        engine's default block width.  Precedence is always ``explicit
        argument > environment variable > tuned profile > static
        default``: passing ``stream_block=``/``memory_budget_bytes=``
        explicitly wins over the profile.  :meth:`shard` defaults its
        shard count from the profile too.
    warm_start:
        On a mutable substrate (a graph exposing ``epoch_token()``,
        i.e. :class:`repro.dynamic.DynamicGraph`), reuse each seed's
        newest cached score vector — even one computed under a previous
        graph epoch — as the ``x0`` fixed-point guess when the method
        :attr:`~repro.method.PPRMethod.supports_warm_start` (default
        on).  Stale vectors are never *served*: they only shorten the
        post-update iteration, whose convergence tolerance is
        unchanged.  Ignored on static graphs and for methods without
        warm-start support (TPA instead warm-restarts its
        re-preprocessing from the retained PageRank iterate).
    obs_port:
        Attach a live :class:`~repro.obs.ObsExporter` (``/metrics``,
        ``/health``, ``/snapshot``, ``/traces``, ``/profile``) on this
        port (``0`` = ephemeral); released by :meth:`close`.  Default
        ``None`` consults ``REPRO_OBS_PORT`` and joins the shared
        per-process listener when set.  A bare engine always reports
        ready.

    Notes
    -----
    A bare Engine is **thread-safe**: the cache is lock-guarded on its
    own, and one reentrant lock serializes the online phase, the
    ranking scratch, and the serving counters, so concurrent
    :meth:`query` / :meth:`batch` calls from many threads are safe
    (they execute one at a time).  For *parallel* serving, give each
    worker thread its own replica via :meth:`replicate` — shared
    preprocessed state, private scratch — or use
    :class:`repro.serving.Server`, which does exactly that plus
    micro-batching.

    Examples
    --------
    >>> from repro import Engine, community_graph, create_method
    >>> graph = community_graph(1000, avg_degree=10, seed=7)
    >>> engine = Engine(create_method("tpa"), graph)
    >>> result = engine.query(0, k=10)
    >>> result.top_nodes.shape
    (10,)
    """

    def __init__(
        self,
        method: PPRMethod,
        graph: Graph | None = None,
        cache_size: int = 0,
        reorder: str | None = None,
        stream_block: int | str | None = None,
        memory_budget_bytes: int | None = None,
        cache: "ScoreCache | None" = None,
        warm_start: bool = True,
        tune=None,
        obs_port: int | None = None,
    ):
        self._tune = tune
        if tune is not None:
            tune.apply()
            if stream_block is None and memory_budget_bytes is None:
                stream_block = int(tune.stream_block)
        if cache_size < 0:
            raise ParameterError("cache_size must be non-negative")
        if cache is not None and cache_size:
            raise ParameterError(
                "pass either a shared cache or cache_size, not both"
            )
        if reorder is not None and not (
            reorder == "slashburn"
            or isinstance(reorder, kernels.LocalityReordering)
        ):
            raise ParameterError(
                f"unknown reorder strategy {reorder!r}; choose 'slashburn', "
                "a LocalityReordering instance, or None"
            )
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ParameterError("memory_budget_bytes must be positive")
        if stream_block == "auto" or (
            stream_block is None and memory_budget_bytes is not None
        ):
            # Adaptive width: derived per call from n, the active compute
            # dtype, and the budget (dtype can change mid-serve).
            self._stream_block: int | None = None
            self._memory_budget_bytes = int(
                memory_budget_bytes
                if memory_budget_bytes is not None
                else _DEFAULT_STREAM_BUDGET_BYTES
            )
        elif isinstance(stream_block, str):
            raise ParameterError(
                f"unknown stream_block {stream_block!r}; "
                "pass an integer width or 'auto'"
            )
        else:
            if memory_budget_bytes is not None:
                # A fixed width and a budget contradict each other;
                # silently ignoring either would betray one intent.
                raise ParameterError(
                    "memory_budget_bytes requires stream_block='auto' "
                    "(or no stream_block); a fixed width ignores budgets"
                )
            if stream_block is None:
                stream_block = _DEFAULT_STREAM_BLOCK
            elif stream_block < 1:
                raise ParameterError("stream_block must be at least 1")
            self._stream_block = int(stream_block)
            self._memory_budget_bytes = None
        self._reordering: kernels.LocalityReordering | None = None
        if reorder is not None:
            if graph is None:
                raise ParameterError(
                    "reorder requires the graph (a preprocessed method is "
                    "already bound to its node ordering)"
                )
            if isinstance(reorder, kernels.LocalityReordering):
                # A caller-built ordering (e.g. the community-aligned one
                # repro.sharding derives from partition_graph) — it must
                # be a relabeling of this very graph.
                if reorder.to_original.size != graph.num_nodes:
                    raise ParameterError(
                        f"reordering covers {reorder.to_original.size} "
                        f"nodes but the graph has {graph.num_nodes}"
                    )
                self._reordering = reorder
            else:
                self._reordering = kernels.locality_reordering(graph)
        self._original_graph = graph
        serving_graph = (
            self._reordering.graph if self._reordering is not None else graph
        )
        if self._reordering is not None:
            # Hub-aware tiled execution for every blocked product on the
            # serving operator: the whole point of the SlashBurn order.
            serving_graph.set_spmm_tiling(self._reordering.spmm_tiling())
        if serving_graph is None:
            if not method.is_preprocessed:
                raise ParameterError(
                    "Engine needs a graph to preprocess for, or an "
                    "already-preprocessed method"
                )
            self._preprocess_seconds = 0.0
        elif method.is_preprocessed and method.graph is serving_graph:
            self._preprocess_seconds = 0.0
        else:
            begin = time.perf_counter()
            method.preprocess(serving_graph)
            self._preprocess_seconds = time.perf_counter() - begin
        self._method = method
        if cache is not None:
            self._score_cache: "ScoreCache | None" = cache
        elif cache_size:
            # Runtime import: repro.serving builds on repro.engine, so
            # the cache class cannot be imported at module scope.
            from repro.serving.cache import ScoreCache

            self._score_cache = ScoreCache(cache_size)
        else:
            self._score_cache = None
        if self._score_cache is not None:
            # Refuse a cache already serving a different method/graph —
            # a seed collision there would replay the wrong vector.
            # Replicas share their root's identity, so the intended
            # sharing binds cleanly.
            root = getattr(method, "_replica_root", method)
            self._score_cache.bind(
                (type(method).__name__, id(root), id(method.graph))
            )
        # Epoch tracking for mutable substrates: the caller-space graph
        # is the epoch source (a reordering's permuted view delegates its
        # epoch token to the parent, so either works — the caller's is
        # the one requests arrive against).
        self._warm_start = bool(warm_start)
        epoch_graph = (
            self._original_graph
            if self._original_graph is not None
            else method.graph
        )
        self._epoch_graph = (
            epoch_graph
            if callable(getattr(epoch_graph, "epoch_token", None))
            else None
        )
        self._synced_epoch_token: str | None = (
            self._epoch_graph.epoch_token()
            if self._epoch_graph is not None
            else None
        )
        self._hits = 0
        self._misses = 0
        self._queries_served = 0
        self._online_seconds = 0.0
        # Retained serving scratch: per-request banned masks, masked-copy
        # selection buffers, and the reorder gather of the streamed path
        # all reuse these instead of allocating per request.
        self._workspace = kernels.Workspace()
        # One reentrant lock makes a bare Engine thread-safe: it guards
        # the online phase (whose workspace scratch must never be shared
        # mid-flight), the counters, and the stats reads.  The cache has
        # its own lock so *shared* caches work across replicas.
        self._lock = threading.RLock()
        # Operational surface (obs_port= / REPRO_OBS_PORT): a bare
        # engine is always ready — it has no workers to lose — but its
        # /metrics, /snapshot, /traces, and /profile are live.  Lazy
        # import: repro.obs.exporter must not be a hard dependency of
        # every Engine construction path.
        self._obs_name = f"engine-{id(self):x}"
        self._exporter = None
        self._owns_exporter = False
        if obs_port is not None or os.environ.get("REPRO_OBS_PORT"):
            from repro.obs.exporter import start_exporter

            self._exporter, self._owns_exporter = start_exporter(obs_port)
            if self._exporter is not None:
                self._exporter.add_check(
                    self._obs_name, lambda: {"ready": True, "kind": "engine"}
                )

    # -- introspection ---------------------------------------------------------

    @property
    def method(self) -> PPRMethod:
        """The wrapped method (preprocessed)."""
        return self._method

    @property
    def graph(self) -> Graph:
        """The graph in the caller's node-id space (the original graph
        when a locality reordering is active — all request seeds and
        result ids are expressed in it)."""
        if self._original_graph is not None:
            return self._original_graph
        return self._method.graph

    @property
    def reordering(self) -> "kernels.LocalityReordering | None":
        """The active SlashBurn locality reordering, if any."""
        return self._reordering

    @property
    def preprocess_seconds(self) -> float:
        """Wall-time of the preprocessing run the engine performed
        (``0.0`` when it adopted an already-preprocessed method)."""
        return self._preprocess_seconds

    def error_bound(self) -> float | None:
        """The method's guaranteed L1 error bound, if it exposes one."""
        bound = getattr(self._method, "error_bound", None)
        if callable(bound):
            return float(bound())
        return None

    @property
    def cache(self) -> "ScoreCache | None":
        """The score cache (private or shared), when caching is on."""
        return self._score_cache

    @property
    def stream_block(self) -> int:
        """The streamed top-k path's current column-block width.  Fixed
        at construction, or derived from the memory budget and the
        active compute dtype when ``stream_block="auto"``."""
        return self._resolve_stream_block()

    @property
    def memory_budget_bytes(self) -> int | None:
        """The budget behind an adaptive ``stream_block`` (``None`` for
        a fixed width)."""
        return self._memory_budget_bytes

    def _resolve_stream_block(self) -> int:
        if self._stream_block is not None:
            return self._stream_block
        # Streamed working set per seed column: the method's two iterate
        # ping-pong panels plus the returned score panel (compute dtype)
        # and the boolean exclusion mask.
        n = self._method.graph.num_nodes
        itemsize = np.dtype(kernels.compute_dtype()).itemsize
        per_seed_bytes = n * (3 * itemsize + 1)
        block = self._memory_budget_bytes // max(per_seed_bytes, 1)
        return int(max(1, min(block, _MAX_STREAM_BLOCK)))

    def stats(self) -> dict[str, float]:
        """Serving counters: queries, online seconds, cache hits/misses.

        Hits and misses are this engine's own lookups; a shared cache's
        pooled counters live in ``engine.cache.stats()``.
        """
        with self._lock:
            return {
                "queries_served": self._queries_served,
                "online_seconds": self._online_seconds,
                "cache_hits": self._hits,
                "cache_misses": self._misses,
                "cache_entries": (
                    len(self._score_cache)
                    if self._score_cache is not None
                    else 0
                ),
            }

    @property
    def exporter(self):
        """The attached :class:`~repro.obs.ObsExporter`, if any."""
        return self._exporter

    def close(self) -> None:
        """Release the engine's operational surface (idempotent).

        A bare engine holds no workers or shared memory — only the
        observability endpoint needs tearing down: its health check is
        removed from a shared (``REPRO_OBS_PORT``) listener, and an
        owned (``obs_port=``) listener is shut down outright.
        ``getattr``-guarded so pickled or hand-built instances from
        before this attribute existed still close cleanly.
        """
        exporter = getattr(self, "_exporter", None)
        self._exporter = None
        if exporter is not None:
            exporter.remove_check(self._obs_name)
            if getattr(self, "_owns_exporter", False):
                exporter.close()

    def replicate(self) -> "Engine":
        """A serving replica of this engine for one more worker thread.

        The replica shares everything read-only — the preprocessed
        method state (via :meth:`PPRMethod.replicate`), the serving
        graph and its reordering, and the score cache object — while
        owning every mutable piece: fresh workspace scratch, its own
        lock, and zeroed counters.  Replicas on separate threads
        therefore serve concurrently without aliasing buffers, which is
        how :class:`repro.serving.Server` scales across cores.
        """
        clone = object.__new__(Engine)
        clone._tune = self._tune
        clone._stream_block = self._stream_block
        clone._memory_budget_bytes = self._memory_budget_bytes
        clone._reordering = self._reordering
        clone._original_graph = self._original_graph
        clone._preprocess_seconds = 0.0
        clone._method = self._method.replicate()
        clone._score_cache = self._score_cache
        clone._warm_start = self._warm_start
        clone._epoch_graph = self._epoch_graph
        clone._synced_epoch_token = self._synced_epoch_token
        clone._hits = 0
        clone._misses = 0
        clone._queries_served = 0
        clone._online_seconds = 0.0
        clone._workspace = kernels.Workspace()
        clone._lock = threading.RLock()
        # Replicas never inherit the exporter: one deployment, one
        # endpoint (the env singleton already covers every replica).
        clone._obs_name = f"engine-{id(clone):x}"
        clone._exporter = None
        clone._owns_exporter = False
        return clone

    def shard(
        self,
        num_shards: int | None = None,
        plan=None,
        panel_cols: int | None = None,
        start_method: str | None = None,
        step_timeout: float | None = None,
        warm: bool = True,
        pin: bool | None = None,
        supervise: bool = True,
        heartbeat_ms: float | None = None,
    ):
        """A serving replica whose online phase runs across shard
        worker **processes** — the multi-process sibling of
        :meth:`replicate`.

        Like a replica, the sharded engine shares every read-only piece
        of this one (preprocessed method state, graph, reordering, score
        cache) and owns its own scratch, lock, and counters.  Unlike a
        replica, its method is re-bound to a
        :class:`~repro.sharding.ShardedOperator`: the serving operator's
        rows are published into shared memory once, ``num_shards``
        worker processes each map one row stripe zero-copy, and every
        iterate sweep of the online phase is computed stripe-parallel
        across them — escaping the GIL entirely.  Results are **bitwise
        identical** to this engine's (row stripes change the execution
        schedule, never the per-row arithmetic).

        Parameters
        ----------
        num_shards:
            Worker-process count (default 2; ignored when ``plan`` fixes
            it).
        plan:
            Explicit :class:`~repro.sharding.ShardPlan`.  Default: cut
            on this engine's reordering (hub band pinned to shard 0,
            spoke shards closed on community-block starts) when one is
            active, else equal stripes.
        panel_cols:
            Column capacity of the shared iterate panels; wider operands
            are chunked (bitwise neutral).
        start_method:
            ``multiprocessing`` start method override.
        step_timeout:
            Seconds to wait on any worker before declaring the
            deployment wedged.
        warm:
            Run one throwaway sweep before returning (default).
        pin:
            Pin each shard worker to its own core set
            (:func:`repro.tune.plan_pinning`).  Default: pin exactly
            when this engine carries a tuned profile; pass ``False`` to
            override it.  Degrades to unpinned with a warning where the
            platform cannot pin.
        supervise:
            Heartbeat the workers and respawn dead or hung ones
            (default; see :class:`repro.resilience.Supervisor`).
        heartbeat_ms:
            Supervisor heartbeat period; default ``REPRO_HEARTBEAT_MS``
            (1000 ms).

        Returns
        -------
        repro.sharding.ShardedEngine
            Close it (or use ``with``) to stop the workers and unlink
            the shared-memory segments.
        """
        # Runtime import: repro.sharding builds on repro.engine.
        from repro.sharding.engine import shard_engine
        from repro.sharding.store import DEFAULT_PANEL_COLS
        from repro.sharding.worker import DEFAULT_STEP_TIMEOUT

        if num_shards is None and plan is None and self._tune is not None:
            num_shards = int(self._tune.shards)
        if pin is None:
            pin = self._tune is not None
        return shard_engine(
            self,
            num_shards=num_shards,
            plan=plan,
            panel_cols=(
                DEFAULT_PANEL_COLS if panel_cols is None else panel_cols
            ),
            start_method=start_method,
            step_timeout=(
                DEFAULT_STEP_TIMEOUT if step_timeout is None else step_timeout
            ),
            warm=warm,
            pin=pin,
            supervise=supervise,
            heartbeat_ms=heartbeat_ms,
        )

    # -- the online phase ------------------------------------------------------

    def query(
        self,
        seed: int,
        k: int | None = None,
        exclude_seed: bool = True,
        exclude_neighbors: bool = False,
    ) -> QueryResult:
        """Answer a single request (convenience wrapper over :meth:`batch`)."""
        request = QueryRequest(
            seed=seed, k=k, exclude_seed=exclude_seed,
            exclude_neighbors=exclude_neighbors,
        )
        return self.batch([request])[0]

    def batch(self, requests: Iterable[QueryRequest]) -> list[QueryResult]:
        """Answer a request batch with one vectorized online pass.

        Seeds are validated in bulk; distinct uncached seeds are scored by
        a single :meth:`~repro.method.PPRMethod.query_many` call (duplicate
        seeds and cache hits are answered from the same vectors).  Results
        come back in request order.

        Large cache-less batches of pure top-k requests stream instead:
        distinct seeds are scored ``stream_block`` at a time and each
        block's rankings are extracted before the next block is computed,
        so peak memory is one ``n x stream_block`` panel rather than the
        full ``n x batch`` matrix.  Results are identical to the
        materialized path.
        """
        requests = list(requests)
        if not requests:
            return []
        # Validate the whole batch before any compute: a malformed request
        # must not waste (or half-account) a full online pass.
        for request in requests:
            if request.k is not None and request.k < 1:
                raise ParameterError("k must be at least 1")
        seeds = self._method.validate_seeds([r.seed for r in requests])
        with self._lock:
            self._sync_epoch()
            return self._batch_locked(requests, seeds)

    def _sync_epoch(self) -> None:
        """Repair method state after a graph mutation (lock held).

        On a mutable substrate the graph's epoch token changes with
        every mutation and compaction; when it moves, the method's
        preprocessed state (e.g. TPA's stranger vector) describes a
        graph that no longer exists, so preprocessing is re-run against
        the live graph before any scoring.  TPA warm-restarts this from
        its retained PageRank iterate, so small edits re-preprocess in
        a handful of iterations.  Static graphs skip all of this.
        """
        if self._epoch_graph is None:
            return
        token = self._epoch_graph.epoch_token()
        if token == self._synced_epoch_token:
            return
        begin = time.perf_counter()
        self._method.preprocess(self._method.graph)
        self._preprocess_seconds += time.perf_counter() - begin
        self._synced_epoch_token = token

    def _batch_locked(
        self, requests: list[QueryRequest], seeds: np.ndarray
    ) -> list[QueryResult]:
        if self._score_cache is None and all(
            r.k is not None for r in requests
        ):
            distinct = np.unique(seeds)
            if distinct.size > self._resolve_stream_block():
                return self._batch_streamed(requests, seeds)

        # One cache token for the whole batch, minted before any compute.
        # On a mutable graph the token snapshots the current epoch: a
        # vector computed while a mutation races this batch is stored
        # under the *pre-mutation* token and can never answer a
        # post-mutation lookup.
        token = kernels.cache_token(self._epoch_graph)

        # Distinct seeds that truly need the online phase, in first-seen
        # order; everything else is a cache or intra-batch duplicate hit.
        scored: dict[int, np.ndarray | None] = {}
        fresh: list[int] = []
        fresh_set: set[int] = set()
        for seed in seeds.tolist():
            if seed in scored:
                continue
            hit = self._cache_get(seed, token)
            if hit is not None:
                scored[seed] = hit
                self._hits += 1
            else:
                scored[seed] = None  # placeholder, filled below
                fresh.append(seed)
                fresh_set.add(seed)
                self._misses += 1

        per_query_seconds = 0.0
        if fresh:
            query_seeds = np.asarray(fresh, dtype=np.int64)
            if self._reordering is not None:
                query_seeds = self._reordering.to_reordered[query_seeds]
            x0 = self._warm_hints(fresh)
            begin = time.perf_counter()
            if x0 is not None:
                matrix = self._method.query_many(query_seeds, x0=x0)
            else:
                matrix = self._method.query_many(query_seeds)
            elapsed = time.perf_counter() - begin
            per_query_seconds = elapsed / len(fresh)
            self._online_seconds += elapsed
            for row, seed in enumerate(fresh):
                vector = matrix[row]
                if self._reordering is not None:
                    # Back to the caller's node ids: everything below
                    # (cache, exclusion masks, rankings) runs in the
                    # original space.
                    vector = self._reordering.scores_to_original(vector)
                vector = np.ascontiguousarray(vector)
                if self._score_cache is not None:
                    self._cache_put(seed, vector, token)
                scored[seed] = vector

        bytes_resident = self._method.preprocessed_bytes()
        bound = self.error_bound()
        results = []
        with obs_trace.phase("select"):
            for request, seed in zip(requests, seeds.tolist()):
                vector = scored[seed]
                was_fresh = seed in fresh_set
                # Later duplicates of a freshly computed seed are reuse,
                # not compute — charge the batch wall-time once per
                # distinct seed.
                fresh_set.discard(seed)
                base = QueryResult(
                    seed=seed,
                    method=self._method.name,
                    seconds=per_query_seconds if was_fresh else 0.0,
                    preprocessed_bytes=bytes_resident,
                    error_bound=bound,
                    cached=not was_fresh,
                )
                if request.k is None:
                    results.append(replace(base, scores=vector))
                else:
                    picks = self._rank(vector, seed, request)
                    results.append(
                        replace(
                            base, top_nodes=picks, top_scores=vector[picks]
                        )
                    )
        self._queries_served += len(results)
        obs_metrics.get_registry().counter(
            "repro_queries_served_total",
            "Queries answered across every engine instance.",
        ).inc(len(results))
        return results

    def _warm_hints(self, fresh: list[int]) -> np.ndarray | None:
        """Per-seed ``x0`` guesses scavenged from stale cache entries.

        Only applies on a mutable substrate with warm starting on, a
        cache attached, and a method that
        :attr:`~repro.method.PPRMethod.supports_warm_start`.  Returns
        the ``(len(fresh), n)`` guess matrix in the *serving* id space,
        or ``None`` when nothing applies.  Rows without a hint stay
        zero — an all-zero ``x0`` column reproduces the cold iteration
        bitwise, so mixed batches are safe.
        """
        if (
            not self._warm_start
            or self._epoch_graph is None
            or self._score_cache is None
            or not getattr(self._method, "supports_warm_start", False)
        ):
            return None
        n = self._method.graph.num_nodes
        x0 = None
        for row, seed in enumerate(fresh):
            hint = self._score_cache.warm_hint(seed)
            if hint is None or hint.shape != (n,):
                continue
            if x0 is None:
                x0 = np.zeros((len(fresh), n), dtype=kernels.compute_dtype())
            if self._reordering is not None:
                # Cached vectors live in the caller's id space; gather
                # them back into serving order for the iteration.
                x0[row] = hint[self._reordering.to_original]
            else:
                x0[row] = hint
        return x0

    def _rank(
        self, vector: np.ndarray, seed: int, request: QueryRequest
    ) -> np.ndarray:
        """Top-k selection for one request, allocation-free on repeat:
        the banned mask and the masked score copy live in the engine's
        retained workspace instead of being rebuilt per call."""
        n = self.graph.num_nodes
        banned = None
        if request.exclude_seed or request.exclude_neighbors:
            banned = banned_mask(
                self.graph, seed, request.exclude_seed,
                request.exclude_neighbors,
                out=self._workspace.request("rank.banned", (n,), np.bool_),
            )
        return select_top_k(
            vector, request.k, banned,
            scratch=self._workspace.request("rank.masked", (n,), np.float64),
        )

    def _batch_streamed(
        self, requests: list[QueryRequest], seeds: np.ndarray
    ) -> list[QueryResult]:
        """The fused top-k schedule behind :meth:`batch`.

        Distinct seeds are scored ``stream_block`` at a time; every block
        row is ranked (and, under a reordering, translated back to
        original ids) immediately, then the block is reused for the next
        panel — the full score matrix never exists.  Result records match
        the materialized path exactly: the first request of each distinct
        seed carries its share of the block wall-time, duplicates are
        flagged ``cached``.
        """
        requests_by_seed: dict[int, list[int]] = {}
        order: list[int] = []
        for index, seed in enumerate(seeds.tolist()):
            if seed not in requests_by_seed:
                requests_by_seed[seed] = []
                order.append(seed)
            requests_by_seed[seed].append(index)
        self._misses += len(order)

        # The serving shape — every request wants the same (k, exclusion)
        # ranking — runs each block through one compiled
        # select_top_k_many call; mixed batches rank per request (still
        # streamed, just without the fused kernel).
        shapes = {
            (r.k, r.exclude_seed, r.exclude_neighbors) for r in requests
        }
        fused_shape = shapes.pop() if len(shapes) == 1 else None
        bytes_resident = self._method.preprocessed_bytes()
        bound = self.error_bound()
        results: list[QueryResult | None] = [None] * len(requests)
        block = self._resolve_stream_block()
        for start in range(0, len(order), block):
            chunk = np.asarray(order[start : start + block], dtype=np.int64)
            query_seeds = chunk
            if self._reordering is not None:
                query_seeds = self._reordering.to_reordered[chunk]
            begin = time.perf_counter()
            matrix = self._method.query_many(query_seeds)
            elapsed = time.perf_counter() - begin
            per_query_seconds = elapsed / chunk.size
            self._online_seconds += elapsed
            if self._reordering is not None:
                # Back to the caller's id space in one gather (retained
                # panel buffer; masks and rankings run in original ids).
                panel = self._workspace.request(
                    "stream.original", matrix.shape, matrix.dtype
                )
                np.take(matrix, self._reordering.to_reordered, axis=1,
                        out=panel)
                matrix = panel
            with obs_trace.phase("select"):
                picks_block = (
                    self._rank_block(matrix, chunk, *fused_shape)
                    if fused_shape is not None
                    else None
                )
                for row, seed in enumerate(chunk.tolist()):
                    vector = matrix[row]
                    for position, index in enumerate(requests_by_seed[seed]):
                        request = requests[index]
                        if picks_block is not None:
                            padded = picks_block[row]
                            picks = padded[padded >= 0]  # strips -1; copies
                        else:
                            picks = self._rank(vector, seed, request)
                        results[index] = QueryResult(
                            seed=seed,
                            method=self._method.name,
                            seconds=(
                                per_query_seconds if position == 0 else 0.0
                            ),
                            preprocessed_bytes=bytes_resident,
                            error_bound=bound,
                            cached=position > 0,
                            top_nodes=picks,
                            top_scores=vector[picks],
                        )
        self._queries_served += len(requests)
        obs_metrics.get_registry().counter(
            "repro_queries_served_total",
            "Queries answered across every engine instance.",
        ).inc(len(requests))
        return results

    def _rank_block(
        self,
        matrix: np.ndarray,
        chunk: np.ndarray,
        k: int,
        exclude_seed: bool,
        exclude_neighbors: bool,
    ) -> np.ndarray:
        """Fused selection for one streamed block of a homogeneous batch:
        vectorized exclusion masks plus one ``select_top_k_many`` call,
        all scratch drawn from the retained workspace.  ``chunk`` holds
        the block's seeds in caller id space; returns the ``-1``-padded
        ``(len(chunk), k)`` id matrix (a retained buffer — rows are
        copied out by the caller)."""
        banned = None
        if exclude_seed or exclude_neighbors:
            banned = banned_mask_many(
                self.graph, chunk, exclude_seed, exclude_neighbors,
                out=self._workspace.request(
                    "stream.banned", matrix.shape, np.bool_
                ),
            )
        return select_top_k_many(
            matrix, k, banned=banned,
            out=self._workspace.request(
                "stream.picks", (matrix.shape[0], int(k)), np.int64
            ),
        )

    def serve(
        self,
        seeds: Sequence[int] | np.ndarray,
        k: int,
        exclude_seeds: bool = True,
        exclude_neighbors: bool = False,
    ) -> np.ndarray:
        """Throughput path: top-``k`` ids for a whole seed batch.

        Skips the per-request bookkeeping of :meth:`batch` and returns the
        ``(len(seeds), k)`` ``int64`` ranking matrix built from
        :meth:`~repro.method.PPRMethod.top_k_many` (rows padded with
        ``-1`` when exclusions leave fewer than ``k`` nodes).  This is the
        paper's Who-to-Follow shape: millions of users, top-500 each.

        The batch is streamed ``stream_block`` seeds at a time, with the
        compiled :func:`repro.kernels.select_top_k_many` selection fused
        into each block — only ``block * k`` ids survive a block, so
        arbitrarily large batches serve in constant memory.
        """
        seeds_arr = self._method.validate_seeds(seeds)
        if self._reordering is not None:
            seeds_arr = self._reordering.to_reordered[seeds_arr]
        with self._lock:
            self._sync_epoch()
            block = self._resolve_stream_block()
            begin = time.perf_counter()
            if seeds_arr.size <= block:
                rankings = self._method.top_k_many(
                    seeds_arr, k, exclude_seeds=exclude_seeds,
                    exclude_neighbors=exclude_neighbors,
                )
            else:
                rankings = np.empty((seeds_arr.size, int(k)), dtype=np.int64)
                for start in range(0, seeds_arr.size, block):
                    stop = min(start + block, seeds_arr.size)
                    rankings[start:stop] = self._method.top_k_many(
                        seeds_arr[start:stop], k, exclude_seeds=exclude_seeds,
                        exclude_neighbors=exclude_neighbors,
                    )
            self._online_seconds += time.perf_counter() - begin
            if self._reordering is not None:
                rankings = self._reordering.ids_to_original(rankings)
            self._queries_served += rankings.shape[0]
            return rankings

    # -- LRU cache -------------------------------------------------------------
    #
    # The cache is a thread-safe ScoreCache (repro.serving.cache), either
    # private to this engine (cache_size > 0) or shared across replicas
    # (cache=...).  It keys on (seed, kernels.cache_token()): the token
    # names the active backend and compute dtype, so a float32 run can
    # never be answered from a cached float64 vector (or vice versa), and
    # entries computed under a different backend never masquerade as the
    # current one's.

    def _cache_get(
        self, seed: int, token: str | None = None
    ) -> np.ndarray | None:
        if self._score_cache is None:
            return None
        return self._score_cache.get(seed, token)

    def _cache_put(
        self, seed: int, vector: np.ndarray, token: str | None = None
    ) -> None:
        self._score_cache.put(seed, vector, token)

    def clear_cache(self) -> None:
        """Drop every cached score vector."""
        if self._score_cache is not None:
            self._score_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        capacity = (
            self._score_cache.capacity if self._score_cache is not None else 0
        )
        return (
            f"Engine(method={self._method.name}, "
            f"n={self.graph.num_nodes}, cache={capacity})"
        )
