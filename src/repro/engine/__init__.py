"""Batched query engine and method registry.

* :mod:`~repro.engine.engine` — :class:`QueryRequest` / :class:`QueryResult`
  dataclasses and the :class:`Engine` facade (preprocess-once lifecycle,
  bulk validation, vectorized batches, optional LRU score cache).
* :mod:`~repro.engine.registry` — :func:`available_methods` /
  :func:`create_method`, the single factory shared by the CLI and the
  experiment harness.
"""

from repro.engine.engine import Engine, QueryRequest, QueryResult
from repro.engine.registry import (
    MethodSpec,
    available_methods,
    create_method,
    method_spec,
    register_method,
)

__all__ = [
    "Engine",
    "QueryRequest",
    "QueryResult",
    "MethodSpec",
    "available_methods",
    "create_method",
    "method_spec",
    "register_method",
]
